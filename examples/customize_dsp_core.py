"""Customize one processor for a whole application area (a cellphone SoC core).

Paper §6.1: products are designed around a core of compute-intensive
things they must do well plus less-predictable things they may have to do.
This example customizes a 4-issue VLIW for the weighted *cellphone* mix
(Viterbi decoding, FIR filtering, saturated mixing, correlation), then
checks how the same silicon does on a kernel the customizer never saw.

Run with:  python examples/customize_dsp_core.py
"""

from __future__ import annotations

from repro.arch import estimate_area, vliw4
from repro.backend import compile_module
from repro.core import EnumerationConfig, IsaCustomizer, SelectionConfig
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.workloads import get_kernel, get_mix

#: explicit input seed so repeated runs are bit-reproducible.
SEED = 1234


def measure(machine, module, kernel, size=48):
    compiled, _ = compile_module(module, machine)
    args = kernel.arguments(size, seed=SEED)
    result = CycleSimulator(compiled).run(
        kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
    assert result.value == kernel.expected(args)
    return result.cycles


def main() -> None:
    mix = get_mix("cellphone")
    base = vliw4()
    print(f"Application area: {mix.name}  (kernels: {', '.join(mix.names())})")
    print(f"Base machine    : {base.describe()}\n")

    # Compile the whole mix to optimized IR.
    modules = {}
    for kernel, weight in mix.kernels():
        module = compile_c(kernel.source, module_name=kernel.name)
        optimize(module, level=3)
        modules[kernel.name] = (module, weight)

    # Baseline cycles.
    baseline = {name: measure(base, module, get_kernel(name))
                for name, (module, _w) in modules.items()}

    # Customize once for the weighted area.
    customizer = IsaCustomizer(
        base,
        enumeration=EnumerationConfig(max_outputs=1),
        selection_config=SelectionConfig(area_budget_kgates=45.0, max_operations=8),
    )
    result = customizer.customize_for_area(
        [(module, weight) for module, weight in modules.values()],
        name="cellphone_core",
    )
    print(result.report.summary())
    for op_name, operation in sorted(result.machine.custom_ops.items()):
        print(f"   {op_name}: {operation.num_inputs} in / {operation.num_outputs} out, "
              f"{operation.latency} cycle(s), {operation.area_kgates:.1f} kgates, "
              f"fuses {operation.fused_ops} primitive ops")

    print(f"\n{'kernel':<16} {'weight':>6} {'base':>8} {'custom':>8} {'speedup':>8}")
    for name, (module, weight) in modules.items():
        cycles = measure(result.machine, module, get_kernel(name))
        print(f"{name:<16} {weight:>6.1f} {baseline[name]:>8} {cycles:>8} "
              f"{baseline[name] / cycles:>8.2f}x")

    # A kernel from the same area the customizer never saw: apply the library.
    held_out = get_kernel("sad16")
    unseen = compile_c(held_out.source, module_name=held_out.name)
    optimize(unseen, level=3)
    before = measure(base, unseen.clone(), held_out)
    customizer.apply_to(unseen, result.machine)
    after = measure(result.machine, unseen, held_out)
    print(f"\nheld-out kernel {held_out.name}: {before} -> {after} cycles "
          f"({before / after:.2f}x) using the area's fused ops")

    base_area = estimate_area(base).core
    custom_area = estimate_area(result.machine).core
    print(f"\nSilicon: {base_area:.0f} -> {custom_area:.0f} kgates "
          f"(+{100 * (custom_area - base_area) / base_area:.1f}%)")


if __name__ == "__main__":
    main()
