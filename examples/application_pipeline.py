"""A real-time dataflow application: filter → feature → classifier.

Paper §6.1: a product is not one kernel — it is a *pipeline* of them
running against arrival rates and deadlines.  This example hand-builds a
three-stage :class:`repro.app.ApplicationSpec` (an FIR-style filter
feeding a feature extractor feeding a branchy classifier), runs it
window by window on two machines, and then asks the design-space
explorer the product question: which machine in the space minimizes the
*deadline-miss rate*, and is that the same machine that maximizes raw
performance?  (It usually is not — that divergence is the point of
real-time objectives.)

Run with:  python examples/application_pipeline.py
"""

from __future__ import annotations

from repro.app import AppEdge, AppNode, ApplicationSpec, WindowStream, run_application
from repro.arch import risc_baseline, vliw4
from repro.dse import AppEvaluator, ApplicationMix, DesignSpace, Explorer
from repro.gen import WorkloadSpec

#: explicit seeds so repeated runs are bit-reproducible.
APP_SEED = 2026

#: per-window envelope: a window of 32 samples arrives every 30 us and
#: must be finished within 30 us; the load varies up to 40% per window.
STREAM = WindowStream(windows=8, window_size=32, period_us=30.0,
                      deadline_us=30.0, seed=APP_SEED, load_jitter=0.4)


def build_application() -> ApplicationSpec:
    """filter (streaming DSP) → feature (memory mixed) → classifier."""
    filter_node = AppNode("filter", WorkloadSpec(
        family="streaming_dsp", seed=APP_SEED, taps=8, data_bits=16))
    feature_node = AppNode("feature", WorkloadSpec(
        family="memory_mixed", seed=APP_SEED + 1, stride=3))
    classifier_node = AppNode("classifier", WorkloadSpec(
        family="control_heavy", seed=APP_SEED + 2, branch_density=0.7))
    return ApplicationSpec(
        name="sensor_pipeline",
        nodes=(filter_node, feature_node, classifier_node),
        edges=(
            # the filtered signal becomes the feature extractor's input
            AppEdge(src="filter", dst="feature", src_port="y", dst_port="a"),
            # the extracted feature window feeds the classifier ...
            AppEdge(src="feature", dst="classifier", src_port="out",
                    dst_port="a"),
            # ... and the filter's scalar energy estimate biases it
            AppEdge(src="filter", dst="classifier", dst_port="b"),
        ),
        stream=STREAM,
        seed=APP_SEED,
    )


def show(report) -> None:
    print(f"  {report.machine:<12} correct={report.correct}  "
          f"miss={report.deadline_miss_rate:>5.0%}  "
          f"p50={report.p50_latency_us:6.2f}us  "
          f"p99={report.p99_latency_us:6.2f}us  "
          f"jitter={report.jitter_us:5.2f}us  "
          f"E/win={report.energy_per_window_uj:.4f}uJ")


def main() -> None:
    app = build_application()
    print(f"Application: {app.name}  "
          f"({' -> '.join(n.name for n in app.topological_order())})")
    print(f"Stream     : {STREAM.windows} windows x {STREAM.window_size} "
          f"samples, period {STREAM.period_us}us, "
          f"deadline {STREAM.deadline_us}us\n")

    # 1. Run the pipeline window by window on two fixed machines.  Every
    #    node of every window is checked against the composed Python
    #    oracle; latencies come from the per-node static schedules.
    print("Per-machine window runs:")
    for machine in (vliw4(), risc_baseline()):
        show(run_application(app, machine, engine="compiled"))

    # 2. The product question: search a small space for the machine that
    #    best meets the deadline, and compare with the raw-cycles winner.
    space = DesignSpace(issue_widths=(1, 2, 4), register_counts=(32, 64),
                        cluster_counts=(1,), mul_unit_counts=(1,),
                        mem_unit_counts=(1, 2), custom_budgets=(0.0,))
    mix = ApplicationMix.single(app)
    print("\nDesign-space exploration "
          f"({sum(1 for _ in space.points())} points):")
    winners = {}
    for objective in ("performance", "deadline_miss_rate"):
        evaluator = AppEvaluator(mix, engine="compiled")
        result = Explorer(evaluator, objective=objective).exhaustive(space)
        best = result.best
        winners[objective] = best.machine.name
        row = best.summary_row()
        print(f"  objective={objective:<18} -> {best.machine.name:<16} "
              f"miss={row['miss_rate']:>6.2%}  p99={row['p99_us']}us  "
              f"E/win={row['energy_per_window_uj']}uJ")

    if winners["performance"] != winners["deadline_miss_rate"]:
        print("\nThe deadline objective picks a different machine than raw "
              "performance:\nonce the deadline is met, energy decides — "
              "exactly the trade a product team makes.")
    else:
        print("\nBoth objectives agree here; widen the space or tighten "
              "the deadline to see them diverge.")


if __name__ == "__main__":
    main()
