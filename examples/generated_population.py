"""Generated workloads: spec → generate → characterize → sweep.

The paper's custom-fit argument needs a *population* of applications,
not a handful of hand-written demos.  This example walks the synthetic
workload subsystem (`repro.gen`) end to end:

1. sample a seeded, serializable WorkloadSpec and show the C kernel and
   the Python oracle generated from the same AST,
2. generate a small population across all five scenario families and
   validate it bit-identically on both execution engines,
3. characterize it (static ILP bounds, dynamic memory/branch mix),
4. measure what an ISA-customization budget buys each family.

Run with:  python examples/generated_population.py
"""

from __future__ import annotations

from repro.gen import WorkloadPopulation, generate_kernel, sample_spec

#: explicit seeds so repeated runs are bit-reproducible.
SPEC_SEED = 424242
POPULATION_SEED = 2026
POPULATION_SIZE = 15
BUDGET_KGATES = 32.0


def show_one_spec() -> None:
    spec = sample_spec("table_lookup", SPEC_SEED)
    generated = generate_kernel(spec)
    print("=== one spec, two renderings ===")
    print(f"spec: {spec.to_json()}")
    print(f"fingerprint: {spec.fingerprint()[:16]}...")
    print("\n--- C (for the front end) ---")
    print(generated.c_source)
    print("--- Python (the oracle, same AST) ---")
    print(generated.python_source)


def sweep_population() -> None:
    population = WorkloadPopulation.generate(POPULATION_SIZE,
                                             seed=POPULATION_SEED)
    print(f"=== population of {len(population)} kernels "
          f"({len(population.families())} families) ===")
    with population:  # registers into repro.workloads for the evaluators
        validated = population.validate()
        print(f"bit-identical on both engines: "
              f"{sum(validated.values())}/{len(validated)}")
        report = population.report(budget=BUDGET_KGATES,
                                   kernels_per_family=2)
        header = (f"{'family':<15} {'ilp':>6} {'mem%':>6} {'br%':>6} "
                  f"{'base us':>8} {'custom us':>9} {'gain':>6}")
        print(header)
        print("-" * len(header))
        for row in report["families"]:
            print(f"{row['family']:<15} {row['mean_ilp_bound']:>6} "
                  f"{100 * row['mean_memory_fraction']:>5.1f}% "
                  f"{100 * row['mean_branch_fraction']:>5.1f}% "
                  f"{row['base_time_us']:>8} {row['custom_time_us']:>9} "
                  f"{row['gain']:>5}x")
    print(f"\n(each family customized within {BUDGET_KGATES:.0f} kgates; "
          f"gains come from ops the customizer invented for that family)")


def main() -> None:
    show_one_spec()
    print()
    sweep_population()


if __name__ == "__main__":
    main()
