"""End-to-end observability: spans, metrics, and run manifests.

Every layer of the stack — ``Session.execute``, each pipeline stage,
the execution engines, the batch evaluator, and the whole service fleet
— reports into :mod:`repro.obs`: a zero-dependency span tracer, a typed
metrics registry, and JSONL run manifests.  This example runs two
requests through a traced session and then plays the operator:

1. pull the ``trace_id`` from the response provenance and render the
   span waterfall (what ``python -m repro inspect <trace_id>`` shows);
2. read the run-manifest journal back and list what it recorded;
3. export the session's metrics registry as Prometheus text (what
   ``python -m repro stats --format prometheus`` emits).

Run with:  python examples/observability_quickstart.py
"""

from __future__ import annotations

import os
import tempfile

from repro import RunRequest, Session
from repro.obs import (
    read_journal, journal_spans, render_prometheus, render_waterfall,
    snapshot_value, span_depth,
)


def main() -> None:
    journal_path = os.path.join(tempfile.mkdtemp(prefix="repro-obs-"),
                                "journal.jsonl")

    # obs="trace" turns on spans + manifests for this session only
    # (the process default stays whatever REPRO_OBS says; "metrics"
    # when unset).  The journal can also come from --journal on the
    # CLI or the REPRO_OBS_JOURNAL environment variable.
    with Session(name="obs-demo", obs="trace",
                 journal=journal_path) as session:
        cold = session.execute(RunRequest(kernel="fir_filter",
                                          machine="vliw4", size=64))
        warm = session.execute(RunRequest(kernel="fir_filter",
                                          machine="vliw4", size=64))
        snapshot = session.metrics()

    print("== two traced requests ==")
    print(f"cold run: {cold.cycles} cycles, "
          f"trace_id {cold.provenance.trace_id}")
    print(f"warm run: {warm.cycles} cycles, "
          f"trace_id {warm.provenance.trace_id}")

    # 1. the stitched span tree of the cold request, straight from the
    # journal (a live daemon answers the same question over the
    # ``trace`` protocol op).
    events = read_journal(journal_path, trace_id=cold.provenance.trace_id)
    spans = journal_spans(events)
    print("\n== span waterfall (cold request) ==")
    print(render_waterfall(spans))
    print(f"span depth: {span_depth(spans)}")

    # 2. what the journal recorded: one provenance-complete manifest
    # per root request (request JSON + provenance + spans + metrics).
    all_events = read_journal(journal_path)
    print(f"\n== journal ==\n{journal_path}: {len(all_events)} manifests")
    for event in all_events:
        stages = (event.get("provenance") or {}).get("stages") or []
        hits = sum(1 for stage in stages if stage.get("hit"))
        print(f"  {event['kind']:<10} trace {event['trace_id'][:12]}…  "
              f"{len(event.get('spans', []))} spans, "
              f"{hits}/{len(stages)} stage hits")

    # 3. the typed metrics registry, Prometheus-style.  The same
    # counters back Session.metrics(), store.stats_dict() and the
    # daemon's fleet-merged ``stats`` op.
    print("\n== metrics ==")
    hits = snapshot_value(snapshot, "store_hits")
    misses = snapshot_value(snapshot, "store_misses")
    print(f"store lookups: {hits:.0f} hits / {misses:.0f} misses")
    print(f"requests observed: "
          f"{snapshot_value(snapshot, 'session_requests'):.0f}")
    text = render_prometheus(snapshot)
    excerpt = [line for line in text.splitlines()
               if line.startswith(("repro_store_hits",
                                   "repro_session_requests",
                                   "repro_engine_run_seconds_count"))]
    print("prometheus excerpt:")
    for line in excerpt:
        print(f"  {line}")


if __name__ == "__main__":
    main()
