"""Run the repro job service: daemon, durable queue, concurrent clients.

PR 6 puts a persistent daemon in front of the experiment engine: clients
submit the same serializable requests the :class:`repro.api.Session`
executes, the daemon journals them in a crash-safe queue, shards the
work over a pool of workers, and memoizes everything in one
cross-process artifact store — so eight clients re-running the
validation matrix pay for it roughly once.

This example embeds the daemon in-process (thread workers) so it runs
anywhere without orchestration; in production you would start it once
with ``python -m repro serve --root /var/lib/repro`` and point clients
(and ``REPRO_SERVICE_SOCKET``) at its endpoint.

Run with:  python examples/service_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading
import time

from repro.api.requests import MatrixRequest, RunRequest
from repro.service import ServiceClient, ServiceDaemon

MACHINES = ["vliw4", "risc32", "dsp16"]
KERNELS = ["crc32", "dot_product", "viterbi_acs"]


def main() -> None:
    root = tempfile.mkdtemp(prefix="repro-service-")
    with ServiceDaemon(root, workers=2, worker_mode="thread",
                       name="quickstart") as daemon:
        print(f"daemon up: endpoint={daemon.endpoint}")
        print(f"shared store: {daemon.store_dir}\n")

        # --- one blocking request, Session-shaped -----------------------
        with ServiceClient(daemon.endpoint) as client:
            request = MatrixRequest(machines=MACHINES, kernels=KERNELS)
            start = time.perf_counter()
            response = client.execute(request, timeout=300)
            cold_s = time.perf_counter() - start
            cells = len(response.rows)
            print(f"cold matrix: {cells} cells in {cold_s:.2f}s, "
                  f"pass rate {response.pass_rate}, "
                  f"served by workers [{response.provenance.worker}]")

            # --- future-backed submission ------------------------------
            handle = client.submit(RunRequest(kernel="sad16",
                                              machine="vliw8",
                                              engine="cycle"))
            print(f"submitted {handle.id}; state={handle.status()}")
            run = handle.result(timeout=300)
            print(f"{handle.id} done: sad16 on vliw8 -> "
                  f"{run.cycles} cycles, correct={run.correct}")

        # --- concurrent clients against the warm store ------------------
        def rerun(index: int, seconds: list) -> None:
            with ServiceClient(daemon.endpoint) as c:
                start = time.perf_counter()
                warm = c.execute(MatrixRequest(machines=MACHINES,
                                               kernels=KERNELS), timeout=300)
                seconds[index] = time.perf_counter() - start
                assert warm.all_correct

        timings = [0.0] * 4
        threads = [threading.Thread(target=rerun, args=(i, timings))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        print(f"\n4 concurrent warm clients: "
              f"{', '.join(f'{s * 1e3:.0f}ms' for s in timings)} "
              f"(every cell a shared-store hit)")

        with ServiceClient(daemon.endpoint) as client:
            stats = client.stats()
            queue = stats["queue"]
            print(f"queue journal: {queue['done']} done / "
                  f"{queue['total']} submitted; store holds "
                  f"{stats['store']['entries']} artifacts "
                  f"({stats['store']['bytes'] / 1024:.0f} KiB)")
    print("daemon stopped; the queue journal and store survive restarts.")


if __name__ == "__main__":
    main()
