"""Barriers 3-5 in numbers: volume economics, SoC integration, dev-cycle risk.

Reproduces the paper's economic argument end to end:

* Table-1-style price/performance premium at the high end,
* per-unit cost of a customized SoC core vs. a mass-market processor as a
  function of product volume (Barrier 3), with the §4.1 SoC comparison,
* the §6 development-cycle model: how workload churn between processor
  freeze and shipment decides between exact and application-area tailoring.

Run with:  python examples/volume_economics.py
"""

from __future__ import annotations

from repro.econ import (
    ChipProject, DevelopmentCycleModel, KernelOutcome, analyze_premium,
    compute_table1, crossover_volume, integration_advantage,
    reference_set_top_design, unit_price,
)


def main() -> None:
    # --- Table 1: the high-end premium -------------------------------
    print("Table 1 (Pentium II, October 1998):")
    for row in compute_table1():
        print(f"   {row['core_mhz']:>3} MHz  ${row['price_usd']:>6.0f}  "
              f"Winstone {row['business_winstone']:>4.1f}  "
              f"perf/price {row['winstone_per_dollar']:.3f}")
    premium = analyze_premium()
    print(f"   -> perf/price falls {premium.winstone_ratio_spread:.1f}x from the "
          f"bottom to the top of the line; the last Winstone point costs "
          f"${premium.marginal_cost_high:.0f} vs ${premium.marginal_cost_low:.0f} "
          f"at the low end.\n")

    # --- Barrier 3: custom vs mass-market vs volume ------------------
    custom = ChipProject("custom_soc_core", core_kgates=180, sram_kbytes=24,
                         nre_usd=2_500_000, margin=1.2)
    mass = ChipProject("mass_market_cpu", core_kgates=650, sram_kbytes=32,
                       nre_usd=0.0, cumulative_volume=20_000_000, margin=3.0)
    volumes = [10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 5_000_000]
    print("Per-unit price vs product volume:")
    print(f"   {'volume':>10} {'custom SoC':>12} {'mass-market':>12}")
    for volume in volumes:
        custom_at = ChipProject(custom.name, custom.core_kgates, custom.sram_kbytes,
                                custom.nre_usd, volume, None, custom.margin)
        mass_at = ChipProject(mass.name, mass.core_kgates, mass.sram_kbytes,
                              0.0, volume, mass.cumulative_volume, mass.margin)
        print(f"   {volume:>10,} {unit_price(custom_at):>11.2f}$ "
              f"{unit_price(mass_at):>11.2f}$")
    crossover = crossover_volume(custom, mass, volumes)
    print(f"   -> the customized core wins above ~{crossover:,} units.\n")

    # --- §4.1: SoC integration changes the equation ------------------
    print("System-on-chip integration (set-top-class product):")
    for volume in (100_000, 500_000, 2_000_000):
        row = integration_advantage(reference_set_top_design(volume=volume), 35.0)
        print(f"   volume {volume:>9,}: discrete ${row['discrete_total_usd']:>6.2f}  "
              f"SoC ${row['soc_total_usd']:>6.2f}  saving ${row['saving_usd']:>6.2f}")
    print()

    # --- Barrier 5 / §6.1: tailor to an area, not an application -----
    model = DevelopmentCycleModel(freeze_to_ship_months=12, monthly_change_rate=0.05)
    exact = [KernelOutcome("target", speedup_if_targeted=1.8, speedup_if_untargeted=1.0)]
    area = [KernelOutcome("target", speedup_if_targeted=1.45, speedup_if_untargeted=1.3)]
    print("Development-cycle risk (12-month freeze-to-ship window):")
    print(f"   probability today's kernel still ships unchanged: "
          f"{model.survival_probability():.2f}")
    for survival in (1.0, 0.8, 0.6, 0.4, 0.2):
        exact_speedup = model.expected_speedup(exact, survival=survival)
        area_speedup = model.expected_speedup(area, survival=survival)
        winner = "exact" if exact_speedup > area_speedup else "area"
        print(f"   survival {survival:.1f}: exact {exact_speedup:.2f}x, "
              f"area {area_speedup:.2f}x  -> tailor to the {winner}")
    crossover_p = model.crossover_survival(exact, area)
    print(f"   -> below ~{crossover_p:.2f} survival probability, tailoring to the "
          f"application *area* is the better bet (the paper's §6.1 advice).")


if __name__ == "__main__":
    main()
