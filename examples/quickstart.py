"""Quickstart: compile, customize and simulate one embedded kernel.

Walks the full flow of the library in ~40 lines:

1. pick a machine description (the "table"),
2. compile a C kernel with the mass-customized toolchain,
3. measure it on the cycle-accurate simulator,
4. let the customizer derive an application-specific family member,
5. measure again and compare.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Toolchain, vliw4
from repro.arch import estimate_area
from repro.workloads import get_kernel

#: explicit input seed so repeated runs are bit-reproducible.
SEED = 1234


def main() -> None:
    kernel = get_kernel("viterbi_acs")          # GSM-style add-compare-select loop
    args = kernel.arguments(size=64, seed=SEED)
    run_args = tuple(list(a) if isinstance(a, list) else a for a in args)

    # 1. A generic 4-issue VLIW family member, described entirely by tables.
    base_machine = vliw4()
    toolchain = Toolchain(base_machine, opt_level=3)
    print(toolchain.describe())

    # 2-3. Compile and simulate on the base machine.
    module = toolchain.frontend(kernel.source, kernel.name)
    artifacts = toolchain.build(module.clone())
    baseline = toolchain.run(artifacts, kernel.entry, *run_args)
    print(f"\nbaseline  : {baseline.cycles:6d} cycles, "
          f"{baseline.time_us:7.2f} us, {baseline.energy_uj:6.1f} uJ, "
          f"IPC {baseline.stats.ipc:.2f}")

    # 4. Automatically customize the ISA for this kernel (40 kgates budget).
    custom_toolchain = toolchain.customize(
        module, area_budget_kgates=40.0,
        profile_entry=kernel.entry, profile_args=run_args)
    report = custom_toolchain.last_customization.report
    print(f"\ncustomizer: {report.summary()}")

    # 5. Re-measure on the customized family member.
    custom_artifacts = custom_toolchain.build(module)
    custom = custom_toolchain.run(custom_artifacts, kernel.entry, *run_args)
    print(f"customized: {custom.cycles:6d} cycles, "
          f"{custom.time_us:7.2f} us, {custom.energy_uj:6.1f} uJ, "
          f"IPC {custom.stats.ipc:.2f}")

    assert custom.value == baseline.value == kernel.expected(args)
    base_area = estimate_area(base_machine).core
    custom_area = estimate_area(custom_toolchain.machine).core
    print(f"\nspeedup   : {baseline.cycles / custom.cycles:.2f}x "
          f"for {custom_area - base_area:.1f} kgates "
          f"({100 * (custom_area - base_area) / base_area:.1f}% core area)")

    print("\nGenerated VLIW assembly (first 12 lines):")
    for line in custom_artifacts.assembly.splitlines()[:12]:
        print("   ", line)


if __name__ == "__main__":
    main()
