"""Quickstart: compile, customize and simulate one embedded kernel.

Walks the full flow of the library through the :class:`repro.Session`
service façade:

1. open a session (it owns the artifact store, compile pipeline and
   defaults that used to be process-global),
2. compile a C kernel with a session-bound toolchain and measure it on
   the cycle-accurate simulator,
3. submit a serializable ``CustomizeRequest`` — the same JSON a remote
   client (or ``python -m repro customize``) would send — and read the
   provenance-carrying response,
4. rebuild on the customized family member and inspect the assembly.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import CustomizeRequest, Session, vliw4
from repro.arch import estimate_area
from repro.workloads import get_kernel

#: explicit input seed so repeated runs are bit-reproducible.
SEED = 1234
SIZE = 64


def main() -> None:
    kernel = get_kernel("viterbi_acs")          # GSM-style add-compare-select loop
    args = kernel.arguments(size=SIZE, seed=SEED)
    run_args = tuple(list(a) if isinstance(a, list) else a for a in args)

    with Session(opt_level=3, seed=SEED) as session:
        # 1-3. A generic 4-issue VLIW family member, described entirely by
        # tables; compile and simulate through a session-bound toolchain.
        base_machine = vliw4()
        toolchain = session.toolchain(base_machine)
        print(toolchain.describe())

        module = toolchain.frontend(kernel.source, kernel.name)
        artifacts = toolchain.build(module.clone())
        baseline = toolchain.run(artifacts, kernel.entry, *run_args)
        print(f"\nbaseline  : {baseline.cycles:6d} cycles, "
              f"{baseline.time_us:7.2f} us, {baseline.energy_uj:6.1f} uJ, "
              f"IPC {baseline.stats.ipc:.2f}")

        # 4. Customization as a service: a serializable request in, a
        # provenance-carrying response out.  The same JSON drives
        # `python -m repro customize --kernel viterbi_acs --budget 40`.
        request = CustomizeRequest(kernel=kernel.name, machine="vliw4",
                                   area_budget_kgates=40.0, size=SIZE)
        print(f"\nrequest   : {request.to_json()}")
        response = session.submit(request).result()
        print(f"customizer: {response.summary}")
        print(f"customized: {response.custom_cycles:6d} cycles "
              f"({response.speedup:.2f}x, ops: "
              f"{', '.join(response.selected_ops) or '(none)'})")
        assert response.correct

        # 5. The customized family member is a first-class machine: rebuild
        # the module on it and read the generated VLIW assembly.
        custom_toolchain = toolchain.customize(
            module, area_budget_kgates=40.0,
            profile_entry=kernel.entry, profile_args=run_args)
        custom_artifacts = custom_toolchain.build(module)
        custom = custom_toolchain.run(custom_artifacts, kernel.entry, *run_args)

        assert custom.value == baseline.value == kernel.expected(args)
        assert custom.cycles == response.custom_cycles
        base_area = estimate_area(base_machine).core
        custom_area = estimate_area(custom_toolchain.machine).core
        print(f"\nspeedup   : {baseline.cycles / custom.cycles:.2f}x "
              f"for {custom_area - base_area:.1f} kgates "
              f"({100 * (custom_area - base_area) / base_area:.1f}% core area)")

        print("\nGenerated VLIW assembly (first 12 lines):")
        for line in custom_artifacts.assembly.splitlines()[:12]:
            print("   ", line)


if __name__ == "__main__":
    main()
