"""ISA drift in practice: moving a shipped binary across family members.

A codec kernel is built and ISA-customized for generation 1 of a processor
family.  Generation 2 drops gen-1's custom operations (it was customized
for a different product).  The script shows the four ways of coping that
paper §2 discusses — and what each costs — plus the code-cache staging
that amortises the one-time translation work.

Run with:  python examples/isa_drift_migration.py
"""

from __future__ import annotations

from repro.arch import vliw4
from repro.backend import compile_module
from repro.core import customize_isa
from repro.drift import BinaryTranslator, StagedExecutionModel, assess
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.workloads import get_kernel

#: explicit input seed so repeated runs are bit-reproducible.
SEED = 1234


def main() -> None:
    kernel = get_kernel("alpha_blend")
    args = kernel.arguments(64, seed=SEED)
    run_args = tuple(list(a) if isinstance(a, list) else a for a in args)

    # Generation 1: customized for this codec.
    module = compile_c(kernel.source, module_name=kernel.name)
    optimize(module, level=3)
    gen1 = vliw4("gen1")
    customization = customize_isa(module, gen1, area_budget_kgates=40.0,
                                  name="gen1_custom")
    gen1_machine = customization.machine
    gen1_binary, _ = compile_module(module, gen1_machine)
    native1 = CycleSimulator(gen1_binary).run(kernel.entry, *run_args)
    print(f"gen1 (customized) native build : {native1.cycles} cycles/run, "
          f"{len(gen1_machine.custom_ops)} custom ops")

    # Generation 2 drifts: same width, none of gen1's custom operations.
    gen2 = vliw4("gen2")
    verdict = assess(gen1_machine, gen2)
    print(f"\ngen1_custom -> gen2 drift      : binary compatible? "
          f"{verdict.runs_unmodified}; suggested remedy: {verdict.remedy}")
    for reason in verdict.reasons:
        print(f"   - {reason}")

    translator = BinaryTranslator()

    translated, static_report = translator.translate(gen1_binary, gen2)
    static = CycleSimulator(translated).run(kernel.entry, *run_args)
    print(f"\nstatic translation to gen2     : {static.cycles} cycles/run "
          f"({static_report.custom_ops_expanded} fused ops expanded, "
          f"one-time cost {static_report.translation_overhead_cycles} cycles)")

    reoptimized, dynamic_report = translator.translate(gen1_binary, gen2,
                                                       reoptimize=True)
    dynamic = CycleSimulator(reoptimized).run(kernel.entry, *run_args)
    print(f"dynamic re-optimization on gen2: {dynamic.cycles} cycles/run "
          f"(one-time cost {dynamic_report.translation_overhead_cycles} cycles)")

    fresh = compile_c(kernel.source, module_name=kernel.name)
    optimize(fresh, level=3)
    gen2_binary, _ = compile_module(fresh, gen2)
    native2 = CycleSimulator(gen2_binary).run(kernel.entry, *run_args)
    print(f"native recompile for gen2      : {native2.cycles} cycles/run")

    assert native1.value == static.value == dynamic.value == native2.value

    model = StagedExecutionModel(
        native_cycles=native2.cycles,
        translated_cycles=static.cycles,
        translation_cost=static_report.translation_overhead_cycles,
        reoptimization_cost=dynamic_report.translation_overhead_cycles,
    )
    print("\nAmortisation of the one-time costs (average overhead vs native):")
    for runs in (1, 5, 20, 100, 1000):
        print(f"   after {runs:>5} runs: {model.average_overhead(runs):5.2f}x")
    breakeven = model.break_even_runs(tolerance=1.10)
    print(f"   within 10% of native after {breakeven} runs")


if __name__ == "__main__":
    main()
