"""Custom-fit processors: explore the architecture space for a workload.

Submits a serializable ``ExploreRequest`` to a :class:`repro.Session`:
every candidate machine is generated from the same
architecture-description tables, compiled for, simulated, and scored
through the session's shared compile pipeline and batched evaluator.
The response carries the full evaluation table, the time/area Pareto
front, the "knee" machine a product team would pick, and provenance
(engine, timings, cache behaviour).  The same request JSON drives
``python -m repro explore``.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro import ExploreRequest, Session


def main() -> None:
    request = ExploreRequest(
        mix="video",
        strategy="exhaustive",
        objective="perf_per_area",
        size=24,
        opt_level=2,
        # The screening engine: functional execution + schedule-derived
        # timing, several times faster than cycle-accurate simulation —
        # the mode meant for wide sweeps like this one.
        engine="compiled",
        space={
            "issue_widths": [1, 2, 4, 8],
            "register_counts": [32, 64],
            "cluster_counts": [1],
            "mul_unit_counts": [1, 2],
            "mem_unit_counts": [2],
            "custom_budgets": [0.0, 40.0],
        },
        # Fan the 24 candidate evaluations out over the BatchEvaluator
        # process pool; results are bit-identical to a serial run.
        workers=4,
    )
    print(f"Workload mix: {request.mix}  (request: {request.to_json()[:72]}...)")

    with Session() as session:
        response = session.submit(request).result()

    print(f"Explored {response.points_evaluated} design points "
          f"(issue width x registers x FU mix x ISE budget)\n")

    print(f"{'machine':<22} {'ok':<4} {'cycles':>9} {'us':>8} {'kgates':>8} "
          f"{'code B':>8} {'perf/area':>10}")
    for row in response.rows:
        print(f"{row['machine']:<22} {'y' if row['feasible'] else 'n':<4} "
              f"{row['cycles']:>9} {row['time_us']:>8} {row['area_kgates']:>8} "
              f"{row['code_bytes']:>8} {row['perf_per_area']:>10}")

    print("\nPareto front (execution time vs core area):")
    by_machine = {row["machine"]: row for row in response.rows}
    for name in response.pareto:
        row = by_machine[name]
        print(f"   {name:<22} {row['time_us']:>9} us   "
              f"{row['area_kgates']:>7} kgates   "
              f"{row['custom_ops']} custom ops")

    if response.knee is not None:
        print(f"\nKnee of the front : {response.knee['machine']} "
              f"({response.knee['time_us']} us, "
              f"{response.knee['area_kgates']} kgates)")
    if response.best is not None:
        print(f"Best {response.objective}: {response.best['machine']} "
              f"({response.best['perf_per_area']} perf/kgate)")

    provenance = response.provenance
    print(f"\nServed by {provenance.session} in {provenance.elapsed_s:.1f} s "
          f"(engine: {provenance.engine}; batch: "
          f"{provenance.cache['batch']})")


if __name__ == "__main__":
    main()
