"""Custom-fit processors: explore the architecture space for a workload.

Uses the design-space explorer to fit a VLIW family member to the video
workload mix: every candidate machine is generated from the same
architecture-description tables, compiled for, simulated, and scored; the
script prints the full evaluation table, the time/area Pareto front, and
the "knee" machine a product team would pick.

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

from repro.dse import DesignSpace, Evaluator, Explorer
from repro.workloads import get_mix


def main() -> None:
    mix = get_mix("video")
    print(f"Workload mix: {mix.name} ({', '.join(mix.names())})")

    evaluator = Evaluator(mix, size=32, opt_level=3)
    explorer = Explorer(evaluator, objective="perf_per_area")

    space = DesignSpace(
        issue_widths=(1, 2, 4, 8),
        register_counts=(32, 64),
        cluster_counts=(1,),
        mul_unit_counts=(1, 2),
        mem_unit_counts=(1, 2),
        custom_budgets=(0.0, 40.0),
    )
    print(f"Design space: {space.size()} points "
          f"(issue width x registers x FU mix x ISE budget)\n")

    result = explorer.exhaustive(space)

    print(f"{'machine':<22} {'ok':<4} {'cycles':>9} {'us':>8} {'kgates':>8} "
          f"{'code B':>8} {'perf/area':>10}")
    for row in result.table():
        print(f"{row['machine']:<22} {'y' if row['feasible'] else 'n':<4} "
              f"{row['cycles']:>9} {row['time_us']:>8} {row['area_kgates']:>8} "
              f"{row['code_bytes']:>8} {row['perf_per_area']:>10}")

    print("\nPareto front (execution time vs core area):")
    for evaluation in sorted(result.pareto(), key=lambda e: e.area_kgates):
        print(f"   {evaluation.machine.name:<22} "
              f"{evaluation.weighted_time_us:9.1f} us   "
              f"{evaluation.area_kgates:7.1f} kgates   "
              f"{evaluation.custom_ops} custom ops")

    knee = result.knee()
    best = result.best
    if knee is not None:
        print(f"\nKnee of the front : {knee.machine.name} "
              f"({knee.weighted_time_us:.1f} us, {knee.area_kgates:.1f} kgates)")
    if best is not None:
        print(f"Best {result.objective}: {best.machine.name} "
              f"({best.perf_per_area:.4f} perf/kgate)")


if __name__ == "__main__":
    main()
