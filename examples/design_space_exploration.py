"""Custom-fit processors: explore the architecture space for a workload.

Submits serializable ``ExploreRequest``s to a :class:`repro.Session` and
demonstrates the two timing-model fidelities side by side:

1. **cycle fidelity** — every candidate machine is compiled for and
   executed on the cycle-accurate simulator (exact, slow);
2. **screen-then-rescore** (``rescore=True``) — the whole space is
   screened with the trace-based analytic model (each kernel profiled
   once, every machine priced from its static schedules), then only the
   time/area Pareto frontier is re-scored on the cycle simulator.  The
   per-row ``fidelity`` field records which model produced each number.

Both responses carry the full evaluation table, the Pareto front, the
"knee" machine a product team would pick, and provenance (engine,
fidelity, timings, cache behaviour).  The same request JSON drives
``python -m repro explore`` (add ``--rescore``).

Run with:  python examples/design_space_exploration.py
"""

from __future__ import annotations

import time

from repro import ExploreRequest, Session

# Pure architecture axes: 26 feasible points.  (ISE customization adds a
# large per-point pattern-search cost that is the same at every fidelity
# — see examples/customize_dsp_core.py for that axis; here the cost
# being compared is the *measurement* of each design point.)
SPACE = {
    "issue_widths": [1, 2, 4, 8],
    "register_counts": [32, 64],
    "cluster_counts": [1],
    "mul_unit_counts": [1, 2],
    "mem_unit_counts": [1, 2],
    "custom_budgets": [0.0],
}


def explore(session: Session, **overrides):
    request = ExploreRequest(
        mix="video", strategy="exhaustive", objective="perf_per_area",
        size=24, opt_level=2, space=SPACE, **overrides)
    started = time.perf_counter()
    response = session.submit(request).result()
    return response, time.perf_counter() - started


def main() -> None:
    # Each pass gets its own cold session: sessions never share artifact
    # stores, so neither pass can serve the other's evaluations from the
    # memo and the timing comparison is honest end-to-end (compiles,
    # profiling and measurement included).
    with Session() as session:
        # Pass 1 — ground truth: simulate every design point.
        cycle_response, cycle_s = explore(session, fidelity="cycle")

    with Session() as session:
        # Pass 2 — screen the space analytically, re-simulate only the
        # Pareto frontier (plus the screening winner).
        rescore_response, rescore_s = explore(session, rescore=True)

    print(f"Workload mix: video, {cycle_response.points_evaluated} design "
          f"points (issue width x registers x FU mix x ISE budget)\n")

    print(f"{'machine':<22} {'fid':<6} {'ok':<4} {'cycles':>9} {'us':>8} "
          f"{'kgates':>8} {'code B':>8} {'perf/area':>10}")
    for row in rescore_response.rows:
        print(f"{row['machine']:<22} {row['fidelity']:<6} "
              f"{'y' if row['feasible'] else 'n':<4} "
              f"{row['cycles']:>9} {row['time_us']:>8} {row['area_kgates']:>8} "
              f"{row['code_bytes']:>8} {row['perf_per_area']:>10}")

    print("\nPareto front (execution time vs core area, re-scored at "
          "cycle fidelity):")
    by_machine = {row["machine"]: row for row in rescore_response.rows}
    for name in rescore_response.pareto:
        row = by_machine[name]
        print(f"   {name:<22} {row['time_us']:>9} us   "
              f"{row['area_kgates']:>7} kgates   "
              f"{row['custom_ops']} custom ops")

    if rescore_response.knee is not None:
        print(f"\nKnee of the front : {rescore_response.knee['machine']} "
              f"({rescore_response.knee['time_us']} us, "
              f"{rescore_response.knee['area_kgates']} kgates)")

    best_cycle = cycle_response.best
    best_rescore = rescore_response.best
    agree = (best_cycle and best_rescore
             and best_cycle["machine"] == best_rescore["machine"])
    print(f"Best {rescore_response.objective}: {best_rescore['machine']} "
          f"({best_rescore['perf_per_area']} perf/kgate) — "
          f"{'same winner as' if agree else 'DIFFERS from'} the full "
          f"cycle-fidelity sweep")

    print(f"\nTiming: cycle fidelity {cycle_s:.2f} s vs screen-then-rescore "
          f"{rescore_s:.2f} s ({cycle_s / max(rescore_s, 1e-9):.1f}x) — "
          f"fidelity recorded in provenance: "
          f"'{cycle_response.provenance.fidelity}' vs "
          f"'{rescore_response.provenance.fidelity}'")
    rescore = rescore_response.provenance.cache.get("rescore", {})
    print(f"(screen-then-rescore simulated only "
          f"{rescore.get('points', '?')} points at cycle fidelity instead "
          f"of all {rescore_response.points_evaluated}; the analytic "
          f"screen itself is ~35x faster than simulation — see "
          f"BENCH_trace_model.json)")


if __name__ == "__main__":
    main()
