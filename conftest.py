"""Root conftest: command-line options shared by tests/ and benchmarks/.

``pytest_addoption`` must live in an *initial* conftest (one pytest
loads before parsing the command line), which for a bare ``pytest`` run
from the repository root is this file — ``benchmarks/conftest.py`` is
discovered too late.  The option itself is consumed by the benchmark
suite's shared :func:`benchmarks.conftest.shrink_knob` helper.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--shrink", action="store_true", default=False,
        help="benchmark smoke scale: shrink experiment workloads to the "
             "CI sizes (per-knob env vars still override)")
