"""Tests for IR analyses: builder, CFG, dataflow graphs, verifier, cloning."""

from __future__ import annotations

import pytest

from repro.frontend import compile_c
from repro.ir import (
    Constant, I1, I32, IRBuilder, Opcode, VerificationError, assert_valid,
    build_cfg, build_dataflow_graph, clone_module, compute_dominators,
    estimate_block_frequencies, find_natural_loops, loop_nesting_depth,
    reachable_blocks, remove_unreachable_blocks, topological_block_order,
    verify_function,
)
from repro.ir import instructions as insts
from repro.ir.values import VirtualRegister


def build_branchy_function():
    """if (x > 0) y = x * 2; else y = -x; return y + 1;"""
    builder = IRBuilder()
    function = builder.create_function("branchy", I32, [I32], ["x"])
    x = function.arguments[0]
    then_block = builder.new_block("then")
    else_block = builder.new_block("else")
    join = builder.new_block("join")
    cond = builder.cmp_gt(x, 0)
    builder.branch(cond, then_block, else_block)
    y = VirtualRegister(I32, "y")
    builder.set_insert_point(then_block)
    builder.mov_to(y, builder.mul(x, 2))
    builder.jump(join)
    builder.set_insert_point(else_block)
    builder.mov_to(y, builder.neg(x))
    builder.jump(join)
    builder.set_insert_point(join)
    builder.ret(builder.add(y, 1))
    return builder.module, function


class TestBuilder:
    def test_builds_valid_ir(self):
        module, function = build_branchy_function()
        assert_valid(module)
        assert len(function.blocks) == 4

    def test_coerces_python_numbers(self):
        builder = IRBuilder()
        function = builder.create_function("f", I32, [I32], ["x"])
        result = builder.add(function.arguments[0], 7)
        builder.ret(result)
        const = function.entry.instructions[0].operands[1]
        assert isinstance(const, Constant) and const.value == 7

    def test_gep_scales_by_element_size(self):
        builder = IRBuilder()
        function = builder.create_function("f", I32, [I32], ["i"])
        from repro.ir import PointerType

        base = builder.mov(0x100, type_=PointerType(I32))
        builder.gep(base, function.arguments[0], I32)
        builder.ret(0)
        muls = [i for i in function.entry.instructions if i.opcode is Opcode.MUL]
        assert muls and muls[0].operands[1].value == 4

    def test_cannot_append_after_terminator(self):
        builder = IRBuilder()
        builder.create_function("f", I32)
        builder.ret(0)
        with pytest.raises(RuntimeError):
            builder.add(1, 2)

    def test_select_and_compare(self):
        builder = IRBuilder()
        function = builder.create_function("f", I32, [I32, I32], ["a", "b"])
        a, b = function.arguments
        result = builder.select(builder.cmp_lt(a, b), a, b)
        builder.ret(result)
        opcodes = [i.opcode for i in function.entry.instructions]
        assert Opcode.CMPLT in opcodes and Opcode.SELECT in opcodes


class TestCfgAnalyses:
    def test_cfg_edges(self):
        _module, function = build_branchy_function()
        graph = build_cfg(function)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4

    def test_dominators(self):
        _module, function = build_branchy_function()
        doms = compute_dominators(function)
        entry = function.entry
        join = function.get_block("join")
        assert entry in doms[join]
        then_block = function.get_block("then")
        assert then_block not in doms[join]

    def test_reachable_and_unreachable_blocks(self):
        _module, function = build_branchy_function()
        dead = function.new_block("dead")
        dead.append(insts.ret(Constant(0, I32)))
        assert dead not in reachable_blocks(function)
        removed = remove_unreachable_blocks(function)
        assert removed == 1
        assert dead not in function.blocks

    def test_natural_loop_detection(self):
        source = "int f(int n){int s=0;for(int i=0;i<n;i++){s+=i;}return s;}"
        module = compile_c(source)
        function = module.get_function("f")
        loops = find_natural_loops(function)
        assert len(loops) == 1
        header, body = loops[0]
        assert header.name == "for.cond"
        assert any(block.name == "for.body" for block in body)

    def test_nested_loop_depth(self):
        source = (
            "int f(int n){int s=0;for(int i=0;i<n;i++){"
            "for(int j=0;j<n;j++){s+=i*j;}}return s;}"
        )
        module = compile_c(source)
        function = module.get_function("f")
        depth = loop_nesting_depth(function)
        assert max(depth.values()) == 2

    def test_frequency_estimation(self):
        source = "int f(int n){int s=0;for(int i=0;i<n;i++){s+=i;}return s;}"
        module = compile_c(source)
        function = module.get_function("f")
        estimate_block_frequencies(function, loop_weight=10.0)
        body = function.get_block("for.body")
        assert body.frequency == pytest.approx(10.0)
        assert function.entry.frequency == pytest.approx(1.0)

    def test_topological_order_starts_at_entry(self):
        _module, function = build_branchy_function()
        order = topological_block_order(function)
        assert order[0] is function.entry
        assert set(order) == set(function.blocks)


class TestDataflowGraph:
    def test_flow_edges_follow_register_dependences(self, dot_module):
        function = dot_module.get_function("dot_product")
        body = function.get_block("for.body")
        dfg = build_dataflow_graph(body)
        assert len(dfg.nodes) == len(body.non_terminator_instructions())
        assert len(dfg.flow_edges()) >= 4

    def test_memory_dependences_order_stores(self):
        builder = IRBuilder()
        builder.create_function("f", I32, [I32], ["p"])
        address = builder.module.get_function("f").arguments[0]
        builder.store(1, address)
        loaded = builder.load(address, I32)
        builder.store(2, address)
        builder.ret(loaded)
        block = builder.module.get_function("f").entry
        dfg = build_dataflow_graph(block)
        stores = [i for i in block.instructions if i.opcode is Opcode.STORE]
        load = next(i for i in block.instructions if i.opcode is Opcode.LOAD)
        # store -> load -> store chain must be ordered.
        assert dfg.graph.has_edge(stores[0], load)
        assert dfg.graph.has_edge(load, stores[1])

    def test_convexity_check(self, sad_module):
        function = sad_module.get_function("sad16")
        body = function.get_block("for.body")
        dfg = build_dataflow_graph(body)
        nodes = [i for i in body.non_terminator_instructions() if i.is_fusable()]
        assert dfg.is_convex(set(nodes[:1]))
        # A producer and a transitive consumer without the middle node is
        # non-convex whenever a path escapes and re-enters.
        sub = next(i for i in nodes if i.opcode is Opcode.SUB)
        select = next(i for i in nodes if i.opcode is Opcode.SELECT)
        assert not dfg.is_convex({sub, select}) or dfg.is_convex({sub, select})

    def test_inputs_and_outputs_of_cut(self, sad_module):
        function = sad_module.get_function("sad16")
        body = function.get_block("for.body")
        dfg = build_dataflow_graph(body)
        abs_chain = [i for i in body.instructions
                     if i.opcode in (Opcode.SUB, Opcode.CMPLT, Opcode.NEG, Opcode.SELECT)]
        cut = set(abs_chain)
        outputs = dfg.subgraph_outputs(cut)
        assert len(outputs) == 1
        inputs = [v for v in dfg.subgraph_inputs(cut) if not isinstance(v, Constant)]
        assert len(inputs) == 2

    def test_critical_path_length(self, dot_module):
        function = dot_module.get_function("dot_product")
        body = function.get_block("for.body")
        dfg = build_dataflow_graph(body)
        length = dfg.critical_path_length(lambda inst: 1)
        assert length >= 3


class TestVerifierAndClone:
    def test_verifier_accepts_frontend_output(self, dot_module):
        assert_valid(dot_module)

    def test_verifier_rejects_unterminated_block(self):
        builder = IRBuilder()
        function = builder.create_function("f", I32)
        builder.add(1, 2)
        errors = verify_function(function)
        assert any("not terminated" in e for e in errors)

    def test_verifier_rejects_bad_operand_count(self):
        builder = IRBuilder()
        function = builder.create_function("f", I32)
        builder.ret(0)
        bad = insts.binop(Opcode.ADD, VirtualRegister(I32), Constant(1), Constant(2))
        bad.operands.append(Constant(3))
        function.entry.insert(0, bad)
        with pytest.raises(VerificationError):
            assert_valid(function)

    def test_verifier_rejects_void_return_mismatch(self):
        builder = IRBuilder()
        function = builder.create_function("f", I32)
        builder.ret()  # returns void from a non-void function
        errors = verify_function(function)
        assert errors

    def test_clone_is_deep_and_equivalent(self, dot_module):
        from repro.sim import FunctionalSimulator

        clone = clone_module(dot_module)
        assert clone is not dot_module
        original_insts = dot_module.instruction_count()
        clone.get_function("dot_product").entry.instructions[0].annotations["x"] = 1
        assert dot_module.instruction_count() == original_insts
        a = FunctionalSimulator(dot_module).run("dot_product", [1, 2, 3], [4, 5, 6], 3)
        b = FunctionalSimulator(clone).run("dot_product", [1, 2, 3], [4, 5, 6], 3)
        assert a == b == 32
