"""Tests for the C front end, validated through the functional simulator."""

from __future__ import annotations

import pytest

from repro.frontend import CFrontendError, compile_c
from repro.frontend.c_frontend import preprocess
from repro.ir import assert_valid
from repro.sim import FunctionalSimulator


def run_c(source: str, entry: str, *args):
    module = compile_c(source)
    assert_valid(module)
    return FunctionalSimulator(module).run(entry, *args)


class TestPreprocessor:
    def test_define_expansion(self):
        source = "#define N 8\nint f(void){return N + N;}"
        assert "8 + 8" in preprocess(source)

    def test_comments_stripped(self):
        source = "/* block */ int f(void){ // line\n return 1; }"
        text = preprocess(source)
        assert "block" not in text and "line" not in text

    def test_longest_macro_wins(self):
        source = "#define N 4\n#define NN 9\nint f(void){return NN;}"
        assert "return 9" in preprocess(source)


class TestExpressions:
    def test_arithmetic(self):
        assert run_c("int f(int a,int b){return a*b+a-b;}", "f", 7, 3) == 7 * 3 + 7 - 3

    def test_division_truncates_toward_zero(self):
        assert run_c("int f(int a,int b){return a/b;}", "f", -7, 2) == -3
        assert run_c("int f(int a,int b){return a%b;}", "f", -7, 2) == -1

    def test_bitwise_and_shifts(self):
        assert run_c("int f(int a){return (a << 3) | (a & 5);}", "f", 9) == (9 << 3) | (9 & 5)
        assert run_c("int f(int a){return a >> 2;}", "f", -64) == -16
        assert run_c("unsigned int f(unsigned int a){return a >> 2;}", "f", 64) == 16

    def test_comparisons_and_logical(self):
        assert run_c("int f(int a,int b){return a < b;}", "f", 1, 2) == 1
        assert run_c("int f(int a,int b){return (a > 0) && (b > 0);}", "f", 1, 2) == 1
        assert run_c("int f(int a,int b){return (a > 0) || (b > 0);}", "f", -1, -2) == 0

    def test_ternary(self):
        src = "int clamp(int x){return x > 100 ? 100 : (x < 0 ? 0 : x);}"
        assert run_c(src, "clamp", 250) == 100
        assert run_c(src, "clamp", -3) == 0
        assert run_c(src, "clamp", 42) == 42

    def test_unary_operators(self):
        assert run_c("int f(int a){return -a;}", "f", 5) == -5
        assert run_c("int f(int a){return ~a;}", "f", 0) == -1
        assert run_c("int f(int a){return !a;}", "f", 0) == 1

    def test_compound_assignment_and_increment(self):
        src = "int f(int a){int x = a; x += 3; x *= 2; x++; return x;}"
        assert run_c(src, "f", 4) == ((4 + 3) * 2) + 1

    def test_cast(self):
        assert run_c("int f(int a){return (char)a;}", "f", 300) == 44


class TestControlFlow:
    def test_if_else(self):
        src = "int f(int x){if (x > 0) {return 1;} else {return -1;}}"
        assert run_c(src, "f", 5) == 1
        assert run_c(src, "f", -5) == -1

    def test_while_loop(self):
        src = "int f(int n){int s=0;int i=0;while(i<n){s+=i;i++;}return s;}"
        assert run_c(src, "f", 10) == sum(range(10))

    def test_do_while_loop(self):
        src = "int f(int n){int s=0;int i=0;do{s+=i;i++;}while(i<n);return s;}"
        assert run_c(src, "f", 5) == sum(range(5))
        assert run_c(src, "f", 0) == 0  # body runs once

    def test_for_with_break_continue(self):
        src = (
            "int f(int n){int s=0;for(int i=0;i<n;i++){"
            "if(i==3){continue;} if(i==7){break;} s+=i;}return s;}"
        )
        assert run_c(src, "f", 100) == 0 + 1 + 2 + 4 + 5 + 6

    def test_nested_loops(self):
        src = (
            "int f(int n){int s=0;for(int i=0;i<n;i++){"
            "for(int j=0;j<i;j++){s+=1;}}return s;}"
        )
        assert run_c(src, "f", 6) == sum(range(6))

    def test_missing_return_defaults_to_zero(self):
        assert run_c("int f(int x){if (x > 0) {return 1;}}", "f", -1) == 0


class TestMemoryAndArrays:
    def test_pointer_parameter_read_write(self):
        src = "int f(int *a, int n){int s=0;for(int i=0;i<n;i++){a[i]=i*i;s+=a[i];}return s;}"
        data = [0] * 5
        result = run_c(src, "f", data, 5)
        assert result == sum(i * i for i in range(5))
        assert data == [i * i for i in range(5)]

    def test_local_array_with_initializer(self):
        src = "int f(void){int t[4] = {1, 2, 3, 4}; return t[0] + t[3];}"
        assert run_c(src, "f") == 5

    def test_global_array(self):
        src = "int lut[4] = {10, 20, 30, 40};\nint f(int i){return lut[i];}"
        assert run_c(src, "f", 2) == 30

    def test_global_scalar(self):
        src = "int seed = 7;\nint f(int x){seed = seed + x; return seed;}"
        assert run_c(src, "f", 3) == 10

    def test_pointer_dereference(self):
        src = "int f(int *p){*p = 99; return *p + 1;}"
        data = [0]
        assert run_c(src, "f", data) == 100
        assert data[0] == 99

    def test_char_array_types(self):
        src = "int f(unsigned char *p, int n){int s=0;for(int i=0;i<n;i++){s+=p[i];}return s;}"
        assert run_c(src, "f", [200, 100, 55], 3) == 355

    def test_function_calls(self):
        src = (
            "int square(int x){return x * x;}\n"
            "int f(int a, int b){return square(a) + square(b);}"
        )
        assert run_c(src, "f", 3, 4) == 25


class TestFrontendErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(CFrontendError):
            compile_c("int f(void){return missing;}")

    def test_unsupported_statement(self):
        with pytest.raises(CFrontendError):
            compile_c("int f(int x){goto end; end: return x;}")

    def test_parse_error(self):
        with pytest.raises(CFrontendError):
            compile_c("int f(int x){return x +;}")

    def test_varargs_rejected(self):
        with pytest.raises(CFrontendError):
            compile_c("int f(int x, ...){return x;}")
