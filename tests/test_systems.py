"""Tests for the higher-level systems: toolchain facade, N×M matrix,
design-space exploration, ISA drift, economics models, workloads."""

from __future__ import annotations

import pytest

from repro.arch import IsaFamily, risc_baseline, vliw2, vliw4, vliw8
from repro.backend import compile_module
from repro.drift import (
    BinaryTranslator, CodeCache, StagedExecutionModel, assess, expand_custom_ops,
    family_compatibility_report,
)
from repro.dse import (
    DesignPoint, DesignSpace, Evaluator, Explorer, dominates, pareto_front,
    run_ablation,
)
from repro.econ import (
    ChipProject, DevelopmentCycleModel, KernelOutcome, ProcessAssumptions,
    analyze_premium, compute_table1, cost_vs_volume, crossover_volume,
    integration_advantage, matches_published_ratios, reference_set_top_design,
    unit_cost, unit_price,
)
from repro.core import customize_isa, global_extension_library
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import CycleSimulator
from repro.toolchain import Toolchain, run_matrix
from repro.workloads import DOMAINS, KERNELS, compile_kernel, get_kernel, get_mix


class TestWorkloads:
    def test_every_kernel_compiles_and_matches_oracle(self):
        from repro.sim import FunctionalSimulator

        for name, kernel in sorted(KERNELS.items()):
            module = compile_kernel(name)
            args = kernel.arguments(min(kernel.default_size, 32))
            expected = kernel.expected(args)
            value = FunctionalSimulator(module).run(
                kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
            assert value == expected, name

    def test_domains_cover_paper_list(self):
        assert {"dsp", "video", "network", "camera", "printer"} <= set(DOMAINS)

    def test_mixes_reference_existing_kernels(self):
        for mix_name in ("cellphone", "video", "network"):
            mix = get_mix(mix_name)
            for kernel, weight in mix.kernels():
                assert kernel.name in KERNELS
                assert weight > 0

    def test_unknown_kernel_and_mix_raise(self):
        with pytest.raises(KeyError):
            get_kernel("missing")
        with pytest.raises(KeyError):
            get_mix("missing")


class TestToolchainFacade:
    def test_compile_and_run_single_call(self):
        kernel = get_kernel("dot_product")
        toolchain = Toolchain(vliw4(), opt_level=2)
        artifacts, result = toolchain.compile_and_run(
            kernel.source, kernel.entry, [1, 2, 3, 4], [5, 6, 7, 8], 4,
            name=kernel.name)
        assert result.value == 1 * 5 + 2 * 6 + 3 * 7 + 4 * 8
        assert artifacts.code_size is not None
        assert artifacts.area.core > 0
        assert ".function dot_product" in artifacts.assembly
        assert artifacts.binary.total_words > 0

    def test_retarget_shares_source(self):
        kernel = get_kernel("ip_checksum")
        toolchain = Toolchain(vliw2(), opt_level=2)
        module = toolchain.frontend(kernel.source, kernel.name)
        args = kernel.arguments(32)
        expected = kernel.expected(args)
        for target in (vliw2(), vliw4(), vliw8()):
            retargeted = toolchain.retarget(target)
            artifacts = retargeted.build(module.clone())
            result = retargeted.run(
                artifacts, kernel.entry,
                *[list(a) if isinstance(a, list) else a for a in args])
            assert result.value == expected

    def test_customize_produces_new_family_member(self):
        kernel = get_kernel("viterbi_acs")
        toolchain = Toolchain(vliw4(), opt_level=3)
        module = toolchain.frontend(kernel.source, kernel.name)
        custom = toolchain.customize(module, area_budget_kgates=40.0)
        assert custom.machine.custom_ops
        assert custom.machine.name != toolchain.machine.name

    def test_nxm_matrix_all_pass(self):
        report = run_matrix(
            [risc_baseline(), vliw4()],
            kernel_names=["dot_product", "saturated_add", "ip_checksum"],
            size=16,
        )
        assert len(report.cells) == 6
        assert report.all_correct, [c.error for c in report.failures]
        assert report.pass_rate() == 1.0
        assert set(report.machines) == {"risc32", "vliw4"}
        rows = report.to_rows()
        assert all(row["ok"] == "pass" for row in rows)


class TestDesignSpaceExploration:
    def test_space_enumeration_respects_constraints(self):
        space = DesignSpace(issue_widths=(2, 4), cluster_counts=(1, 2),
                            register_counts=(32,), mul_unit_counts=(1,),
                            mem_unit_counts=(1,))
        points = list(space.points())
        assert all(p.issue_width % p.clusters == 0 for p in points)
        assert space.size() == len(points)

    def test_design_point_builds_valid_machine(self):
        machine = DesignPoint(issue_width=4, registers=64).to_machine()
        machine.validate()
        assert machine.issue_width == 4

    def test_pareto_front_properties(self):
        items = [(1.0, 5.0), (2.0, 2.0), (3.0, 3.0), (5.0, 1.0)]
        front = pareto_front(items, key=lambda t: t)
        assert (3.0, 3.0) not in front
        assert {(1.0, 5.0), (2.0, 2.0), (5.0, 1.0)} == set(front)
        assert dominates((1.0, 1.0), (2.0, 2.0))
        assert not dominates((1.0, 3.0), (2.0, 2.0))

    def test_exhaustive_exploration_finds_wider_machine_faster(self):
        evaluator = Evaluator(get_mix("video"), size=24, opt_level=2)
        explorer = Explorer(evaluator, objective="performance")
        space = DesignSpace(issue_widths=(1, 4), register_counts=(64,),
                            cluster_counts=(1,), mul_unit_counts=(1,),
                            mem_unit_counts=(2,))
        result = explorer.exhaustive(space)
        assert result.best is not None and result.best.feasible
        assert result.best.machine.issue_width == 4
        assert len(result.pareto()) >= 1
        assert result.table()

    def test_greedy_exploration_terminates(self):
        evaluator = Evaluator(get_mix("network"), size=16, opt_level=2)
        explorer = Explorer(evaluator, objective="perf_per_area")
        space = DesignSpace.small()
        result = explorer.greedy(space, max_rounds=1)
        assert result.best is not None
        assert result.points_evaluated >= 1

    def test_ablation_covers_every_axis(self):
        evaluator = Evaluator(get_mix("medical"), size=16, opt_level=2)
        rows = run_ablation(evaluator, vliw4(), custom_budget=30.0)
        axes = {row.axis for row in rows}
        assert {"reference", "issue_width", "registers", "fu_mix", "latency",
                "encoding", "custom_ops"} <= axes
        reference = next(r for r in rows if r.axis == "reference")
        assert reference.speedup == pytest.approx(1.0)


class TestIsaDrift:
    def _customized_program(self):
        kernel = get_kernel("saturated_add")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        base = vliw4("family_base")
        result = customize_isa(module, base, area_budget_kgates=40.0,
                               name="family_custom")
        compiled, _ = compile_module(module, result.machine)
        return kernel, module, result, compiled

    def test_expand_custom_ops_restores_primitives(self):
        kernel, module, result, _compiled = self._customized_program()
        expanded = expand_custom_ops(module, global_extension_library(), supported=set())
        assert expanded > 0
        from repro.ir import Opcode

        assert all(i.opcode is not Opcode.CUSTOM for f in module.functions.values()
                   for i in f.instructions())
        args = kernel.arguments(24)
        from repro.sim import FunctionalSimulator

        value = FunctionalSimulator(module).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        assert value == kernel.expected(args)

    def test_translation_to_plain_member_runs_correctly(self):
        kernel, _module, result, compiled = self._customized_program()
        translator = BinaryTranslator()
        plain_target = vliw4("family_plain")
        translated, report = translator.translate(compiled, plain_target)
        assert report.custom_ops_expanded > 0
        assert report.translation_overhead_cycles > 0
        args = kernel.arguments(24)
        value = CycleSimulator(translated).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        assert value.value == kernel.expected(args)

    def test_reoptimization_recovers_custom_ops(self):
        kernel, _module, result, compiled = self._customized_program()
        translator = BinaryTranslator()
        target = result.machine.clone("family_custom2")
        translated, report = translator.translate(compiled, target, reoptimize=True)
        assert report.reoptimized
        assert report.custom_ops_rematched >= 0
        args = kernel.arguments(24)
        value = CycleSimulator(translated).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        assert value.value == kernel.expected(args)

    def test_compatibility_assessment(self):
        base = vliw4("a")
        same = vliw4("b")
        verdict = assess(base, same)
        assert verdict.runs_unmodified
        narrow = vliw2("c")
        verdict = assess(base, narrow)
        assert not verdict.runs_unmodified
        assert verdict.remedy in ("translate", "reoptimize", "recompile")

    def test_family_report_rows(self):
        family = IsaFamily("fam", vliw4("gen1"))
        family.derive("gen2", issue_width=8)
        rows = family_compatibility_report(family)
        assert len(rows) == 2
        assert any(row["binary_compatible"] for row in rows)

    def test_staged_execution_amortisation(self):
        model = StagedExecutionModel(
            native_cycles=1000.0, translated_cycles=1300.0,
            translation_cost=50_000.0, reoptimization_cost=150_000.0,
        )
        assert model.average_overhead(1) > model.average_overhead(100)
        breakeven = model.break_even_runs(tolerance=1.5)
        assert breakeven is not None
        assert model.cumulative_cycles(10) > 0

    def test_code_cache_tiers(self):
        cache = CodeCache(translation_threshold=2, reoptimization_threshold=5)
        assert cache.touch("loop") == "cold"
        assert cache.touch("loop") == "translated"
        for _ in range(3):
            cache.touch("loop")
        assert cache.tier_of("loop") == "hot"
        assert cache.translations == 1 and cache.reoptimizations == 1


class TestEconomics:
    def test_table1_reproduction_matches_published_values(self):
        assert matches_published_ratios()
        table = compute_table1()
        assert len(table) == 6
        assert table[0]["winstone_per_dollar"] == pytest.approx(0.127, abs=1e-3)
        assert table[-1]["quake_per_dollar"] == pytest.approx(0.086, abs=1e-3)

    def test_premium_shape_high_end_pays_more(self):
        premium = analyze_premium()
        assert premium.winstone_ratio_spread > 2.0
        assert premium.marginal_cost_high > 3 * premium.marginal_cost_low
        assert premium.price_performance_exponent > 1.0

    def test_unit_cost_decreases_with_volume(self):
        project = ChipProject("chip", core_kgates=200, nre_usd=2e6)
        rows = cost_vs_volume(project, [10_000, 100_000, 1_000_000])
        costs = [row["unit_cost"] for row in rows]
        assert costs[0] > costs[1] > costs[2]

    def test_yield_and_area_sanity(self):
        from repro.econ import die_area_mm2, die_yield

        process = ProcessAssumptions()
        small = ChipProject("small", core_kgates=100)
        large = ChipProject("large", core_kgates=900)
        assert die_area_mm2(large, process) > die_area_mm2(small, process)
        assert die_yield(die_area_mm2(small, process), process) > die_yield(
            die_area_mm2(large, process), process)

    def test_crossover_exists_with_market_margins(self):
        custom = ChipProject("custom_soc", core_kgates=180, nre_usd=2.5e6, margin=1.2)
        mass = ChipProject("mass_market", core_kgates=650,
                           cumulative_volume=20_000_000, margin=3.0)
        volumes = [10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000,
                   2_000_000, 5_000_000]
        crossover = crossover_volume(custom, mass, volumes)
        assert crossover is not None
        assert 50_000 <= crossover <= 5_000_000
        # Below the crossover the mass-market part is cheaper per unit.
        below = ChipProject("custom_soc", core_kgates=180, nre_usd=2.5e6,
                            margin=1.2, volume=10_000)
        mass_below = ChipProject("mass_market", core_kgates=650, nre_usd=0.0,
                                 cumulative_volume=20_000_000, margin=3.0,
                                 volume=10_000)
        assert unit_price(below) > unit_price(mass_below)

    def test_soc_integration_wins_at_volume(self):
        design = reference_set_top_design(volume=500_000)
        comparison = integration_advantage(design, processor_price_usd=35.0)
        assert comparison["soc_wins"]
        assert comparison["saving_usd"] > 0

    def test_devcycle_expected_speedup_and_crossover(self):
        model = DevelopmentCycleModel(freeze_to_ship_months=12, monthly_change_rate=0.05)
        survival = model.survival_probability()
        assert 0.0 < survival < 1.0
        exact = [KernelOutcome("k", speedup_if_targeted=1.8, speedup_if_untargeted=1.0)]
        area = [KernelOutcome("k", speedup_if_targeted=1.5, speedup_if_untargeted=1.3)]
        # With certainty, exact tailoring wins; with heavy churn, area wins.
        assert model.expected_speedup(exact, survival=1.0) > model.expected_speedup(area, survival=1.0)
        assert model.expected_speedup(area, survival=0.1) > model.expected_speedup(exact, survival=0.1)
        crossover = model.crossover_survival(exact, area)
        assert crossover is not None and 0.0 <= crossover <= 1.0
