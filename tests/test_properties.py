"""Property-based tests (hypothesis) over core invariants.

These cover the invariants that the unit tests exercise only pointwise:
arithmetic wrapping, pattern evaluation vs. a Python oracle, convexity of
enumerated cuts, schedule legality across random machine shapes, memory
round-trips, economics monotonicity, and end-to-end compile/run
equivalence on randomly generated straight-line expressions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.arch import MachineDescription, vliw
from repro.arch.machine import CacheConfig
from repro.backend import compile_module, schedule_block
from repro.core import EnumerationConfig, Pattern, PatternNode, enumerate_block_cuts
from repro.econ import ChipProject, learning_curve_factor, unit_cost, ProcessAssumptions
from repro.exec import CompiledSimulator
from repro.frontend import compile_c
from repro.gen import FAMILIES, generate_kernel, sample_spec
from repro.ir import I8, I16, I32, Opcode, build_dataflow_graph
from repro.opt import optimize
from repro.sim import Cache, CycleSimulator, FunctionalSimulator, Memory


ints32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
small_ints = st.integers(min_value=-1000, max_value=1000)


class TestTypeWrapping:
    @given(value=st.integers(min_value=-(2**40), max_value=2**40))
    def test_i32_wrap_is_idempotent_and_in_range(self, value):
        wrapped = I32.wrap(value)
        assert I32.min_value <= wrapped <= I32.max_value
        assert I32.wrap(wrapped) == wrapped

    @given(value=st.integers(min_value=-(2**20), max_value=2**20))
    def test_wrap_agrees_with_modular_arithmetic(self, value):
        assert I16.wrap(value) == ((value + 2**15) % 2**16) - 2**15
        assert I8.wrap(value) == ((value + 2**7) % 2**8) - 2**7


class TestPatternSemantics:
    @given(a=small_ints, b=small_ints, c=small_ints)
    def test_mac_pattern_matches_python(self, a, b, c):
        mac = Pattern(
            [PatternNode(Opcode.MUL, (("in", 0), ("in", 1))),
             PatternNode(Opcode.ADD, (("node", 0), ("in", 2)))],
            outputs=[1], num_inputs=3,
        )
        assert mac.evaluate([a, b, c]) == I32.wrap(a * b + c)

    @given(a=small_ints, b=small_ints)
    def test_absdiff_pattern_matches_python(self, a, b):
        pattern = Pattern(
            [PatternNode(Opcode.SUB, (("in", 0), ("in", 1))),
             PatternNode(Opcode.CMPLT, (("node", 0), ("const", 0))),
             PatternNode(Opcode.NEG, (("node", 0),)),
             PatternNode(Opcode.SELECT, (("node", 1), ("node", 2), ("node", 0)))],
            outputs=[3], num_inputs=2,
        )
        assert pattern.evaluate([a, b]) == abs(a - b)

    @given(a=small_ints, b=small_ints)
    def test_hardware_latency_at_least_one(self, a, b):
        pattern = Pattern(
            [PatternNode(Opcode.ADD, (("in", 0), ("in", 1)))], [0], 2)
        assert pattern.hardware_latency() >= 1
        assert pattern.hardware_area_kgates() > 0


class TestEnumerationInvariants:
    @settings(max_examples=10, deadline=None)
    @given(max_inputs=st.integers(min_value=2, max_value=5),
           max_size=st.integers(min_value=2, max_value=6))
    def test_cuts_are_convex_and_within_limits(self, max_inputs, max_size):
        from repro.workloads import get_kernel

        kernel = get_kernel("alpha_blend")
        module = compile_c(kernel.source)
        optimize(module, level=2)
        function = module.get_function(kernel.entry)
        block = max(function.blocks, key=lambda b: len(b.instructions))
        config = EnumerationConfig(max_inputs=max_inputs, max_outputs=1,
                                   max_size=max_size)
        for cut, dfg in enumerate_block_cuts(block, config):
            assert dfg.is_convex(cut)
            assert 2 <= len(cut) <= max_size
            assert len(dfg.subgraph_outputs(cut)) == 1


class TestSchedulerInvariants:
    @settings(max_examples=8, deadline=None)
    @given(issue_width=st.sampled_from([1, 2, 4, 8]),
           mem_latency=st.integers(min_value=1, max_value=4),
           mul_latency=st.integers(min_value=1, max_value=5))
    def test_random_machines_schedule_legally(self, issue_width, mem_latency, mul_latency):
        from repro.arch.operations import OperationClass
        from repro.workloads import get_kernel

        machine = vliw(issue_width, name=f"w{issue_width}")
        machine.latency_overrides[OperationClass.MEM] = mem_latency
        machine.latency_overrides[OperationClass.IMUL] = mul_latency

        kernel = get_kernel("rgb_to_gray")
        module = compile_c(kernel.source)
        optimize(module, level=2)
        function = module.get_function(kernel.entry)
        block = max(function.blocks, key=lambda b: len(b.instructions))
        scheduled, _stats = schedule_block(block, machine)

        # Slot limits respected and all operations present exactly once.
        assert all(len(b.ops) <= issue_width for b in scheduled.bundles)
        scheduled_insts = [op.inst for bundle in scheduled.bundles for op in bundle.ops
                           if not op.is_spill and not op.is_copy]
        assert sorted(map(id, scheduled_insts)) == sorted(map(id, block.instructions))

        # Flow dependences separated by latency.
        issue = {}
        for cycle, bundle in enumerate(scheduled.bundles):
            for op in bundle.ops:
                issue[id(op.inst)] = (cycle, op.latency)
        dfg = build_dataflow_graph(block, include_terminator=True)
        for producer, consumer, kind in dfg.graph.edges(data="kind"):
            if kind == "flow":
                pc, lat = issue[id(producer)]
                cc, _ = issue[id(consumer)]
                assert cc >= pc + lat


class TestMemoryProperties:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(small_ints, min_size=1, max_size=32))
    def test_array_round_trip(self, values):
        memory = Memory()
        address = memory.allocate(4 * len(values))
        memory.write_array(address, values, I32)
        assert memory.read_array(address, len(values), I32) == values

    @settings(max_examples=25, deadline=None)
    @given(addresses=st.lists(st.integers(min_value=64, max_value=65536), min_size=1,
                              max_size=60))
    def test_cache_stats_consistent(self, addresses):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=2,
                                  miss_penalty=7))
        for address in addresses:
            cache.access(address)
        assert cache.stats.accesses == len(addresses)
        assert 0 <= cache.stats.misses <= cache.stats.accesses


class TestEconMonotonicity:
    @settings(max_examples=25, deadline=None)
    @given(volume_a=st.integers(min_value=1_000, max_value=10_000_000),
           volume_b=st.integers(min_value=1_000, max_value=10_000_000))
    def test_unit_cost_monotone_in_volume(self, volume_a, volume_b):
        process = ProcessAssumptions()
        lower, higher = sorted((volume_a, volume_b))
        cheap = unit_cost(ChipProject("c", core_kgates=200, nre_usd=1e6, volume=higher), process)
        dear = unit_cost(ChipProject("c", core_kgates=200, nre_usd=1e6, volume=lower), process)
        assert cheap <= dear + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(volume=st.integers(min_value=1, max_value=100_000_000))
    def test_learning_curve_positive(self, volume):
        assert learning_curve_factor(volume, ProcessAssumptions()) > 0


class TestEndToEndExpressions:
    @settings(max_examples=15, deadline=None)
    @given(a=small_ints, b=small_ints, c=st.integers(min_value=1, max_value=200))
    def test_generated_expression_compiles_and_matches(self, a, b, c):
        """Straight-line integer expressions agree between Python, the
        functional simulator and the scheduled cycle simulator."""
        source = (
            "int f(int a, int b, int c) {\n"
            "    int t1 = a * b + c;\n"
            "    int t2 = (a - b) ^ (c << 2);\n"
            "    int t3 = t1 > t2 ? t1 - t2 : t2 - t1;\n"
            "    return t3 + (t1 & 255) - (t2 & 15);\n"
            "}\n"
        )
        t1 = I32.wrap(a * b + c)
        t2 = I32.wrap((a - b) ^ (c << 2))
        t3 = t1 - t2 if t1 > t2 else t2 - t1
        expected = I32.wrap(t3 + (t1 & 255) - (t2 & 15))

        module = compile_c(source)
        optimize(module, level=2)
        assert FunctionalSimulator(module.clone()).run("f", a, b, c) == expected
        compiled, _ = compile_module(module, vliw(4))
        assert CycleSimulator(compiled).run("f", a, b, c).value == expected


class TestGeneratedKernelDifferential:
    """Differential testing over the synthetic-workload generator: for any
    sampled spec, the interpreter, the threaded-code engine and the
    generated Python oracle must agree bit-for-bit — the whole loop/branch/
    memory space the generator spans, not just straight-line expressions."""

    @settings(max_examples=10, deadline=None)
    @given(family=st.sampled_from(FAMILIES),
           spec_seed=st.integers(min_value=0, max_value=2**20),
           input_seed=st.integers(min_value=0, max_value=2**20))
    def test_engines_agree_on_generated_kernels(self, family, spec_seed,
                                                input_seed):
        generated = generate_kernel(sample_spec(family, spec_seed))
        kernel = generated.kernel
        module = compile_c(generated.c_source, module_name=kernel.name)
        optimize(module, level=2)

        args = kernel.arguments(None, seed=input_seed)
        expected = kernel.expected(args)
        values = {}
        for engine_cls in (FunctionalSimulator, CompiledSimulator):
            run_args = tuple(list(a) if isinstance(a, list) else a
                             for a in args)
            values[engine_cls.__name__] = engine_cls(module.clone()).run(
                kernel.entry, *run_args)
        assert values["FunctionalSimulator"] == expected
        assert values["CompiledSimulator"] == expected

    @settings(max_examples=5, deadline=None)
    @given(spec_seed=st.integers(min_value=0, max_value=2**20))
    def test_generated_kernels_survive_opt_levels(self, spec_seed):
        """Optimization must not change a generated kernel's value."""
        generated = generate_kernel(sample_spec("memory_mixed", spec_seed))
        kernel = generated.kernel
        args = kernel.arguments(None, seed=spec_seed + 1)
        expected = kernel.expected(args)
        for level in (0, 2, 3):
            module = compile_c(generated.c_source, module_name=kernel.name)
            optimize(module, level=level)
            run_args = tuple(list(a) if isinstance(a, list) else a
                             for a in args)
            assert FunctionalSimulator(module).run(kernel.entry,
                                                   *run_args) == expected
