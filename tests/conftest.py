"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import pytest

from repro.arch import risc_baseline, vliw2, vliw4
from repro.core import reset_global_library
from repro.frontend import compile_c
from repro.opt import optimize
from repro.workloads import get_kernel


@pytest.fixture(autouse=True)
def _clean_extension_library():
    """Keep the process-wide extension library isolated between tests."""
    reset_global_library()
    yield
    reset_global_library()


@pytest.fixture
def risc_machine():
    return risc_baseline()


@pytest.fixture
def vliw4_machine():
    return vliw4()


@pytest.fixture
def vliw2_machine():
    return vliw2()


@pytest.fixture
def dot_module():
    """The dot-product kernel compiled to optimized IR."""
    kernel = get_kernel("dot_product")
    module = compile_c(kernel.source, module_name=kernel.name)
    optimize(module, level=2)
    return module


@pytest.fixture
def sad_module():
    """The SAD kernel compiled to optimized IR (rich in ISE candidates)."""
    kernel = get_kernel("sad16")
    module = compile_c(kernel.source, module_name=kernel.name)
    optimize(module, level=2)
    return module


def make_simple_loop_source(body_expression: str = "acc = acc + a[i] * b[i];") -> str:
    """A templated counted-loop kernel used by several structural tests."""
    return (
        "int kernel(int *a, int *b, int n) {\n"
        "    int acc = 0;\n"
        "    for (int i = 0; i < n; i++) {\n"
        f"        {body_expression}\n"
        "    }\n"
        "    return acc;\n"
        "}\n"
    )
