"""Shared fixtures for the repro test suite.

Expensive setup that used to be repeated per test file lives here:

* ``kernel_module`` — a session-scoped compile cache: each (kernel,
  opt_level) pair is compiled to optimized IR exactly once per test run,
  and every caller gets a private clone (tests customize/rewrite modules
  in place);
* ``api_session`` — a fresh, isolated :class:`repro.api.Session`,
  closed on teardown;
* ``seeded_population`` — the fixed-seed 25-kernel generated workload
  population shared by the differential harnesses (generation only;
  tests that need registry names use it as a context manager);
* ``copies`` — the per-run argument-copy helper every differential test
  needs (simulators write back into list arguments).
"""

from __future__ import annotations

import pytest

from repro.arch import risc_baseline, vliw2, vliw4
from repro.core import reset_global_library
from repro.frontend import compile_c
from repro.opt import optimize
from repro.workloads import get_kernel

from _shared import (
    APP_SEED, POPULATION_COUNT, POPULATION_SEED, arg_copies,
    build_kernel_module, seeded_application,
)

@pytest.fixture(autouse=True)
def _clean_extension_library():
    """Keep the process-wide extension library isolated between tests."""
    reset_global_library()
    yield
    reset_global_library()


@pytest.fixture(scope="session")
def kernel_module():
    """Fixture form of :func:`build_kernel_module` (shared compile cache)."""
    return build_kernel_module


@pytest.fixture
def medical_evaluator():
    """Factory for the small compiled-engine evaluator the batch-layer
    tests share: the "medical" mix at size 8."""
    from repro.dse import Evaluator
    from repro.workloads import get_mix

    def build(**kwargs):
        return Evaluator(get_mix("medical"), size=8, engine="compiled",
                         **kwargs)

    return build


@pytest.fixture
def api_session():
    """A fresh, isolated service session (own artifact store)."""
    from repro.api import Session

    with Session() as session:
        yield session


@pytest.fixture(scope="session")
def seeded_population():
    """The fixed-seed generated workload population (25 kernels)."""
    from repro.gen import WorkloadPopulation

    return WorkloadPopulation.generate(POPULATION_COUNT, seed=POPULATION_SEED)


@pytest.fixture(scope="session")
def app_spec():
    """Factory form of :func:`seeded_application` (shared spec cache)."""
    return seeded_application


@pytest.fixture
def copies():
    """Fixture form of :func:`arg_copies`."""
    return arg_copies


@pytest.fixture
def risc_machine():
    return risc_baseline()


@pytest.fixture
def vliw4_machine():
    return vliw4()


@pytest.fixture
def vliw2_machine():
    return vliw2()


@pytest.fixture
def dot_module():
    """The dot-product kernel compiled to optimized IR."""
    kernel = get_kernel("dot_product")
    module = compile_c(kernel.source, module_name=kernel.name)
    optimize(module, level=2)
    return module


@pytest.fixture
def sad_module():
    """The SAD kernel compiled to optimized IR (rich in ISE candidates)."""
    kernel = get_kernel("sad16")
    module = compile_c(kernel.source, module_name=kernel.name)
    optimize(module, level=2)
    return module


def make_simple_loop_source(body_expression: str = "acc = acc + a[i] * b[i];") -> str:
    """A templated counted-loop kernel used by several structural tests."""
    return (
        "int kernel(int *a, int *b, int n) {\n"
        "    int acc = 0;\n"
        "    for (int i = 0; i < n; i++) {\n"
        f"        {body_expression}\n"
        "    }\n"
        "    return acc;\n"
        "}\n"
    )
