"""Shared plain helpers for the repro test suite.

Lives under a unique module name (both ``tests/`` and ``benchmarks/``
have a ``conftest.py``, so ``import conftest`` is ambiguous in a full
run); ``tests/conftest.py`` wraps these in fixtures.
"""

from __future__ import annotations

from repro.frontend import compile_c
from repro.opt import optimize
from repro.workloads import get_kernel

#: seed/size of the shared generated population (also used by bench_e12).
POPULATION_SEED = 20260730
POPULATION_COUNT = 25

#: seed of the shared generated applications (also used by bench_e7).
APP_SEED = 11

_KERNEL_MODULE_CACHE = {}
_APPLICATION_CACHE = {}


def seeded_application(topology: str = "chain", *, windows: int = 4,
                       deadline_us: float = 30.0, period_us: float = 30.0):
    """The fixed-seed generated application the app tests share.

    One :class:`~repro.app.ApplicationSpec` per (topology, windows,
    deadline, period) — specs are immutable, so sharing is safe.
    """
    from repro.gen import sample_application

    key = (topology, windows, deadline_us, period_us)
    if key not in _APPLICATION_CACHE:
        _APPLICATION_CACHE[key] = sample_application(
            topology, APP_SEED, windows=windows,
            deadline_us=deadline_us, period_us=period_us)
    return _APPLICATION_CACHE[key]


def build_kernel_module(name: str, opt_level: int = 2):
    """(kernel name, opt_level) → (Kernel, private optimized-module clone).

    Compilation results are cached for the whole test session; callers
    receive a fresh clone each time, so in-place optimization or ISA
    rewriting in one test can never leak into another.
    """
    key = (name, opt_level)
    if key not in _KERNEL_MODULE_CACHE:
        kernel = get_kernel(name)
        module = compile_c(kernel.source, module_name=name)
        optimize(module, level=opt_level)
        _KERNEL_MODULE_CACHE[key] = (kernel, module)
    kernel, module = _KERNEL_MODULE_CACHE[key]
    return kernel, module.clone()


def arg_copies(args):
    """Per-run argument copies (simulators write back into lists)."""
    return tuple(list(a) if isinstance(a, list) else a for a in args)
