"""Direct unit tests for the cache model and the simulated memory.

These two modules underpin every timing and correctness result in the
repo (the cycle simulator charges stall cycles from ``sim/cache.py``;
both functional engines read and write through ``sim/memory.py``), but
until now they were only exercised indirectly.  The tests pin down
hit/miss accounting, LRU replacement, stride behaviour, the guard
region, alignment and typed round-trips.
"""

from __future__ import annotations

import pytest

from repro.arch.machine import CacheConfig, MachineConfigError
from repro.frontend import compile_c
from repro.ir.types import F32, I8, I16, I32, IntType
from repro.sim import Cache, Memory, ProgramImage, make_cache
from repro.sim.memory import MemoryError_


def small_cache(associativity: int = 2) -> Cache:
    # 4 sets x 32-byte lines x `associativity` ways.
    return Cache(CacheConfig(size_bytes=128 * associativity, line_bytes=32,
                             associativity=associativity, hit_latency=1,
                             miss_penalty=10))


class TestCacheAccounting:
    def test_first_touch_misses_then_hits(self):
        cache = small_cache()
        assert cache.access(0x100) == 1 + 10      # cold miss
        assert cache.access(0x100) == 1           # same address hits
        assert cache.access(0x11F) == 1           # same 32-byte line hits
        assert cache.stats.accesses == 3
        assert cache.stats.misses == 1
        assert cache.stats.hits == 2
        assert cache.stats.miss_rate == pytest.approx(1 / 3)

    def test_sequential_stride_one_line_per_miss(self):
        cache = small_cache()
        for address in range(0, 4 * 32, 4):       # 4 lines, word stride
            cache.access(address)
        assert cache.stats.accesses == 32
        assert cache.stats.misses == 4            # one cold miss per line

    def test_line_stride_misses_every_access_when_cold(self):
        cache = small_cache()
        for line in range(4):
            cache.access(line * 32)
        assert cache.stats.misses == 4
        for line in range(4):                     # working set fits: all hit
            cache.access(line * 32)
        assert cache.stats.misses == 4

    def test_lru_eviction_order(self):
        cache = small_cache(associativity=2)
        sets = cache.num_sets
        a, b, c = 0, sets * 32, 2 * sets * 32     # three tags, same set
        cache.access(a)
        cache.access(b)
        cache.access(a)                           # a is now most recent
        cache.access(c)                           # evicts b (LRU), not a
        assert cache.access(a) == 1               # hit
        assert cache.access(b) == 11              # miss: was evicted

    def test_direct_mapped_conflict_thrash(self):
        cache = small_cache(associativity=1)
        sets = cache.num_sets
        a, b = 0, sets * 32                       # same set, different tags
        for _ in range(4):
            cache.access(a)
            cache.access(b)
        assert cache.stats.misses == 8            # every access evicts the other

    def test_associativity_absorbs_the_same_conflict(self):
        cache = small_cache(associativity=2)
        sets = cache.num_sets
        a, b = 0, sets * 32
        for _ in range(4):
            cache.access(a)
            cache.access(b)
        assert cache.stats.misses == 2            # only the two cold misses

    def test_reset_statistics(self):
        cache = small_cache()
        cache.access(0x40)
        cache.reset_statistics()
        assert cache.stats.accesses == 0
        assert cache.stats.misses == 0
        assert cache.stats.miss_rate == 0.0
        assert cache.access(0x40) == 1            # contents survived the reset

    def test_make_cache_none_for_uncached_machines(self):
        assert make_cache(None) is None
        assert isinstance(make_cache(CacheConfig()), Cache)

    def test_config_must_tile(self):
        with pytest.raises(MachineConfigError):
            CacheConfig(size_bytes=100, line_bytes=32, associativity=2)


class TestMemory:
    def test_allocate_is_aligned_and_monotonic(self):
        memory = Memory()
        first = memory.allocate(5, alignment=8)
        second = memory.allocate(3, alignment=8)
        assert first % 8 == 0 and second % 8 == 0
        assert second >= first + 5
        assert memory.bytes_allocated >= 8

    def test_guard_region_rejects_null_ish_accesses(self):
        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.load(0, I32)
        with pytest.raises(MemoryError_):
            memory.store(Memory.GUARD - 4, 1, I32)

    def test_out_of_range_and_negative_allocation(self):
        memory = Memory(size=1 << 10)
        with pytest.raises(MemoryError_):
            memory.load(memory.size - 2, I32)
        with pytest.raises(MemoryError_):
            memory.allocate(-1)
        with pytest.raises(MemoryError_):
            memory.allocate(memory.size)

    def test_signed_round_trips_wrap_per_type(self):
        memory = Memory()
        address = memory.allocate(16)
        memory.store(address, -1, I8)
        assert memory.load(address, I8) == -1
        memory.store(address, 200, I8)            # wraps to -56 as signed char
        assert memory.load(address, I8) == -56
        memory.store(address, 40_000, I16)
        assert memory.load(address, I16) == 40_000 - 65_536
        memory.store(address, -(2**31), I32)
        assert memory.load(address, I32) == -(2**31)

    def test_unsigned_types_do_not_sign_extend(self):
        memory = Memory()
        address = memory.allocate(4)
        u8 = IntType(8, signed=False)
        memory.store(address, 200, u8)
        assert memory.load(address, u8) == 200

    def test_float_round_trip_is_f32_precise(self):
        memory = Memory()
        address = memory.allocate(4)
        memory.store(address, 1.5, F32)
        assert memory.load(address, F32) == 1.5
        memory.store(address, 0.1, F32)           # not representable exactly
        assert memory.load(address, F32) == pytest.approx(0.1, rel=1e-6)

    def test_write_array_strides_by_element_size(self):
        memory = Memory()
        address = memory.allocate(2 * 8)
        values = [1, -2, 300, -400, 5, -6, 7, -8]
        memory.write_array(address, values, I16)
        assert memory.read_array(address, len(values), I16) == values
        # The I16 array occupies exactly 2 bytes per element.
        tail = memory.load(address + 2 * (len(values) - 1), I16)
        assert tail == values[-1]

    def test_little_endian_layout(self):
        memory = Memory()
        address = memory.allocate(4)
        memory.store(address, 0x01020304, I32)
        assert memory.load(address, I8) == 0x04   # low byte first


class TestProgramImage:
    def test_globals_loaded_with_initializers(self):
        module = compile_c("""
int table[4] = {10, 20, 30, 40};
int scale = 7;
int f(int i) { return table[i & 3] * scale; }
""")
        image = ProgramImage(module)
        address = image.address_of("table")
        assert image.memory.read_array(address, 4, I32) == [10, 20, 30, 40]
        assert image.memory.load(image.address_of("scale"), I32) == 7
        assert address >= Memory.GUARD
