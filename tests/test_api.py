"""Tests for the repro.api service façade.

Covers, per the PR-4 acceptance criteria:

* JSON round-trips (object → JSON → object → JSON, plus golden literals)
  for all six request kinds and for responses;
* request validation errors (the service rejects malformed work at the
  boundary);
* Session isolation (separate artifact stores) and the deprecated
  global-pipeline shims;
* bit-identical equivalence between ``Session.submit`` execution and the
  direct ``Toolchain`` / ``Explorer`` / ``run_matrix`` /
  ``WorkloadPopulation`` call paths;
* the job layer (status transitions, error capture, mixed batches);
* Toolchain driver error paths (bad source, unknown kernel, infeasible
  budget);
* the engine selector threaded through ``run_matrix`` and the
  ``to_json``/``to_rows`` export helpers;
* the ``python -m repro`` CLI (flags and request-file modes).
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AppRequest, AppResponse, CompileRequest, CustomizeRequest, ExploreRequest,
    MatrixRequest, PopulationRequest, Provenance, RunRequest, SchemaError,
    Session, default_session, request_from_dict, request_from_json,
    resolve_machine, response_from_json,
)
from repro.api.cli import main as cli_main
from repro.arch import dsp_core, risc_baseline, vliw4
from repro.dse import DesignSpace, Evaluator, Explorer
from repro.frontend.c_frontend import CFrontendError
from repro.gen import WorkloadPopulation
from repro.pipeline import CompilePipeline, global_compile_pipeline
from repro.toolchain import Toolchain, run_matrix
from repro.workloads import get_kernel, get_mix

from _shared import arg_copies as _copies


ALL_REQUESTS = [
    CompileRequest(kernel="sad16", machine="dsp16", opt_level=3),
    RunRequest(kernel="dot_product", machine="vliw8", size=32, seed=7,
               engine="compiled"),
    CustomizeRequest(kernel="viterbi_acs", machine="vliw4",
                     area_budget_kgates=24.0, max_operations=4, size=48),
    ExploreRequest(mix="video", strategy="annealing", objective="performance",
                   size=24, engine="compiled", iterations=12,
                   space={"issue_widths": [1, 2], "register_counts": [32]}),
    MatrixRequest(machines=["vliw4", {"issue_width": 2, "registers": 32}],
                  kernels=["dot_product", "crc32"], size=16),
    PopulationRequest(count=4, seed=3, families=["reduction", "table_lookup"],
                      budget_kgates=16.0, kernels_per_family=2),
    AppRequest(topology="chain", app_seed=11, machine="dsp16",
               engine="interpreter", windows=4, deadline_us=30.0),
]


class TestRequestRoundTrips:
    @pytest.mark.parametrize("request_obj", ALL_REQUESTS,
                             ids=[r.kind for r in ALL_REQUESTS])
    def test_json_round_trip_identity(self, request_obj):
        text = request_obj.to_json()
        rebuilt = request_from_json(text)
        assert rebuilt == request_obj
        assert rebuilt.to_json() == text          # stable fixed point
        data = json.loads(text)
        assert data["kind"] == request_obj.kind
        assert data["schema_version"] == 1

    def test_golden_matrix_request(self):
        golden = json.dumps({
            "kind": "matrix", "schema_version": 1,
            "machines": ["vliw4", "risc_baseline"],
            "kernels": ["dot_product"], "size": 16, "seed": None,
            "opt_level": None, "engine": None, "fidelity": None,
        }, sort_keys=True)
        request = request_from_json(golden)
        assert request == MatrixRequest(machines=["vliw4", "risc_baseline"],
                                        kernels=["dot_product"], size=16)
        assert request.to_json() == golden

    def test_pre_fidelity_matrix_request_still_parses(self):
        """Messages minted before the fidelity field existed stay valid."""
        legacy = json.dumps({
            "kind": "matrix", "schema_version": 1,
            "machines": ["vliw4"], "kernels": None, "size": 16,
            "seed": None, "opt_level": None, "engine": None,
        }, sort_keys=True)
        request = request_from_json(legacy)
        assert request.fidelity is None
        assert request == MatrixRequest(machines=["vliw4"], size=16)

    def test_golden_explore_request_with_fidelity(self):
        golden = json.dumps({
            "kind": "explore", "schema_version": 1, "mix": "video",
            "strategy": "exhaustive", "objective": "perf_per_area",
            "size": 16, "seed": None, "opt_level": None, "engine": None,
            "fidelity": "trace", "rescore": True, "space": None,
            "search_seed": None, "iterations": 40, "max_rounds": 4,
            "workers": None, "application": None,
        }, sort_keys=True)
        request = request_from_json(golden)
        assert request == ExploreRequest(mix="video", size=16,
                                         fidelity="trace", rescore=True)
        assert request.to_json() == golden

    def test_pre_application_explore_request_still_parses(self):
        """Messages minted before the application field existed stay valid."""
        legacy = json.dumps({
            "kind": "explore", "schema_version": 1, "mix": "video",
            "strategy": "exhaustive", "objective": "perf_per_area",
            "size": 16, "seed": None, "opt_level": None, "engine": None,
            "fidelity": None, "rescore": False, "space": None,
            "search_seed": None, "iterations": 40, "max_rounds": 4,
            "workers": None,
        }, sort_keys=True)
        request = request_from_json(legacy)
        assert request.application is None
        assert request == ExploreRequest(mix="video", size=16)

    def test_golden_app_request(self):
        golden = json.dumps({
            "kind": "app", "schema_version": 1, "application": None,
            "topology": "chain", "app_seed": 11, "machine": "dsp16",
            "engine": "interpreter", "fidelity": "cycle", "opt_level": None,
            "windows": 4, "period_us": None, "deadline_us": 30.0,
        }, sort_keys=True)
        request = request_from_json(golden)
        assert request == AppRequest(topology="chain", app_seed=11,
                                     machine="dsp16", engine="interpreter",
                                     windows=4, deadline_us=30.0)
        assert request.to_json() == golden

    def test_golden_app_response_round_trip(self):
        response = AppResponse(
            application="app_chain_11", fingerprint="abc123",
            machine="vliw4", engine="compiled", fidelity="cycle",
            windows=4, correct=True, deadline_miss_rate=0.25,
            p50_latency_us=10.0, p95_latency_us=20.0, p99_latency_us=22.0,
            jitter_us=3.5, energy_per_window_uj=0.125, period_us=30.0,
            deadline_us=30.0, window_latencies_us=[9.0, 10.0, 22.0, 8.0],
            nodes=[{"node": "n0_src", "cycles_total": 400}],
            provenance=Provenance(session="s", engine="compiled"))
        rebuilt = response_from_json(response.to_json())
        assert rebuilt == response
        assert rebuilt.to_json() == response.to_json()
        data = json.loads(response.to_json())
        assert data["kind"] == "app.response"
        assert data["deadline_miss_rate"] == 0.25

    def test_fidelity_validation(self):
        with pytest.raises(ValueError):
            ExploreRequest(fidelity="clairvoyant")
        with pytest.raises(ValueError):
            MatrixRequest(machines=["vliw4"], fidelity="clairvoyant")

    def test_golden_provenance_round_trip_with_fidelity(self):
        provenance = Provenance(session="s", engine="compiled",
                                fidelity="trace+rescore", elapsed_s=0.5)
        data = provenance.to_dict()
        assert data["fidelity"] == "trace+rescore"
        rebuilt = Provenance.from_dict(json.loads(json.dumps(data)))
        assert rebuilt == provenance

    def test_golden_run_request(self):
        golden = json.dumps({
            "kind": "run", "schema_version": 1, "kernel": "crc32",
            "machine": {"issue_width": 2, "registers": 32},
            "size": 64, "seed": 9, "opt_level": 2, "engine": "interpreter",
            "batch": None,
        }, sort_keys=True)
        request = request_from_json(golden)
        assert request == RunRequest(
            kernel="crc32", machine={"issue_width": 2, "registers": 32},
            size=64, seed=9, opt_level=2, engine="interpreter")
        assert request.to_json() == golden

    def test_pre_batch_run_request_still_parses(self):
        """Messages minted before the batch field existed stay valid."""
        legacy = json.dumps({
            "kind": "run", "schema_version": 1, "kernel": "crc32",
            "machine": "vliw4", "size": 64, "seed": 9, "opt_level": 2,
            "engine": "compiled",
        })
        request = request_from_json(legacy)
        assert request.batch is None
        assert request == RunRequest(kernel="crc32", machine="vliw4",
                                     size=64, seed=9, opt_level=2,
                                     engine="compiled")

    def test_unknown_fields_are_ignored(self):
        data = RunRequest(kernel="crc32").to_dict()
        data["a_future_field"] = True
        assert request_from_dict(data) == RunRequest(kernel="crc32")

    def test_unknown_kind_and_bad_version_rejected(self):
        with pytest.raises(SchemaError):
            request_from_dict({"kind": "teleport"})
        with pytest.raises(SchemaError):
            request_from_dict({"kind": "run", "kernel": "crc32",
                               "schema_version": 99})
        with pytest.raises(SchemaError):
            MatrixRequest.from_dict({"kind": "run", "kernel": "crc32"})


class TestRequestValidation:
    def test_compile_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            CompileRequest()
        with pytest.raises(ValueError):
            CompileRequest(kernel="sad16", source="int f() { return 1; }")

    def test_run_rejects_bad_engine_and_missing_kernel(self):
        with pytest.raises(ValueError):
            RunRequest(kernel="crc32", engine="warp")
        with pytest.raises(ValueError):
            RunRequest()

    def test_customize_rejects_infeasible_budget(self):
        with pytest.raises(ValueError, match="[Ii]nfeasible"):
            CustomizeRequest(kernel="sad16", area_budget_kgates=0.0)
        with pytest.raises(ValueError, match="[Ii]nfeasible"):
            CustomizeRequest(kernel="sad16", area_budget_kgates=-5.0)

    def test_explore_rejects_bad_strategy_objective_axis(self):
        with pytest.raises(ValueError):
            ExploreRequest(strategy="telepathic")
        with pytest.raises(ValueError):
            ExploreRequest(objective="vibes")
        with pytest.raises(ValueError):
            ExploreRequest(space={"warp_factors": [9]})

    def test_app_request_needs_exactly_one_application_source(self):
        with pytest.raises(ValueError):
            AppRequest()
        with pytest.raises(ValueError):
            AppRequest(topology="chain",
                       application={"name": "a", "nodes": []})
        with pytest.raises(ValueError):
            AppRequest(topology="ring")
        with pytest.raises(ValueError):
            AppRequest(topology="chain", engine="cycle")
        with pytest.raises(ValueError):
            AppRequest(topology="chain", windows=0)

    def test_explore_rejects_malformed_application(self):
        with pytest.raises(ValueError):
            ExploreRequest(application={"bogus": True})
        with pytest.raises(ValueError):
            ExploreRequest(application="not-a-mapping")

    def test_matrix_needs_serializable_machines(self):
        with pytest.raises(ValueError):
            MatrixRequest(machines=[])
        with pytest.raises(ValueError):
            MatrixRequest(machines=[vliw4()])

    def test_population_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            PopulationRequest(families=["quantum"])
        with pytest.raises(ValueError):
            PopulationRequest(count=0)

    def test_resolve_machine_aliases_and_points(self):
        assert resolve_machine("risc_baseline").name == "risc32"
        assert resolve_machine("vliw4").issue_width == 4
        point = resolve_machine({"issue_width": 2, "registers": 32})
        assert point.issue_width == 2
        with pytest.raises(KeyError):
            resolve_machine("warp9")
        with pytest.raises(TypeError):
            resolve_machine(42)


class TestSessionIsolation:
    def test_sessions_do_not_share_stores(self):
        with Session() as one, Session() as two:
            assert one.store is not two.store
            assert one.pipeline is not two.pipeline
            one.execute(CompileRequest(kernel="dot_product"))
            assert len(one.store) > 0
            assert len(two.store) == 0

    def test_default_session_backs_uninjected_entry_points(self):
        session = default_session()
        assert default_session() is session
        toolchain = Toolchain(vliw4())
        assert toolchain.pipeline is session.pipeline

    def test_global_pipeline_shim_is_deprecated_but_working(self):
        with pytest.deprecated_call():
            pipeline = global_compile_pipeline()
        assert pipeline is default_session().pipeline

    def test_session_rejects_mismatched_store_and_pipeline(self):
        pipeline = CompilePipeline()
        from repro.pipeline import ArtifactStore
        with pytest.raises(ValueError):
            Session(pipeline=pipeline, store=ArtifactStore())
        session = Session(pipeline=pipeline)
        assert session.store is pipeline.store


class TestSubmitEquivalence:
    """Session.submit must be bit-identical to the direct call paths."""

    def test_compile_matches_direct_toolchain(self):
        from repro.backend.asm import render_assembly

        with Session() as session:
            response = session.submit(CompileRequest(
                kernel="sad16", machine="dsp_core", opt_level=2)).result()
        toolchain = Toolchain(dsp_core(), opt_level=2,
                              pipeline=CompilePipeline())
        artifacts = toolchain.build(get_kernel("sad16").source, name="sad16")
        assert response.backend_key == artifacts.backend_key
        assert response.assembly == render_assembly(artifacts.compiled)
        assert response.code_bytes == artifacts.report.code.bytes_effective
        assert response.machine == "dsp16"

    def test_run_matches_direct_toolchain(self):
        kernel = get_kernel("viterbi_acs")
        args = kernel.arguments(24, seed=1234)
        with Session() as session:
            response = session.submit(RunRequest(
                kernel="viterbi_acs", machine="vliw4", size=24,
                opt_level=2)).result()
        toolchain = Toolchain(vliw4(), opt_level=2, pipeline=CompilePipeline())
        artifacts = toolchain.build(kernel.source, name=kernel.name)
        result = toolchain.run(artifacts, kernel.entry, *_copies(args))
        assert response.correct
        assert response.value == result.value
        assert response.cycles == result.cycles
        assert response.energy_uj == result.energy_uj
        assert response.ipc == result.stats.ipc

    def test_run_functional_engines_match_oracle(self):
        with Session() as session:
            interp, compiled = session.run_batch([
                RunRequest(kernel="crc32", size=64, engine="interpreter"),
                RunRequest(kernel="crc32", size=64, engine="compiled"),
            ])
        assert interp.correct and compiled.correct
        assert interp.value == compiled.value
        assert interp.instructions == compiled.instructions

    def test_customize_matches_direct_toolchain(self):
        kernel = get_kernel("viterbi_acs")
        args = kernel.arguments(24, seed=1234)
        # Both paths resolve custom-op semantics through the global
        # extension library (content-named entries, so re-registration by
        # the second customize is an idempotent overwrite).
        toolchain = Toolchain(vliw4(), opt_level=2,
                              pipeline=CompilePipeline())
        module = toolchain.frontend(kernel.source, kernel.name)
        base_artifacts = toolchain.build(module.clone())
        base = toolchain.run(base_artifacts, kernel.entry, *_copies(args))
        custom_toolchain = toolchain.customize(
            module, area_budget_kgates=32.0, max_operations=4,
            profile_entry=kernel.entry, profile_args=_copies(args))
        custom_artifacts = custom_toolchain.build(module)
        custom = custom_toolchain.run(custom_artifacts, kernel.entry,
                                      *_copies(args))

        with Session() as session:
            response = session.submit(CustomizeRequest(
                kernel="viterbi_acs", machine="vliw4",
                area_budget_kgates=32.0, max_operations=4, size=24,
                opt_level=2)).result()
        assert response.correct
        assert response.base_cycles == base.cycles
        assert response.custom_cycles == custom.cycles
        report = custom_toolchain.last_customization.report
        assert response.selected_ops == report.selected_names
        assert response.area_added_kgates == report.area_added_kgates

    def test_explore_matches_direct_explorer(self):
        axes = {"issue_widths": [1, 4], "register_counts": [64],
                "cluster_counts": [1], "mul_unit_counts": [1],
                "mem_unit_counts": [2]}
        with Session() as session:
            response = session.submit(ExploreRequest(
                mix="video", strategy="exhaustive", objective="performance",
                size=24, opt_level=2, seed=1234, engine="cycle",
                space=axes)).result()
        evaluator = Evaluator(get_mix("video"), size=24, opt_level=2,
                              seed=1234, engine="cycle",
                              pipeline=CompilePipeline())
        explorer = Explorer(evaluator, objective="performance")
        result = explorer.exhaustive(DesignSpace(
            **{axis: tuple(choices) for axis, choices in axes.items()}))
        assert response.rows == result.to_rows()
        assert response.points_evaluated == result.points_evaluated
        assert response.best == result.best.summary_row()
        assert response.best["machine"] == result.best.machine.name

    def test_matrix_matches_direct_run_matrix(self):
        with Session() as session:
            response = session.submit(MatrixRequest(
                machines=["vliw4", "risc_baseline"],
                kernels=["dot_product", "ip_checksum"], size=16,
                opt_level=2)).result()
        report = run_matrix([vliw4(), risc_baseline()],
                            kernel_names=["dot_product", "ip_checksum"],
                            size=16, opt_level=2,
                            pipeline=CompilePipeline())
        assert response.all_correct and report.all_correct
        assert response.rows == report.to_rows()
        assert response.machines == report.machines
        assert response.kernels == report.kernels

    def test_population_matches_direct_population(self):
        request = PopulationRequest(count=3, seed=11, families=["reduction"],
                                    budget_kgates=16.0, opt_level=2,
                                    kernels_per_family=3)
        with Session() as session:
            response = session.submit(request).result()
        population = WorkloadPopulation.generate(3, seed=11,
                                                 families=["reduction"])
        with population:
            report = population.report(budget=16.0, engine="compiled",
                                       opt_level=2, kernels_per_family=3,
                                       pipeline=CompilePipeline())
        assert response.valid == 3
        assert response.report == report
        assert response.families == ["reduction"]


class TestJobs:
    def test_mixed_batch_returns_in_request_order(self):
        with Session() as session:
            responses = session.run_batch([
                RunRequest(kernel="dot_product", size=16),
                MatrixRequest(machines=["vliw4"], kernels=["crc32"], size=16),
            ])
        assert responses[0].kind == "run.response"
        assert responses[1].kind == "matrix.response"
        assert all(job.status == "done" for job in session.jobs)

    def test_job_captures_errors(self):
        with Session() as session:
            job = session.submit(RunRequest(kernel="no_such_kernel"))
            with pytest.raises(KeyError):
                job.result()
            assert job.status == "error"
            assert isinstance(job.exception(), KeyError)

    def test_unsupported_request_type_rejected(self):
        with Session() as session:
            with pytest.raises(TypeError):
                session.execute(object())


class TestResponses:
    def test_response_round_trip_with_provenance(self):
        with Session() as session:
            response = session.execute(RunRequest(kernel="dot_product",
                                                  size=16))
        rebuilt = response_from_json(response.to_json())
        assert rebuilt == response
        provenance = response.provenance
        assert isinstance(provenance, Provenance)
        assert provenance.schema_version == 1
        assert provenance.session == session.name
        assert provenance.engine == "cycle"
        assert provenance.elapsed_s > 0
        assert {record["stage"] for record in provenance.stages} >= {
            "frontend", "optimize", "backend"}
        assert all(isinstance(record["hit"], bool)
                   for record in provenance.stages)
        assert "pipeline" in provenance.cache

    def test_compile_cache_hits_show_in_provenance(self):
        with Session() as session:
            request = CompileRequest(kernel="dot_product")
            cold = session.execute(request)
            warm = session.execute(request)
        assert warm.backend_key == cold.backend_key
        assert all(not record["hit"] for record in cold.provenance.stages)
        assert all(record["hit"] for record in warm.provenance.stages)


class TestDriverErrorPaths:
    def test_bad_source_raises_frontend_error(self):
        toolchain = Toolchain(vliw4(), pipeline=CompilePipeline())
        with pytest.raises(CFrontendError):
            toolchain.build("int broken(int x { return x; }")
        with Session() as session:
            job = session.submit(CompileRequest(
                source="int broken(int x { return x; }"))
            with pytest.raises(CFrontendError):
                job.result()

    def test_unknown_kernel_raises_key_error(self):
        with Session() as session:
            with pytest.raises(KeyError):
                session.execute(CompileRequest(kernel="does_not_exist"))

    def test_unknown_machine_preset_raises_key_error(self):
        with Session() as session:
            with pytest.raises(KeyError):
                session.execute(RunRequest(kernel="crc32", machine="warp9"))

    def test_session_validates_engines_up_front(self):
        with pytest.raises(ValueError):
            Session(engine="bogus")
        with pytest.raises(ValueError):
            Session(evaluation_engine="bogus")


class TestMatrixEngineAndExports:
    def test_matrix_compiled_engine_matches_interpreter(self):
        kwargs = dict(kernel_names=["dot_product", "crc32"], size=16,
                      opt_level=2)
        interp = run_matrix([vliw4()], engine="interpreter",
                            pipeline=CompilePipeline(), **kwargs)
        compiled = run_matrix([vliw4()], engine="compiled",
                              pipeline=CompilePipeline(), **kwargs)
        assert interp.all_correct and compiled.all_correct
        assert interp.to_rows() == compiled.to_rows()
        assert compiled.engine == "compiled"

    def test_run_matrix_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            run_matrix([vliw4()], engine="quantum")

    def test_matrix_report_to_json(self):
        report = run_matrix([vliw4()], kernel_names=["dot_product"], size=16,
                            pipeline=CompilePipeline())
        data = json.loads(report.to_json())
        assert data["kind"] == "matrix_report"
        assert data["schema_version"] == 1
        assert data["all_correct"] is True
        assert data["rows"] == json.loads(json.dumps(report.to_rows()))

    def test_exploration_result_to_json(self):
        evaluator = Evaluator(get_mix("video"), size=16, opt_level=2,
                              pipeline=CompilePipeline())
        explorer = Explorer(evaluator, objective="performance")
        result = explorer.exhaustive(DesignSpace(
            issue_widths=(1, 2), register_counts=(32,), cluster_counts=(1,),
            mul_unit_counts=(1,), mem_unit_counts=(1,)))
        data = json.loads(result.to_json())
        assert data["kind"] == "exploration_result"
        assert data["schema_version"] == 1
        assert data["points_evaluated"] == result.points_evaluated
        assert data["best"]["machine"] == result.best.machine.name
        assert data["rows"] == json.loads(json.dumps(result.to_rows()))


class TestAppExecution:
    def test_session_app_request_runs_and_round_trips(self, api_session):
        response = api_session.execute(AppRequest(
            topology="chain", app_seed=11, windows=4,
            deadline_us=30.0, period_us=30.0, engine="compiled"))
        assert response.kind == "app.response"
        assert response.correct
        assert response.windows == 4
        assert response.fingerprint
        assert len(response.window_latencies_us) == 4
        assert response_from_json(response.to_json()) == response

    def test_serialized_spec_equals_generator_recipe(self, api_session,
                                                     app_spec):
        spec = app_spec("chain")
        by_recipe = api_session.execute(AppRequest(
            topology="chain", app_seed=11, windows=4,
            deadline_us=30.0, period_us=30.0))
        by_spec = api_session.execute(AppRequest(application=spec.to_dict()))
        assert by_spec.fingerprint == by_recipe.fingerprint
        assert by_spec.window_latencies_us == by_recipe.window_latencies_us

    def test_explore_over_application_mix(self, api_session, app_spec):
        spec = app_spec("chain")
        response = api_session.execute(ExploreRequest(
            application=spec.to_dict(), objective="deadline_miss_rate",
            engine="compiled",
            space={"issue_widths": [1, 4], "register_counts": [32],
                   "cluster_counts": [1], "mul_unit_counts": [1],
                   "mem_unit_counts": [1], "custom_budgets": [0.0]}))
        assert response.mix == spec.name
        assert response.points_evaluated == 2
        assert response.best is not None
        assert "miss_rate" in response.best


class TestCli:
    def test_cli_matrix_emits_schema_versioned_json(self, capsys):
        code = cli_main(["matrix", "--machines", "vliw4,risc_baseline",
                         "--kernels", "dot_product", "--size", "16"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "matrix.response"
        assert data["schema_version"] == 1
        assert data["all_correct"] is True
        assert data["machines"] == ["vliw4", "risc32"]

    def test_cli_request_file_mode(self, tmp_path, capsys):
        request_path = tmp_path / "request.json"
        request_path.write_text(RunRequest(kernel="dot_product",
                                           size=16).to_json())
        output_path = tmp_path / "response.json"
        code = cli_main(["run", "--kernel", "ignored", "--request",
                         str(request_path), "--output", str(output_path)])
        assert code == 0
        assert capsys.readouterr().out == ""
        data = json.loads(output_path.read_text())
        assert data["kind"] == "run.response"
        assert data["kernel"] == "dot_product"
        assert data["correct"] is True

    def test_cli_app_runs_a_generated_application(self, capsys):
        code = cli_main(["app", "--topology", "chain", "--app-seed", "11",
                         "--windows", "3", "--deadline-us", "30",
                         "--period-us", "30", "--engine", "compiled"])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["kind"] == "app.response"
        assert data["correct"] is True
        assert data["windows"] == 3
        assert len(data["window_latencies_us"]) == 3

    def test_cli_rejects_bad_request(self, capsys):
        code = cli_main(["customize", "--kernel", "sad16",
                         "--budget", "-1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err
