"""Tests for :mod:`repro.app` — multi-kernel dataflow applications.

Covers, per the PR-9 acceptance criteria:

* :class:`ApplicationSpec` serialization (round-trip identity, stable
  fingerprints, unknown-field tolerance) and graph validation (bad
  ports, double-bound inputs, unknown nodes, cycles);
* graph-level **bit-identity** across all three functional engines: the
  same seeded application produces identical per-window node values on
  the interpreter, the threaded-code engine, and (when a C compiler is
  present) the native engine — all checked against the composed Python
  oracle;
* :class:`AppRunner` real-time metrics: per-window latency and energy,
  nonzero jitter under load variation, deadline-miss accounting,
  quantile ordering, and the trace-fidelity analytic path as an upper
  bound on executed latency;
* :class:`AppEvaluator` / :class:`ApplicationMix` and the real-time
  objectives, including the headline result: optimizing a design space
  for ``deadline_miss_rate`` picks a *different* machine than raw
  ``performance``;
* the :class:`~repro.exec.batch.EvaluatorSpec` recipe round-trip that
  service workers use to rebuild application evaluators.
"""

from __future__ import annotations

import json
from dataclasses import asdict, replace

import pytest

from repro.app import (
    AppEdge, AppNode, AppRunner, ApplicationSpec, VALUE_PORT, WindowStream,
    node_ports, run_application,
)
from repro.arch import risc_baseline, vliw4
from repro.dse import (
    AppEvaluation, AppEvaluator, ApplicationMix, DesignSpace, Explorer,
    OBJECTIVES, Evaluation,
)
from repro.exec import native_available
from repro.exec.batch import BatchEvaluator, EvaluatorSpec
from repro.gen import APP_TOPOLOGIES, sample_application

from _shared import APP_SEED, seeded_application

ENGINES = ["interpreter", "compiled"] + (
    ["native"] if native_available() else [])


class TestApplicationSpec:
    @pytest.mark.parametrize("topology", APP_TOPOLOGIES)
    def test_round_trip_identity_and_fingerprint(self, topology):
        spec = seeded_application(topology)
        text = spec.to_json()
        rebuilt = ApplicationSpec.from_json(text)
        assert rebuilt == spec
        assert rebuilt.to_json() == text          # stable fixed point
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_fingerprints_differ_across_topologies_and_seeds(self):
        prints = {seeded_application(t).fingerprint()
                  for t in APP_TOPOLOGIES}
        assert len(prints) == len(APP_TOPOLOGIES)
        other = sample_application("chain", APP_SEED + 1)
        assert other.fingerprint() != seeded_application("chain").fingerprint()

    def test_generation_is_deterministic(self):
        again = sample_application("chain", APP_SEED, windows=4,
                                   deadline_us=30.0, period_us=30.0)
        assert again == seeded_application("chain")

    def test_unknown_fields_are_ignored(self):
        data = seeded_application("chain").to_dict()
        data["a_future_field"] = True
        assert ApplicationSpec.from_dict(data) == seeded_application("chain")

    def test_topological_order_respects_edges(self):
        spec = seeded_application("diamond")
        order = [node.name for node in spec.topological_order()]
        for edge in spec.edges:
            assert order.index(edge.src) < order.index(edge.dst)

    def test_rejects_unknown_edge_nodes(self):
        spec = seeded_application("chain")
        with pytest.raises(ValueError, match="unknown nodes"):
            ApplicationSpec(name="bad", nodes=spec.nodes,
                            edges=spec.edges + (AppEdge(
                                src="ghost", dst=spec.nodes[0].name,
                                dst_port="x"),))

    def test_rejects_non_output_source_port(self):
        spec = seeded_application("chain")
        src, dst = spec.edges[0].src, spec.edges[0].dst
        some_input = next(name for name, role
                          in node_ports(spec.node(src).spec).items()
                          if role == "input")
        with pytest.raises(ValueError, match="not an output array"):
            ApplicationSpec(name="bad", nodes=spec.nodes, edges=(
                AppEdge(src=src, dst=dst, src_port=some_input,
                        dst_port=spec.edges[0].dst_port),))

    def test_rejects_non_input_destination_port(self):
        spec = seeded_application("chain")
        edge = spec.edges[0]
        with pytest.raises(ValueError, match="not an input array"):
            ApplicationSpec(name="bad", nodes=spec.nodes,
                            edges=(replace(edge, dst_port="nonesuch"),))

    def test_rejects_double_bound_input_port(self):
        spec = seeded_application("chain")
        edge = spec.edges[0]
        scalar = AppEdge(src=edge.src, dst=edge.dst, src_port=VALUE_PORT,
                         dst_port=edge.dst_port)
        with pytest.raises(ValueError, match="bound twice"):
            ApplicationSpec(name="bad", nodes=spec.nodes,
                            edges=(edge, scalar))

    def test_rejects_cycles(self):
        spec = seeded_application("chain")
        first = spec.topological_order()[0].name
        last = spec.topological_order()[-1].name
        back_port = next(name for name, role
                         in node_ports(spec.node(first).spec).items()
                         if role == "input")
        with pytest.raises(ValueError, match="cycle"):
            ApplicationSpec(name="bad", nodes=spec.nodes,
                            edges=spec.edges + (AppEdge(
                                src=last, dst=first, dst_port=back_port),))

    def test_rejects_duplicate_node_names(self):
        spec = seeded_application("chain")
        with pytest.raises(ValueError, match="unique"):
            ApplicationSpec(name="bad", nodes=spec.nodes + (spec.nodes[0],))

    def test_stream_validation(self):
        with pytest.raises(ValueError):
            WindowStream(windows=0)
        with pytest.raises(ValueError):
            WindowStream(window_size=4)
        with pytest.raises(ValueError):
            WindowStream(deadline_us=0.0)
        with pytest.raises(ValueError):
            WindowStream(load_jitter=1.0)

    def test_window_load_varies_within_bounds(self):
        stream = WindowStream(windows=16, window_size=32, load_jitter=0.5)
        loads = [stream.window_load(w) for w in range(stream.windows)]
        assert all(16 <= load <= 32 for load in loads)
        assert len(set(loads)) > 1
        assert loads == [stream.window_load(w) for w in range(stream.windows)]


class TestEngineIdentity:
    """The graph-level differential harness (PR-9 acceptance criterion)."""

    @pytest.mark.parametrize("topology", APP_TOPOLOGIES)
    def test_engines_agree_window_for_window(self, topology, api_session):
        spec = seeded_application(topology)
        reports = {}
        for engine in ENGINES:
            runner = AppRunner(spec, vliw4(), engine=engine,
                               pipeline=api_session.pipeline)
            reports[engine] = runner.run()
        for engine, report in reports.items():
            # every node of every window matched the composed oracle
            assert report.correct, f"{engine} disagreed with the oracle"
            assert report.window_values == reports["interpreter"].window_values
        # the timing reduction is engine-independent too: identical
        # profiles must price to identical cycles.
        latencies = {tuple(r.window_latencies_us) for r in reports.values()}
        assert len(latencies) == 1

    def test_run_application_convenience(self):
        report = run_application(seeded_application("chain"), vliw4())
        assert report.correct
        assert report.windows == 4


class TestRunnerMetrics:
    def test_per_window_latency_energy_and_jitter(self, api_session):
        spec = seeded_application("chain")
        assert spec.stream.load_jitter > 0.0
        report = AppRunner(spec, vliw4(), engine="compiled",
                           pipeline=api_session.pipeline).run()
        assert len(report.window_latencies_us) == spec.stream.windows
        assert all(lat > 0.0 for lat in report.window_latencies_us)
        assert all(e > 0.0 for e in report.window_energies_uj)
        # load variation must show up as real jitter
        assert report.jitter_us > 0.0
        assert report.p50_latency_us <= report.p95_latency_us + 1e-9
        assert report.p95_latency_us <= report.p99_latency_us + 1e-9
        assert report.total_cycles > 0
        assert {s.node for s in report.node_stats} == {
            n.name for n in spec.nodes}
        assert all(s.runs == spec.stream.windows for s in report.node_stats)

    def test_deadline_accounting(self, api_session):
        spec = seeded_application("chain")
        tight = replace(spec, stream=replace(spec.stream, deadline_us=0.001))
        report = AppRunner(tight, vliw4(),
                           pipeline=api_session.pipeline).run()
        assert report.deadline_miss_rate == 1.0
        assert report.deadline_misses == spec.stream.windows
        loose = replace(spec, stream=replace(spec.stream,
                                             deadline_us=1e6,
                                             period_us=1e6))
        report = AppRunner(loose, vliw4(),
                           pipeline=api_session.pipeline).run()
        assert report.deadline_miss_rate == 0.0

    def test_trace_fidelity_bounds_executed_latency(self, api_session):
        spec = seeded_application("chain")
        cycle = AppRunner(spec, vliw4(), fidelity="cycle",
                          pipeline=api_session.pipeline).run()
        trace = AppRunner(spec, vliw4(), fidelity="trace",
                          pipeline=api_session.pipeline).run()
        assert trace.correct
        assert trace.fidelity == "trace"
        # the analytic screen prices the worst-case window once, so it is
        # constant across windows and bounds every executed window.
        assert trace.jitter_us == 0.0
        assert trace.window_latencies_us[0] >= max(cycle.window_latencies_us)

    def test_machines_differ(self, api_session):
        spec = seeded_application("chain")
        wide = AppRunner(spec, vliw4(),
                         pipeline=api_session.pipeline).run()
        narrow = AppRunner(spec, risc_baseline(),
                           pipeline=api_session.pipeline).run()
        assert narrow.total_cycles > wide.total_cycles


class TestAppEvaluator:
    def test_mix_round_trip_and_validation(self):
        mix = ApplicationMix("pair", [(seeded_application("chain"), 2.0),
                                      (seeded_application("fan_in"), 1.0)])
        rebuilt = ApplicationMix.from_json(mix.to_json())
        assert rebuilt.to_json() == mix.to_json()
        assert rebuilt.weights == mix.weights
        with pytest.raises(ValueError):
            ApplicationMix("empty", [])
        with pytest.raises(ValueError):
            ApplicationMix("dup", [(seeded_application("chain"), 1.0),
                                   (seeded_application("chain"), 1.0)])
        with pytest.raises(ValueError):
            ApplicationMix("neg", [(seeded_application("chain"), -1.0)])

    def test_evaluate_produces_real_time_metrics(self, api_session):
        mix = ApplicationMix.single(seeded_application("chain"))
        evaluator = AppEvaluator(mix, engine="compiled",
                                 pipeline=api_session.pipeline)
        evaluation = evaluator.evaluate(vliw4())
        assert isinstance(evaluation, AppEvaluation)
        assert evaluation.feasible
        assert 0.0 <= evaluation.deadline_miss_rate <= 1.0
        assert evaluation.p99_latency_us > 0.0
        assert evaluation.energy_per_window_uj > 0.0
        row = evaluation.summary_row()
        for key in ("miss_rate", "p50_us", "p99_us", "jitter_us",
                    "energy_per_window_uj"):
            assert key in row

    def test_weights_shift_the_aggregate(self, api_session):
        chain = seeded_application("chain")
        fan_in = seeded_application("fan_in")
        heavy_chain = AppEvaluator(
            ApplicationMix("m", [(chain, 10.0), (fan_in, 1.0)]),
            engine="compiled", pipeline=api_session.pipeline).evaluate(vliw4())
        heavy_fan = AppEvaluator(
            ApplicationMix("m", [(chain, 1.0), (fan_in, 10.0)]),
            engine="compiled", pipeline=api_session.pipeline).evaluate(vliw4())
        chain_p99 = next(r["p99_us"] for r in heavy_chain.app_rows
                         if r["application"] == chain.name)
        fan_p99 = next(r["p99_us"] for r in heavy_chain.app_rows
                       if r["application"] == fan_in.name)
        if chain_p99 != fan_p99:
            assert heavy_chain.p99_latency_us != heavy_fan.p99_latency_us

    def test_evaluator_spec_round_trip_rebuilds_app_evaluator(
            self, api_session):
        mix = ApplicationMix.single(seeded_application("chain"))
        evaluator = AppEvaluator(mix, engine="compiled",
                                 pipeline=api_session.pipeline)
        spec = EvaluatorSpec.from_evaluator(evaluator)
        assert spec.application == mix.to_json()
        # the JSON hop the daemon->worker frames take
        raw = json.loads(json.dumps(asdict(spec)))
        raw["weights"] = tuple((str(k), w) for k, w in raw["weights"])
        rebuilt = EvaluatorSpec(**raw).build(pipeline=api_session.pipeline)
        assert isinstance(rebuilt, AppEvaluator)
        assert rebuilt.application_json == mix.to_json()

    def test_same_name_different_graph_gets_different_cache_key(
            self, api_session):
        point = next(iter(DesignSpace.small().points()))
        mixes = [ApplicationMix("same-name", [(spec, 1.0)]) for spec in (
            seeded_application("chain"),
            sample_application("chain", APP_SEED + 1, windows=4))]
        keys = {BatchEvaluator(AppEvaluator(
            mix, pipeline=api_session.pipeline)).point_key(point)
            for mix in mixes}
        assert len(keys) == 2


class TestRealTimeObjectives:
    def test_objectives_reject_kernel_evaluations(self):
        evaluation = Evaluation(machine=vliw4())
        for objective in ("deadline_miss_rate", "p99_latency",
                          "energy_per_window"):
            with pytest.raises(ValueError, match="ApplicationMix"):
                OBJECTIVES[objective](evaluation)

    def test_deadline_objective_picks_a_different_machine(self, api_session):
        """The headline acceptance criterion: real-time objectives change
        the design-space answer."""
        mix = ApplicationMix.single(seeded_application("chain"))
        space = DesignSpace(issue_widths=(1, 2, 4),
                            register_counts=(32, 64),
                            cluster_counts=(1,), mul_unit_counts=(1,),
                            mem_unit_counts=(1, 2), custom_budgets=(0.0,))
        winners = {}
        for objective in ("performance", "deadline_miss_rate"):
            evaluator = AppEvaluator(mix, engine="compiled",
                                     pipeline=api_session.pipeline)
            explorer = Explorer(evaluator, objective=objective,
                                batch=api_session.batch_evaluator(evaluator))
            winners[objective] = explorer.exhaustive(space).best.machine.name
        assert winners["performance"] != winners["deadline_miss_rate"]

    def test_p99_and_energy_objectives_score_every_point(self, api_session):
        mix = ApplicationMix.single(seeded_application("chain"))
        evaluator = AppEvaluator(mix, engine="compiled",
                                 pipeline=api_session.pipeline)
        space = DesignSpace(issue_widths=(1, 4), register_counts=(32,),
                            cluster_counts=(1,), mul_unit_counts=(1,),
                            mem_unit_counts=(1,), custom_budgets=(0.0,))
        for objective in ("p99_latency", "energy_per_window"):
            explorer = Explorer(evaluator, objective=objective,
                                batch=api_session.batch_evaluator(evaluator))
            result = explorer.exhaustive(space)
            assert result.points_evaluated == 2
            assert result.best is not None
