"""The observability substrate: modes, metrics, tracer, journal, CLI.

The end-to-end tests at the bottom drive a real daemon (thread-mode for
speed, process-mode for the cross-process stitching guarantee) and
assert the acceptance contract of repro.obs: one request → one
trace_id, spanning client → daemon → worker → pipeline stage, with the
metric families visible in valid Prometheus text.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.api.cli import main as cli_main
from repro.api.requests import MatrixRequest, RunRequest
from repro.api.session import Session
from repro.exec.cache import CODE_STAGE, CodeCache
from repro.obs import (
    DEFAULT_BUCKETS, Histogram, JournalEncodeError, MetricsRegistry,
    ObsJournal, StageStats,
    Tracer, global_tracer, journal_spans, latest_metrics, merge_snapshot,
    metrics_enabled, obs_mode, obs_override, quantile_from_buckets,
    read_journal, render_prometheus, render_trace_summary, render_waterfall,
    reset_global_tracer, set_obs_mode, snapshot_quantile, snapshot_value,
    span_depth, tracing_enabled, validate_obs_mode,
)
from repro.pipeline.store import ArtifactStore
from repro.service import ServiceClient, ServiceDaemon


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    """Each test starts from the default mode with an empty tracer."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_JOURNAL", raising=False)
    set_obs_mode(None)
    reset_global_tracer()
    yield
    set_obs_mode(None)
    reset_global_tracer()


# ----------------------------------------------------------------------
# Mode resolution.
# ----------------------------------------------------------------------

class TestObsMode:

    def test_default_is_metrics(self):
        assert obs_mode() == "metrics"
        assert metrics_enabled() and not tracing_enabled()

    def test_validate_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_obs_mode("verbose")

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "trace")
        assert obs_mode() == "trace" and tracing_enabled()
        monkeypatch.setenv("REPRO_OBS", "off")
        assert obs_mode() == "off" and not metrics_enabled()

    def test_set_obs_mode_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "off")
        set_obs_mode("trace")
        assert obs_mode() == "trace"
        set_obs_mode(None)
        assert obs_mode() == "off"

    def test_override_nests_and_beats_global(self):
        set_obs_mode("off")
        with obs_override("trace"):
            assert obs_mode() == "trace"
            with obs_override("metrics"):
                assert obs_mode() == "metrics"
            assert obs_mode() == "trace"
        assert obs_mode() == "off"

    def test_override_none_is_transparent(self):
        with obs_override(None):
            assert obs_mode() == "metrics"

    def test_override_is_thread_local(self):
        seen = {}

        def other():
            seen["mode"] = obs_mode()

        with obs_override("trace"):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen["mode"] == "metrics"


# ----------------------------------------------------------------------
# The metrics registry.
# ----------------------------------------------------------------------

class TestMetricsRegistry:

    def test_counter_get_or_create_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", {"kind": "run"})
        b = registry.counter("requests", {"kind": "run"})
        c = registry.counter("requests", {"kind": "matrix"})
        assert a is b and a is not c
        a.inc()
        a.inc(2)
        assert a.value == 3.0 and c.value == 0.0

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(4)
        gauge.inc(-1)
        assert gauge.value == 3.0

    def test_histogram_bucket_correctness(self):
        h = Histogram("lat", (), buckets=(0.1, 1.0))
        for value in (0.05, 0.1, 0.5, 5.0):
            h.observe(value)
        # 0.05 and 0.1 land in le=0.1 (upper bounds are inclusive),
        # 0.5 in le=1.0, 5.0 in the +Inf overflow bucket.
        assert h.counts() == [2, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(5.65)

    def test_quantile_interpolation(self):
        # counts [1, 1, 1] over bounds [0.1, 1.0]: the median rank 1.5
        # falls halfway through the second bucket → 0.1 + 0.5*(1.0-0.1).
        assert quantile_from_buckets([0.1, 1.0], [1, 1, 1], 0.5) == \
            pytest.approx(0.55)
        # the overflow bucket clamps to the top finite bound.
        assert quantile_from_buckets([0.1, 1.0], [1, 1, 1], 1.0) == 1.0
        assert quantile_from_buckets([0.1, 1.0], [0, 0, 0], 0.99) == 0.0
        with pytest.raises(ValueError):
            quantile_from_buckets([0.1], [1, 0], 1.5)

    def test_snapshot_and_lookup_helpers(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"stage": "a"}).inc(3)
        registry.counter("hits", {"stage": "b"}).inc(4)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == 1
        assert snapshot_value(snapshot, "hits") == 7.0
        assert snapshot_value(snapshot, "hits", stage="a") == 3.0
        assert snapshot_quantile(snapshot, "lat", 0.5) == pytest.approx(0.5)
        assert json.loads(json.dumps(snapshot)) == snapshot  # wire-safe

    def test_merge_snapshot_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("jobs").inc(2)
        a.gauge("depth").set(5)
        a.histogram("lat", buckets=(1.0,)).observe(0.5)
        b.counter("jobs").inc(3)
        b.gauge("depth").set(1)
        b.histogram("lat", buckets=(1.0,)).observe(2.0)
        merged = merge_snapshot(a.snapshot(), b.snapshot())
        assert snapshot_value(merged, "jobs") == 5.0  # counters add
        assert snapshot_value(merged, "depth") == 1.0  # gauges last-wins
        series = [s for s in merged["series"] if s["name"] == "lat"]
        assert series[0]["counts"] == [1, 1] and series[0]["count"] == 2

    def test_reset_zeroes_in_place(self):
        registry = MetricsRegistry()
        counter = registry.counter("store_hits", {"stage": "x"})
        other = registry.counter("jobs")
        counter.inc(9)
        other.inc(2)
        registry.reset(prefix="store_")
        assert counter.value == 0.0  # the same object, zeroed
        assert other.value == 2.0   # untouched by the prefix filter

    def test_registry_thread_safety(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        histogram = registry.histogram("h", buckets=DEFAULT_BUCKETS)

        def work():
            for _ in range(1000):
                counter.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0
        assert histogram.count == 8000
        assert sum(histogram.counts()) == 8000


class TestPrometheusRendering:

    def test_counter_gauge_and_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("hits", {"stage": "backend"},
                         help="store hits").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert '# HELP repro_hits store hits' in text
        assert '# TYPE repro_hits counter' in text
        assert 'repro_hits{stage="backend"} 3' in text
        assert 'repro_depth 2' in text
        # buckets are cumulative and end with +Inf == _count.
        assert 'repro_lat_bucket{le="0.1"} 0' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="+Inf"} 1' in text
        assert 'repro_lat_count 1' in text
        assert text.endswith("\n")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("errs", {"msg": 'a"b\\c\nd'}).inc()
        text = render_prometheus(registry.snapshot())
        assert r'msg="a\"b\\c\nd"' in text


# ----------------------------------------------------------------------
# The StageStats view and the single-counted store counters.
# ----------------------------------------------------------------------

class TestStageStatsView:

    def test_view_and_registry_are_one_number(self):
        registry = MetricsRegistry()
        stats = StageStats(registry, "backend")
        stats.hits += 2
        stats.seconds_saved += 0.5
        snapshot = registry.snapshot()
        assert snapshot_value(snapshot, "store_hits", stage="backend") == 2.0
        assert snapshot_value(snapshot, "store_seconds_saved",
                              stage="backend") == 0.5
        assert isinstance(stats.hits, int)
        assert stats.as_dict()["hits"] == 2

    def test_store_stats_backed_by_registry(self):
        store = ArtifactStore(capacity=4)
        store.put("stage", "k1", "v1", seconds=0.1)
        assert store.get("stage", "k1").payload == "v1"
        assert store.get("stage", "nope") is None
        snapshot = store.metrics()
        assert snapshot_value(snapshot, "store_hits", stage="stage") == 1.0
        assert snapshot_value(snapshot, "store_misses", stage="stage") == 1.0

    def test_store_clear_resets_views_in_place(self):
        store = ArtifactStore(capacity=4)
        stats = store.stats("stage")
        store.put("stage", "k", "v")
        store.get("stage", "k")
        assert stats.hits == 1
        store.clear()
        assert stats.hits == 0  # the held view observes the reset
        store.get("stage", "k")
        assert stats.misses == 1

    def test_code_cache_eviction_counted_once(self, dot_module, sad_module):
        """The drift fix: one eviction ticks one counter, and the cache
        view and the store's mirror stage are the same number."""
        store = ArtifactStore(capacity=8)
        cache = CodeCache(capacity=1, store=store)
        cache.get_or_translate(dot_module)
        cache.get_or_translate(sad_module)  # evicts the first entry
        assert cache.stats.evictions == 1
        mirrored = store.stats(CODE_STAGE)
        assert mirrored.evictions == 1
        assert snapshot_value(store.metrics(), "store_evictions",
                              stage=CODE_STAGE) == 1.0


# ----------------------------------------------------------------------
# The tracer.
# ----------------------------------------------------------------------

class TestTracer:

    def test_off_mode_records_nothing(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            assert span.trace_id == ""
            span.note(extra=1)  # the null span swallows notes
        assert tracer.trace_ids() == []

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with obs_override("trace"):
            with tracer.span("root") as root:
                with tracer.span("child") as child:
                    with tracer.span("grandchild"):
                        pass
                assert child.parent_id == root.span_id
            trace_id = root.trace_id
        spans = tracer.spans_for(trace_id)
        assert len(spans) == 3
        assert {s["trace_id"] for s in spans} == {trace_id}
        assert span_depth(spans) == 3

    def test_error_status_recorded(self):
        tracer = Tracer()
        with obs_override("trace"):
            with pytest.raises(RuntimeError):
                with tracer.span("boom") as span:
                    raise RuntimeError("no")
        (recorded,) = tracer.spans_for(span.trace_id)
        assert recorded["status"] == "error"
        assert "RuntimeError" in recorded["attrs"]["error"]

    def test_adopt_grafts_under_remote_parent(self):
        tracer = Tracer()
        with obs_override("trace"):
            with tracer.adopt("t" * 32, "p" * 16):
                with tracer.span("local") as span:
                    pass
        assert span.trace_id == "t" * 32
        assert span.parent_id == "p" * 16

    def test_take_drains_and_ingest_dedups(self):
        tracer = Tracer()
        with obs_override("trace"):
            with tracer.span("work") as span:
                pass
        trace_id = span.trace_id
        shipped = tracer.take(trace_id)
        assert len(shipped) == 1 and tracer.spans_for(trace_id) == []
        other = Tracer()
        assert other.ingest(shipped) == 1
        assert other.ingest(shipped) == 0  # same span_id: deduplicated
        assert len(other.spans_for(trace_id)) == 1

    def test_trace_buffer_is_bounded(self):
        tracer = Tracer(max_traces=2, max_spans_per_trace=3)
        with obs_override("trace"):
            for _ in range(4):
                with tracer.span("root"):
                    for _ in range(5):
                        with tracer.span("child"):
                            pass
        assert len(tracer.trace_ids()) == 2
        for trace_id in tracer.trace_ids():
            assert len(tracer.spans_for(trace_id)) <= 3


# ----------------------------------------------------------------------
# The journal.
# ----------------------------------------------------------------------

class TestJournal:

    def test_manifest_round_trip_and_filters(self, tmp_path):
        journal = ObsJournal(str(tmp_path / "obs.jsonl"))
        journal.manifest(kind="run", trace_id="t1", source="test",
                         request={"kind": "run"}, metrics={"series": []},
                         spans=[{"trace_id": "t1", "span_id": "s1",
                                 "parent_id": None, "name": "root",
                                 "start_ts": 1.0, "seconds": 0.5}])
        journal.spans("t1", [{"trace_id": "t1", "span_id": "s2",
                              "parent_id": "s1", "name": "kid",
                              "start_ts": 1.1, "seconds": 0.1}],
                      source="client")
        journal.manifest(kind="run", trace_id="t2", source="test")
        assert len(read_journal(journal.path)) == 3
        events = read_journal(journal.path, trace_id="t1")
        assert len(events) == 2
        spans = journal_spans(events)
        assert {s["span_id"] for s in spans} == {"s1", "s2"}
        assert span_depth(spans) == 2

    def test_torn_lines_skipped(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        path.write_text('{"event": "manifest", "trace_id": "t"}\n'
                        '{"torn...\n' '[1, 2]\n')
        events = read_journal(str(path))
        assert len(events) == 1

    def test_latest_metrics_takes_newest_snapshot(self, tmp_path):
        journal = ObsJournal(str(tmp_path / "obs.jsonl"))
        journal.write({"event": "manifest", "ts": 1.0,
                       "metrics": {"series": [{"type": "counter",
                                               "name": "n", "labels": {},
                                               "value": 1}]}})
        journal.write({"event": "manifest", "ts": 2.0,
                       "metrics": {"series": [{"type": "counter",
                                               "name": "n", "labels": {},
                                               "value": 5}]}})
        metrics = latest_metrics(read_journal(journal.path))
        assert snapshot_value(metrics, "n") == 5.0  # newest, not the sum

    def test_read_missing_journal_is_empty(self, tmp_path):
        assert read_journal(str(tmp_path / "absent.jsonl")) == []

    def test_write_rejects_non_round_trippable_events(self, tmp_path):
        journal = ObsJournal(str(tmp_path / "obs.jsonl"))
        with pytest.raises(JournalEncodeError, match="extra.bad"):
            journal.write({"event": "manifest",
                           "extra": {"bad": {1, 2, 3}}})
        with pytest.raises(JournalEncodeError, match="nan"):
            journal.write({"event": "manifest", "nan": float("nan")})
        with pytest.raises(JournalEncodeError):
            journal.write({"event": "manifest", "obj": object()})
        # Nothing half-written: the journal stays empty after refusals.
        assert read_journal(journal.path) == []
        # Tuples and to_dict objects are fine — they canonicalize.
        journal.write({"event": "manifest", "pair": (1, 2)})
        events = read_journal(journal.path)
        assert events[0]["pair"] == [1, 2]

    def test_manifest_flags_degraded_sections(self, tmp_path):
        journal = ObsJournal(str(tmp_path / "obs.jsonl"))
        journal.manifest(kind="run", trace_id="t1", source="test",
                         request={"kind": "run"},
                         provenance={"poison": object()})
        event = read_journal(journal.path)[0]
        # The poisoned section was dropped and named; the rest survived.
        assert "provenance" not in event
        assert event["request"] == {"kind": "run"}
        assert any("provenance" in entry for entry in event["degraded"])

    def test_journal_spans_keeps_idless_spans(self):
        events = [{"event": "spans", "spans": [
            {"span_id": "a", "name": "one"},
            {"name": "no-id-1"},
            {"span_id": "a", "name": "one-dup"},
            {"name": "no-id-2"},
        ]}]
        spans = journal_spans(events)
        names = [span["name"] for span in spans]
        # Duplicate ids collapse; id-less spans are all kept.
        assert names == ["one", "no-id-1", "no-id-2"]

    def test_latest_metrics_skips_corrupt_ts_and_breaks_ties(self):
        series = lambda value: {"series": [{  # noqa: E731
            "type": "counter", "name": "n", "labels": {}, "value": value}]}
        events = [
            {"event": "manifest", "ts": "not-a-time", "metrics": series(1)},
            {"event": "manifest", "ts": float("nan"), "metrics": series(2)},
            {"event": "manifest", "ts": 5.0, "metrics": series(3)},
            {"event": "manifest", "ts": 5.0, "metrics": series(4)},
            {"event": "manifest", "ts": 1.0, "metrics": series(5)},
        ]
        metrics = latest_metrics(events)
        # Unparseable timestamps skipped; the 5.0 tie goes to the later
        # event in journal order, and the older 1.0 never wins.
        assert snapshot_value(metrics, "n") == 4.0

    def test_renderers_cover_manifest_and_spans(self):
        spans = [
            {"trace_id": "t", "span_id": "a", "parent_id": None,
             "name": "session.run", "start_ts": 0.0, "seconds": 1.0,
             "status": "ok"},
            {"trace_id": "t", "span_id": "b", "parent_id": "a",
             "name": "stage.backend", "start_ts": 0.25, "seconds": 0.5,
             "status": "error"},
        ]
        events = [{"event": "manifest", "kind": "run", "source": "test",
                   "request": {"kind": "run"},
                   "provenance": {"engine": "cycle", "fidelity": "cycle",
                                  "stages": [{"hit": True}]}}]
        waterfall = render_waterfall(spans)
        assert "session.run" in waterfall and "!error" in waterfall
        summary = render_trace_summary(events, spans)
        assert "kind      : run" in summary
        assert "depth 2" in summary
        assert render_waterfall([]) == "(no spans)"


# ----------------------------------------------------------------------
# Session-level observability.
# ----------------------------------------------------------------------

class TestSessionObs:

    def test_metrics_mode_counts_requests(self):
        with Session(name="obs-m") as session:
            session.execute(RunRequest(kernel="dot_product",
                                       machine="vliw4", size=16))
            snapshot = session.metrics()
        assert snapshot_value(snapshot, "session_requests", kind="run") == 1.0
        assert snapshot_value(snapshot, "engine_run_seconds") == \
            pytest.approx(snapshot_value(snapshot, "request_seconds"))

    def test_off_mode_skips_request_metrics_keeps_store_counters(self):
        with Session(name="obs-off", obs="off") as session:
            session.execute(RunRequest(kernel="dot_product",
                                       machine="vliw4", size=16))
            snapshot = session.metrics()
        assert snapshot_value(snapshot, "session_requests") == 0.0
        assert snapshot_value(snapshot, "store_misses") > 0.0
        assert global_tracer().trace_ids() == []

    def test_trace_mode_stamps_provenance_and_journals(self, tmp_path):
        journal_path = str(tmp_path / "session.jsonl")
        with Session(name="obs-t", obs="trace",
                     journal=journal_path) as session:
            response = session.execute(RunRequest(kernel="dot_product",
                                                  machine="vliw4", size=16))
        trace_id = response.provenance.trace_id
        assert len(trace_id) == 32
        events = read_journal(journal_path, trace_id=trace_id)
        assert len(events) == 1
        manifest = events[0]
        assert manifest["kind"] == "run"
        assert manifest["request"]["kernel"] == "dot_product"
        assert manifest["metrics"]["series"]
        spans = journal_spans(events)
        names = {s["name"] for s in spans}
        assert "session.run" in names and "stage.backend" in names
        assert span_depth(spans) >= 3

    def test_stats_shim_warns_and_matches_store(self):
        with Session(name="obs-shim") as session:
            session.execute(RunRequest(kernel="dot_product",
                                       machine="vliw4", size=16))
            with pytest.warns(DeprecationWarning):
                stats = session.stats()
            assert stats == session.store.stats_dict()

    def test_journal_env_default(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv("REPRO_OBS_JOURNAL", path)
        with Session(name="obs-env", obs="trace") as session:
            session.execute(RunRequest(kernel="dot_product",
                                       machine="vliw4", size=16))
        assert read_journal(path)


# ----------------------------------------------------------------------
# Service-fleet observability (thread-mode daemon: full protocol,
# in-process, coverage-visible).
# ----------------------------------------------------------------------

@pytest.fixture()
def traced_daemon(tmp_path):
    set_obs_mode("trace")
    daemon = ServiceDaemon(str(tmp_path / "svc"), workers=2,
                           worker_mode="thread", name="obs-daemon",
                           task_timeout=120.0)
    with daemon:
        with ServiceClient(daemon.endpoint) as client:
            yield daemon, client


class TestServiceObs:

    def test_single_stitched_trace_thread_mode(self, traced_daemon):
        daemon, client = traced_daemon
        response = client.execute(
            MatrixRequest(machines=["vliw4", "risc32"],
                          kernels=["crc32", "dot_product"], size=16),
            timeout=120)
        trace_id = response.provenance.trace_id
        assert len(trace_id) == 32
        reply = client.trace(trace_id)
        spans = reply["spans"]
        assert {s["trace_id"] for s in spans} == {trace_id}
        names = {s["name"] for s in spans}
        for required in ("client.execute", "daemon.job", "worker.task",
                         "stage.cell"):
            assert required in names, names
        assert span_depth(spans) >= 4
        # the daemon journaled the job, and the client's late spans.
        events = read_journal(daemon.journal.path, trace_id=trace_id)
        kinds = {event["event"] for event in events}
        assert kinds == {"manifest", "spans"}

    def test_daemon_metrics_cover_queue_and_cache(self, traced_daemon):
        daemon, client = traced_daemon
        client.execute(RunRequest(kernel="dot_product", machine="vliw4",
                                  size=16), timeout=120)
        snapshot = client.stats()["metrics"]
        assert snapshot_value(snapshot, "jobs_claimed") >= 1.0
        assert snapshot_value(snapshot, "jobs_finished", state="done") >= 1.0
        assert snapshot_quantile(snapshot, "queue_wait_seconds", 0.99) >= 0.0
        names = {series["name"] for series in snapshot["series"]}
        assert "queue_depth" in names
        assert "store_hits" in names          # cache family
        assert "engine_run_seconds" in names  # engine family (worker-merged)
        text = render_prometheus(snapshot)
        assert "repro_queue_wait_seconds_bucket" in text

    def test_second_request_reuses_nothing_across_traces(self, traced_daemon):
        daemon, client = traced_daemon
        request = MatrixRequest(machines=["vliw4"], kernels=["crc32"],
                                size=16)
        first = client.execute(request, timeout=120)
        second = client.execute(request, timeout=120)
        assert first.provenance.trace_id != second.provenance.trace_id
        spans = client.trace(second.provenance.trace_id)["spans"]
        assert {s["trace_id"] for s in spans} == \
            {second.provenance.trace_id}
        # the warm matrix still shows its per-cell lookups.
        assert any(s["name"] == "stage.cell" and s["attrs"].get("hit")
                   for s in spans)

    def test_obs_spans_op_validates(self, traced_daemon):
        daemon, client = traced_daemon
        from repro.service import ServiceError

        with pytest.raises(ServiceError):
            client._call({"op": "obs.spans", "spans": "not-a-list"})
        reply = client._call({"op": "obs.spans", "spans": [
            {"trace_id": "t" * 32, "span_id": "s" * 16, "name": "x",
             "start_ts": 0.0, "seconds": 0.0}], "source": "test"})
        assert reply["ingested"] == 1

    def test_single_stitched_trace_process_mode(self, tmp_path):
        """Cross-process stitching: spans cross two real process hops."""
        set_obs_mode("trace")
        daemon = ServiceDaemon(str(tmp_path / "svc"), workers=2,
                               worker_mode="process", name="obs-proc",
                               task_timeout=120.0)
        with daemon:
            with ServiceClient(daemon.endpoint) as client:
                response = client.execute(
                    MatrixRequest(machines=["vliw4", "risc32"],
                                  kernels=["crc32", "dot_product"],
                                  size=16),
                    timeout=120)
                trace_id = response.provenance.trace_id
                spans = client.trace(trace_id)["spans"]
                snapshot = client.stats()["metrics"]
        assert {s["trace_id"] for s in spans} == {trace_id}
        names = {s["name"] for s in spans}
        for required in ("client.execute", "daemon.job", "worker.task",
                         "stage.cell"):
            assert required in names, names
        assert span_depth(spans) >= 4
        # worker registry snapshots crossed the socket and merged.
        assert snapshot_value(snapshot, "store_puts") > 0.0


# ----------------------------------------------------------------------
# The CLI: --obs/--journal, stats, inspect.
# ----------------------------------------------------------------------

class TestObsCli:

    def _run_traced(self, tmp_path, capsys):
        journal = str(tmp_path / "cli.jsonl")
        code = cli_main(["run", "--kernel", "dot_product",
                         "--machine", "vliw4", "--size", "16",
                         "--obs", "trace", "--journal", journal])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        return journal, response["provenance"]["trace_id"]

    def test_run_with_obs_trace_then_inspect(self, tmp_path, capsys):
        journal, trace_id = self._run_traced(tmp_path, capsys)
        assert cli_main(["inspect", trace_id, "--journal", journal]) == 0
        out = capsys.readouterr().out
        assert "session.run" in out and "trace " + trace_id in out

    def test_inspect_json_and_missing_trace(self, tmp_path, capsys):
        journal, trace_id = self._run_traced(tmp_path, capsys)
        assert cli_main(["inspect", trace_id, "--journal", journal,
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["trace_id"] == trace_id and data["spans"]
        assert cli_main(["inspect", "f" * 32, "--journal", journal]) == 1

    def test_stats_from_journal(self, tmp_path, capsys):
        journal, _ = self._run_traced(tmp_path, capsys)
        assert cli_main(["stats", "--journal", journal]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot_value(snapshot, "session_requests", kind="run") == 1.0

    def test_stats_prometheus_format(self, tmp_path, capsys):
        journal, _ = self._run_traced(tmp_path, capsys)
        assert cli_main(["stats", "--journal", journal,
                         "--format", "prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_store_hits counter" in text
        assert "# TYPE repro_request_seconds histogram" in text

    def test_stats_without_sources_renders_fresh_registry(self, capsys):
        assert cli_main(["stats"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["schema_version"] == 1


class TestModelObs:
    def test_model_layer_emits_spans(self):
        """capture_trace and RetimingModel.price show up in a trace —
        the analytic model is part of the instrumented pipeline."""
        from repro.arch.presets import get_preset
        from repro.model import RetimingModel
        from repro.workloads import get_kernel

        kernel = get_kernel("dot_product")
        machine = get_preset("vliw4")
        with obs_override("trace"), Session(name="obs-model") as session:
            pipeline = session.pipeline
            module, _ = pipeline.front(kernel.source, kernel.name,
                                       opt_level=2)
            compiled, _report = pipeline.backend(module, machine)
            tracer = global_tracer()
            with tracer.span("test.model") as root:
                trace, _record = pipeline.trace(
                    module, kernel.entry, kernel.arguments(16, seed=7))
                estimate = RetimingModel().price(compiled, machine, trace)
                trace_id = root.trace_id
            spans = tracer.take(trace_id)
        names = {span["name"] for span in spans}
        assert "model.capture_trace" in names
        assert "model.price" in names
        priced = next(s for s in spans if s["name"] == "model.price")
        assert priced["attrs"]["cycles"] == estimate.cycles
        assert priced["attrs"]["machine"] == "vliw4"
