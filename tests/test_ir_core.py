"""Unit tests for the IR substrate: types, values, instructions, blocks."""

from __future__ import annotations

import pytest

from repro.ir import (
    ArrayType, BasicBlock, Constant, FloatType, Function, I1, I8, I16, I32,
    Instruction, IntType, IRBuilder, Module, Opcode, PointerType, U32,
    UndefValue, VirtualRegister, VOID, array_of, pointer_to,
)
from repro.ir import instructions as insts


class TestTypes:
    def test_integer_sizes(self):
        assert I8.size == 1
        assert I16.size == 2
        assert I32.size == 4
        assert I32.alignment == 4

    def test_integer_ranges(self):
        assert I8.min_value == -128
        assert I8.max_value == 127
        assert U32.min_value == 0
        assert U32.max_value == 2**32 - 1

    def test_integer_wrap_signed(self):
        assert I32.wrap(2**31) == -(2**31)
        assert I32.wrap(-1) == -1
        assert I8.wrap(255) == -1
        assert I8.wrap(128) == -128

    def test_integer_wrap_unsigned(self):
        assert U32.wrap(-1) == 2**32 - 1
        assert U32.wrap(2**32) == 0

    def test_invalid_integer_width_rejected(self):
        with pytest.raises(ValueError):
            IntType(12)

    def test_float_type(self):
        f = FloatType(32)
        assert f.size == 4
        assert f.is_float()
        with pytest.raises(ValueError):
            FloatType(16)

    def test_pointer_and_array(self):
        p = pointer_to(I32)
        assert p.size == 4
        assert p.is_pointer()
        a = array_of(I16, 10)
        assert a.size == 20
        assert a.alignment == 2
        with pytest.raises(ValueError):
            array_of(I32, -1)

    def test_void(self):
        assert VOID.is_void()
        assert not VOID.is_scalar()

    def test_type_predicates(self):
        assert I32.is_integer() and I32.is_scalar()
        assert not I32.is_pointer()
        assert pointer_to(I32).is_scalar()

    def test_str_representations(self):
        assert str(I32) == "i32"
        assert str(U32) == "u32"
        assert str(pointer_to(I8)) == "i8*"
        assert str(array_of(I32, 4)) == "[4 x i32]"


class TestValues:
    def test_constant_wraps_to_type(self):
        c = Constant(2**31, I32)
        assert c.value == -(2**31)

    def test_constant_default_types(self):
        assert Constant(5).type == I32
        assert Constant(1.5).type.is_float()

    def test_constant_equality_and_hash(self):
        assert Constant(3, I32) == Constant(3, I32)
        assert Constant(3, I32) != Constant(3, I8)
        assert len({Constant(3, I32), Constant(3, I32)}) == 1

    def test_float_constant_rounds_to_binary32(self):
        c = Constant(0.1)
        # 0.1 is not representable in binary32; the stored value differs.
        assert c.value != 0.1 or abs(c.value - 0.1) < 1e-7

    def test_virtual_registers_unique(self):
        a = VirtualRegister(I32, "x")
        b = VirtualRegister(I32, "x")
        assert a.id != b.id
        assert a != b
        assert a == a

    def test_undef(self):
        u = UndefValue(I32)
        assert "undef" in str(u)


class TestInstructions:
    def test_binop_constructor(self):
        dest = VirtualRegister(I32)
        inst = insts.binop(Opcode.ADD, dest, Constant(1), Constant(2))
        assert inst.dest is dest
        assert len(inst.operands) == 2
        assert inst.is_pure()
        assert not inst.has_side_effects()

    def test_store_has_side_effects(self):
        inst = insts.store(Constant(1), Constant(64))
        assert inst.has_side_effects()
        assert not inst.is_pure()
        assert inst.dest is None

    def test_load_is_not_pure(self):
        inst = insts.load(VirtualRegister(I32), Constant(64))
        assert not inst.is_pure()
        assert inst.is_memory()

    def test_terminators(self):
        block_a = BasicBlock("a")
        block_b = BasicBlock("b")
        jump = insts.jump(block_a)
        branch = insts.branch(Constant(1, I1), block_a, block_b)
        assert jump.is_terminator()
        assert branch.is_terminator()
        assert branch.targets == [block_a, block_b]

    def test_uses_and_defs(self):
        a = VirtualRegister(I32, "a")
        b = VirtualRegister(I32, "b")
        d = VirtualRegister(I32, "d")
        inst = insts.binop(Opcode.MUL, d, a, b)
        assert set(r.id for r in inst.uses()) == {a.id, b.id}
        assert inst.defs() == [d]

    def test_replace_operand(self):
        a = VirtualRegister(I32, "a")
        b = VirtualRegister(I32, "b")
        inst = insts.binop(Opcode.ADD, VirtualRegister(I32), a, a)
        assert inst.replace_operand(a, b) == 2
        assert all(op is b for op in inst.operands)

    def test_fusable_classification(self):
        assert insts.binop(Opcode.ADD, VirtualRegister(I32), Constant(1), Constant(2)).is_fusable()
        assert not insts.load(VirtualRegister(I32), Constant(64)).is_fusable()
        assert not insts.store(Constant(1), Constant(64)).is_fusable()

    def test_custom_instruction(self):
        inst = insts.custom(VirtualRegister(I32), "sad_step", [Constant(1), Constant(2)])
        assert inst.opcode is Opcode.CUSTOM
        assert inst.custom_op == "sad_step"
        assert "sad_step" in str(inst)


class TestBlocksAndFunctions:
    def test_block_append_and_terminator(self):
        block = BasicBlock("entry")
        block.append(insts.move(VirtualRegister(I32), Constant(1)))
        assert block.terminator is None
        block.append(insts.ret(Constant(0)))
        assert block.is_terminated()
        assert len(block) == 2

    def test_block_successors_predecessors(self):
        function = Function("f", I32, [I32], ["x"])
        entry = function.new_block("entry")
        exit_block = function.new_block("exit")
        entry.append(insts.jump(exit_block))
        exit_block.append(insts.ret(Constant(0)))
        assert entry.successors() == [exit_block]
        assert exit_block.predecessors() == [entry]

    def test_function_unique_block_names(self):
        function = Function("f")
        a = function.new_block("bb")
        b = function.new_block("bb")
        assert a.name != b.name
        assert function.get_block(a.name) is a

    def test_function_entry_requires_blocks(self):
        function = Function("empty")
        with pytest.raises(ValueError):
            _ = function.entry

    def test_defined_registers_includes_arguments(self):
        function = Function("f", I32, [I32, I32], ["a", "b"])
        block = function.new_block("entry")
        dest = VirtualRegister(I32)
        block.append(insts.binop(Opcode.ADD, dest, *function.arguments))
        block.append(insts.ret(dest))
        regs = function.defined_registers()
        assert function.arguments[0] in regs
        assert dest in regs

    def test_module_functions_and_globals(self):
        module = Module("m")
        function = Function("f")
        module.add_function(function)
        assert module.has_function("f")
        assert "f" in module
        with pytest.raises(ValueError):
            module.add_function(Function("f"))
        gvar = module.add_global("table", array_of(I32, 4), [1, 2, 3, 4])
        assert module.get_global("table") is gvar
        with pytest.raises(KeyError):
            module.get_global("missing")

    def test_call_targets(self):
        builder = IRBuilder()
        function = builder.create_function("caller", I32, [I32], ["x"])
        builder.call("helper", [function.arguments[0]], I32)
        builder.ret(Constant(0))
        assert function.call_targets() == ["helper"]
