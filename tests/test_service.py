"""The service layer: protocol, disk store, durable queue, daemon.

Most end-to-end tests run the daemon with thread-mode workers speaking
the full socket protocol in-process (fast, deterministic, visible to
coverage); process-mode isolation and worker-kill fault injection get
their own (slower) tests at the bottom.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import warnings

import pytest

from repro.api.requests import (
    MatrixRequest, Provenance, RunRequest, request_from_dict,
)
from repro.api.session import Session
from repro.service import (
    CELL_STAGE, DiskArtifactStore, DurableQueue, JobFailed, JobRecord,
    QueueError, ServiceClient, ServiceDaemon, ServiceError, WorkerRuntime,
    cell_key, merge_matrix, shard_matrix,
)
from repro.service import protocol
from repro.service.client import reset_service_pipeline
from repro.service.diskstore import QUARANTINE_DIR
from repro.service.tasks import shard_population

MACHINES = ["vliw4", "risc32"]
KERNELS = ["crc32", "dot_product"]


def _strip_provenance(response) -> dict:
    data = response.to_dict()
    data.pop("provenance")
    return data


# ----------------------------------------------------------------------
# Framed protocol.
# ----------------------------------------------------------------------

class TestProtocol:

    def test_parse_endpoint_forms(self):
        assert protocol.parse_endpoint("unix:/tmp/x.sock") == \
            ("unix", "/tmp/x.sock")
        assert protocol.parse_endpoint("/tmp/x.sock") == \
            ("unix", "/tmp/x.sock")
        assert protocol.parse_endpoint("tcp:127.0.0.1:901") == \
            ("tcp", "127.0.0.1", 901)
        assert protocol.parse_endpoint("tcp::901") == ("tcp", "127.0.0.1", 901)
        with pytest.raises(ValueError):
            protocol.parse_endpoint("tcp:nohost:noport")
        with pytest.raises(ValueError):
            protocol.parse_endpoint("unix:")

    def test_frame_round_trip(self):
        a, b = socket.socketpair()
        try:
            message = {"op": "task", "payload": {"deep": [1, 2, {"x": "y"}]}}
            protocol.send_frame(a, message)
            assert protocol.recv_frame(b) == message
            a.close()
            assert protocol.recv_frame(b) is None  # clean EOF
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = socket.socketpair()
        try:
            protocol.send_frame(a, {"op": "x"})
            # Second frame: header promises more bytes than ever arrive.
            a.sendall(b"\x00\x00\x00\xff{half")
            a.close()
            assert protocol.recv_frame(b) == {"op": "x"}
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"\xff\xff\xff\xff")
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_frame_rejected(self):
        a, b = socket.socketpair()
        try:
            body = json.dumps([1, 2, 3]).encode()
            a.sendall(len(body).to_bytes(4, "big") + body)
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()


# ----------------------------------------------------------------------
# Cross-process disk store.
# ----------------------------------------------------------------------

class TestDiskStore:

    def test_round_trip_across_instances(self, tmp_path):
        writer = DiskArtifactStore(str(tmp_path / "store"))
        writer.put("backend", "k1", {"code": [1, 2, 3]}, seconds=0.5)
        reader = DiskArtifactStore(str(tmp_path / "store"))
        artifact = reader.get("backend", "k1")
        assert artifact is not None
        assert artifact.payload == {"code": [1, 2, 3]}
        assert artifact.seconds == 0.5
        assert artifact.source == "disk"

    def test_force_persist_shares_unmarked_stages(self, tmp_path):
        # Parent ArtifactStore only persists stages that opt in; the
        # service store shares everything.
        store = DiskArtifactStore(str(tmp_path / "s"))
        store.put("frontend", "k", "payload")  # persist not requested
        fresh = DiskArtifactStore(str(tmp_path / "s"))
        assert fresh.get("frontend", "k").payload == "payload"

    def test_corruption_detected_and_quarantined(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path / "s"))
        store.put("backend", "bad", [1, 2, 3])
        path = store._disk_path("backend", "bad")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:  # flip bytes in the pickle body
            handle.write(blob[:-3] + b"zzz")
        fresh = DiskArtifactStore(str(tmp_path / "s"))
        assert fresh.get("backend", "bad") is None
        assert fresh.stats("backend").corrupt == 1
        assert not os.path.exists(path)
        quarantined = os.listdir(tmp_path / "s" / QUARANTINE_DIR)
        assert quarantined == ["backend__bad.art"]
        # A recompute can re-populate the slot afterwards.
        fresh.put("backend", "bad", [1, 2, 3])
        assert fresh.get("backend", "bad").payload == [1, 2, 3]

    def test_truncation_detected(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path / "s"))
        store.put("encode", "t", list(range(100)))
        path = store._disk_path("encode", "t")
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(blob[:len(blob) // 2])
        fresh = DiskArtifactStore(str(tmp_path / "s"))
        assert fresh.get("encode", "t") is None
        assert fresh.stats("encode").corrupt == 1

    def test_size_budget_evicts_lru(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path / "s"),
                                  size_budget_bytes=2_000)
        for index in range(10):
            store.put("backend", f"k{index}", b"x" * 400)
            time.sleep(0.01)  # distinct mtimes for LRU ordering
        assert store.disk_bytes() <= 2_000
        assert store.disk_len() < 10
        evicted = sum(s.disk_evictions for s in store._stats.values())
        assert evicted >= 1
        # Newest entries survive; oldest were evicted.
        fresh = DiskArtifactStore(str(tmp_path / "s"))
        assert fresh.get("backend", "k9") is not None
        assert fresh.get("backend", "k0") is None

    def test_stats_dict_carries_new_counters(self, tmp_path):
        store = DiskArtifactStore(str(tmp_path / "s"))
        store.put("backend", "k", 1)
        stats = store.stats_dict()["backend"]
        assert "corrupt" in stats and "disk_evictions" in stats


# ----------------------------------------------------------------------
# Durable queue.
# ----------------------------------------------------------------------

class TestDurableQueue:

    def test_submit_claim_finish_result(self, tmp_path):
        queue = DurableQueue(str(tmp_path))
        record = queue.submit({"kind": "run", "kernel": "crc32"})
        assert record.state == "queued"
        claimed = queue.claim(timeout=1.0, worker="t")
        assert claimed.id == record.id
        assert claimed.state == "running" and claimed.attempts == 1
        queue.finish(record.id, {"kind": "run.response", "correct": True})
        assert queue.get(record.id).state == "done"
        assert queue.result(record.id)["correct"] is True

    def test_priority_then_fifo(self, tmp_path):
        queue = DurableQueue(str(tmp_path))
        low = queue.submit({"kind": "a"}, priority=0)
        high = queue.submit({"kind": "b"}, priority=5)
        low2 = queue.submit({"kind": "c"}, priority=0)
        order = [queue.claim(timeout=1.0).id for _ in range(3)]
        assert order == [high.id, low.id, low2.id]

    def test_claim_times_out_empty(self, tmp_path):
        queue = DurableQueue(str(tmp_path))
        assert queue.claim(timeout=0.05) is None

    def test_cancel_only_queued(self, tmp_path):
        queue = DurableQueue(str(tmp_path))
        record = queue.submit({"kind": "a"})
        assert queue.cancel(record.id) is True
        assert queue.get(record.id).state == "cancelled"
        running = queue.submit({"kind": "b"})
        queue.claim(timeout=1.0)
        assert queue.cancel(running.id) is False

    def test_requeue_gives_up_after_max_attempts(self, tmp_path):
        queue = DurableQueue(str(tmp_path))
        record = queue.submit({"kind": "a"}, max_attempts=2)
        for attempt in range(2):
            claimed = queue.claim(timeout=1.0)
            assert claimed.id == record.id
            outcome = queue.requeue(record.id, f"death {attempt}")
        assert outcome.state == "failed"
        assert "gave up after 2 attempts" in outcome.error

    def test_restart_recovers_running_and_keeps_done(self, tmp_path):
        queue = DurableQueue(str(tmp_path))
        done = queue.submit({"kind": "a"})
        queue.claim(timeout=1.0)
        queue.finish(done.id, {"kind": "a.response", "value": 7})
        crashed = queue.submit({"kind": "b"})
        queue.claim(timeout=1.0)  # daemon "dies" with this job running
        still_queued = queue.submit({"kind": "c"})

        reborn = DurableQueue(str(tmp_path))
        assert reborn.recovered == [crashed.id]
        revived = reborn.get(crashed.id)
        assert revived.state == "queued" and revived.recovered
        assert revived.attempts == 1 and revived.worker == ""
        assert reborn.get(done.id).state == "done"
        assert reborn.result(done.id)["value"] == 7
        assert reborn.get(still_queued.id).state == "queued"
        # Both pending jobs are claimable, in submission order.
        assert {reborn.claim(timeout=1.0).id for _ in range(2)} == \
            {crashed.id, still_queued.id}

    def test_job_record_golden_round_trip(self, tmp_path):
        record = JobRecord(id="job-000009", request={"kind": "matrix"},
                           priority=3, state="running", seq=9, attempts=1,
                           submitted_at=123.0, started_at=124.0,
                           worker="daemon")
        data = record.to_dict()
        assert data["kind"] == "job" and data["schema_version"] == 1
        assert JobRecord.from_dict(data) == record
        # The journal and the status op emit the same shape.
        queue = DurableQueue(str(tmp_path))
        submitted = queue.submit({"kind": "run"})
        journal = json.load(open(queue._job_path(submitted.id)))
        assert JobRecord.from_dict(journal) == submitted

    def test_job_record_rejects_bad_schema(self):
        good = JobRecord(id="j", request={}).to_dict()
        for corruption in ({"kind": "nope"}, {"schema_version": 99},
                           {"state": "zombie"}):
            with pytest.raises(QueueError):
                JobRecord.from_dict({**good, **corruption})


# ----------------------------------------------------------------------
# Shard/merge rules and the worker runtime.
# ----------------------------------------------------------------------

class TestTasksAndWorker:

    def test_shard_matrix_one_task_per_machine(self):
        request = MatrixRequest(machines=MACHINES, kernels=KERNELS).to_dict()
        tasks = shard_matrix(request)
        assert [t["request"]["machines"] for t in tasks] == \
            [["vliw4"], ["risc32"]]
        assert all(t["task"] == "matrix" for t in tasks)

    def test_merge_matrix_reproduces_single_process_fields(self):
        shards = [
            {"machines": ["m1"], "kernels": ["a", "b"], "engine": "interpreter",
             "fidelity": "cycle", "rows": [{"kernel": "a"}, {"kernel": "b"}],
             "failures": [], "correct": 2},
            {"machines": ["m2"], "kernels": ["a", "b"], "engine": "interpreter",
             "fidelity": "cycle", "rows": [{"kernel": "a"}, {"kernel": "b"}],
             "failures": [{"machine": "m2", "kernel": "b", "error": "x"}],
             "correct": 1},
        ]
        merged = merge_matrix({}, shards)
        assert merged["machines"] == ["m1", "m2"]
        assert merged["pass_rate"] == 3 / 4
        assert merged["all_correct"] is False
        assert len(merged["rows"]) == 4

    def test_shard_population_covers_population(self):
        tasks = shard_population({"count": 10}, 3)
        indices = {(t["index"], t["shards"]) for t in tasks}
        assert indices == {(0, 3), (1, 3), (2, 3)}
        covered = sorted(i for t in tasks
                         for i in range(t["index"], 10, t["shards"]))
        assert covered == list(range(10))

    def test_cell_key_distinguishes_recipe(self):
        base = cell_key("vliw4", "crc32", None, 1234, 2, "interpreter",
                        "cycle")
        assert base == cell_key("vliw4", "crc32", None, 1234, 2,
                                "interpreter", "cycle")
        assert base != cell_key("vliw4", "crc32", 64, 1234, 2,
                                "interpreter", "cycle")
        assert base != cell_key("risc32", "crc32", None, 1234, 2,
                                "interpreter", "cycle")

    def test_worker_matrix_memoizes_cells(self, tmp_path):
        runtime = WorkerRuntime(DiskArtifactStore(str(tmp_path / "s")),
                                worker_id="t1")
        task = {"task": "matrix",
                "request": MatrixRequest(machines=["vliw4"],
                                         kernels=KERNELS).to_dict()}
        cold = runtime.execute(task)
        assert cold["correct"] == len(KERNELS)
        misses = runtime.store.stats(CELL_STAGE).misses
        warm = runtime.execute(task)
        assert warm["rows"] == cold["rows"]
        assert runtime.store.stats(CELL_STAGE).misses == misses
        assert runtime.store.stats(CELL_STAGE).hits >= len(KERNELS)

    def test_worker_evaluate_restores_spec_weights(self, tmp_path):
        # Weights travel as JSON lists; the worker must restore the
        # tuple shape or its store keys diverge from the daemon's.
        from repro.dse.space import DesignSpace
        from repro.exec.batch import BatchEvaluator

        store = DiskArtifactStore(str(tmp_path / "s"))
        runtime = WorkerRuntime(store, worker_id="t2")
        session = Session(name="keycheck", store=store)
        evaluator = session.evaluator("medical", size=8)
        batch = BatchEvaluator(evaluator, store=store)
        points = list(DesignSpace(
            issue_widths=(2,), register_counts=(32, 64),
            cluster_counts=(1,), mul_unit_counts=(1,),
            mem_unit_counts=(1,)).points())
        spec = json.loads(json.dumps({
            "mix_name": batch.spec.mix_name,
            "weights": [list(p) for p in batch.spec.weights],
            "size": batch.spec.size, "opt_level": batch.spec.opt_level,
            "seed": batch.spec.seed, "engine": batch.spec.engine,
            "fidelity": batch.spec.fidelity,
        }))
        result = runtime.execute({
            "task": "evaluate", "spec": spec,
            "points": [json.loads(json.dumps(p.__dict__)) for p in points]})
        assert result["keys"] == [batch.point_key(p) for p in points]
        for key in result["keys"]:
            assert store.get("evaluation", key) is not None

    def test_worker_unknown_task_rejected(self, tmp_path):
        runtime = WorkerRuntime(DiskArtifactStore(str(tmp_path / "s")))
        with pytest.raises(ValueError):
            runtime.execute({"task": "frobnicate"})


# ----------------------------------------------------------------------
# Daemon end-to-end (thread-mode workers, full socket protocol).
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def thread_daemon(tmp_path_factory):
    root = tmp_path_factory.mktemp("svc-daemon")
    daemon = ServiceDaemon(str(root), workers=2, worker_mode="thread",
                           name="test-daemon", task_timeout=120.0)
    with daemon:
        yield daemon


@pytest.fixture()
def client(thread_daemon):
    with ServiceClient(thread_daemon.endpoint) as session_client:
        yield session_client


class TestDaemon:

    def test_ping_and_describe(self, client, thread_daemon):
        assert client.ping() is True
        info = client.describe()
        assert info["store_dir"] == thread_daemon.store_dir
        assert info["worker_mode"] == "thread"

    def test_matrix_bit_identical_to_session(self, client):
        request = MatrixRequest(machines=MACHINES, kernels=KERNELS)
        remote = client.execute(request, timeout=120)
        with Session(name="oracle") as session:
            local = session.execute(request)
        assert _strip_provenance(remote) == _strip_provenance(local)
        assert remote.provenance.worker  # served by the pool

    def test_run_request_carries_worker_provenance(self, client):
        response = client.execute(
            RunRequest(kernel="popcount_buffer", machine="vliw4",
                       engine="cycle"), timeout=120)
        assert response.correct
        assert response.provenance.worker.startswith("w")

    def test_submit_status_result_lifecycle(self, client):
        handle = client.submit(MatrixRequest(machines=["vliw4"],
                                             kernels=["crc32"]))
        response = handle.result(timeout=120)
        assert response.all_correct
        record = client.status(handle.id)
        assert record["state"] == "done" and record["attempts"] == 1

    def test_failing_job_raises_job_failed(self, client):
        handle = client.submit(RunRequest(kernel="no_such_kernel",
                                          machine="vliw4", engine="cycle"))
        with pytest.raises(JobFailed) as excinfo:
            handle.result(timeout=120)
        assert excinfo.value.record["state"] == "failed"
        assert "no_such_kernel" in str(excinfo.value)

    def test_submit_rejects_malformed_request(self, client):
        with pytest.raises(ServiceError):
            client.submit({"kind": "not-a-kind"})

    def test_cancel_before_run(self, thread_daemon):
        # Submit directly to the queue so no job runner grabs it first.
        record = thread_daemon.queue.submit(
            MatrixRequest(machines=["vliw4"]).to_dict(), priority=-100)
        with ServiceClient(thread_daemon.endpoint) as cancel_client:
            # Either we cancel it in time, or a runner already claimed
            # it; both are legal daemon behaviours — assert consistency.
            cancelled = cancel_client.cancel(record.id)
            state = cancel_client.status(record.id)["state"]
        if cancelled:
            assert state == "cancelled"
        else:
            assert state in ("running", "done")

    def test_concurrent_clients_share_warm_store(self, thread_daemon):
        request = MatrixRequest(machines=MACHINES, kernels=KERNELS)
        cells = len(MACHINES) * len(KERNELS)
        with ServiceClient(thread_daemon.endpoint) as warm:
            warm.execute(request, timeout=120)  # warm every cell

        def hits_and_misses():
            stats = thread_daemon.pool.worker_stats
            cell = [s.get(CELL_STAGE, {}) for s in stats.values()]
            return (sum(c.get("hits", 0) for c in cell),
                    sum(c.get("misses", 0) for c in cell))

        hits_before, misses_before = hits_and_misses()
        responses = [None] * 4
        def run(index):
            with ServiceClient(thread_daemon.endpoint) as c:
                responses[index] = c.execute(request, timeout=120)
        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(r is not None and r.all_correct for r in responses)
        first = _strip_provenance(responses[0])
        assert all(_strip_provenance(r) == first for r in responses[1:])
        hits, misses = hits_and_misses()
        new_hits = hits - hits_before
        new_misses = misses - misses_before
        total = new_hits + new_misses
        assert total >= 4 * cells
        assert new_hits / total >= 0.9, (
            f"warm hit rate {new_hits}/{total} below 90%")

    def test_stats_surface(self, client):
        stats = client.stats()
        assert stats["queue"]["total"] >= 1
        assert stats["store"]["entries"] > 0
        assert stats["workers"]  # per-worker store counters


# ----------------------------------------------------------------------
# Durability through a daemon restart.
# ----------------------------------------------------------------------

class TestDaemonRestart:

    def test_restart_recovers_queue_and_results(self, tmp_path):
        root = str(tmp_path / "svc")
        request = MatrixRequest(machines=["vliw4"],
                                kernels=["crc32"]).to_dict()
        # Simulate a daemon that died with one job running and one
        # queued: seed the journal directly.
        queue = DurableQueue(os.path.join(root, "queue"))
        crashed = queue.submit(request)
        queue.claim(timeout=1.0, worker="dead-daemon")
        queued = queue.submit(request)
        del queue

        daemon = ServiceDaemon(root, workers=0, name="reborn")
        assert daemon.queue.recovered == [crashed.id]
        with daemon:
            with ServiceClient(daemon.endpoint) as restart_client:
                first = restart_client.result(crashed.id, timeout=120)
                second = restart_client.result(queued.id, timeout=120)
                assert first.all_correct and second.all_correct
                record = restart_client.status(crashed.id)
                assert record["recovered"] is True

        # A second restart still serves the stored results.
        daemon2 = ServiceDaemon(root, workers=0, name="reborn2")
        with daemon2:
            with ServiceClient(daemon2.endpoint) as again:
                assert again.result(crashed.id, timeout=10).all_correct
                assert again.status(queued.id)["state"] == "done"

    def test_corrupt_store_entry_recomputed_end_to_end(self, tmp_path):
        root = str(tmp_path / "svc")
        request = MatrixRequest(machines=["vliw4"], kernels=["crc32"])
        with ServiceDaemon(root, workers=1, worker_mode="thread",
                           name="corruptd") as daemon:
            with ServiceClient(daemon.endpoint) as c:
                baseline = c.execute(request, timeout=120)
        # Corrupt every memoized matrix cell on disk, then restart so
        # the fresh worker must consult the (now-corrupt) disk layer.
        cell_dir = os.path.join(daemon.store_dir, CELL_STAGE)
        for name in os.listdir(cell_dir):
            path = os.path.join(cell_dir, name)
            blob = open(path, "rb").read()
            open(path, "wb").write(blob[:len(blob) // 2])
        with ServiceDaemon(root, workers=1, worker_mode="thread",
                           name="corruptd2") as daemon2:
            with ServiceClient(daemon2.endpoint) as c:
                again = c.execute(request, timeout=120)
        assert _strip_provenance(again) == _strip_provenance(baseline)
        quarantine = os.path.join(daemon.store_dir, QUARANTINE_DIR)
        # Detected, quarantined for post-mortem, recomputed.
        assert any(name.startswith(CELL_STAGE + "__")
                   for name in os.listdir(quarantine))


# ----------------------------------------------------------------------
# The deprecation shims route through a configured daemon.
# ----------------------------------------------------------------------

class TestShimRouting:

    def test_global_pipeline_uses_daemon_store(self, tmp_path, monkeypatch):
        from repro.pipeline.compile import (
            global_compile_pipeline, reset_global_compile_pipeline,
        )
        from repro.workloads.kernels import get_kernel

        with ServiceDaemon(str(tmp_path / "svc"), workers=0,
                           name="shimd") as daemon:
            monkeypatch.setenv("REPRO_SERVICE_SOCKET", daemon.endpoint)
            reset_service_pipeline()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                pipeline = global_compile_pipeline()
            assert isinstance(pipeline.store, DiskArtifactStore)
            assert pipeline.store.root == daemon.store_dir
            kernel = get_kernel("crc32")
            pipeline.front(kernel.source, kernel.name)
            # Round trip: artifacts written through the shim are visible
            # to the daemon's own store handle.
            assert daemon.store.disk_len() > 0
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                reset_global_compile_pipeline()

        monkeypatch.delenv("REPRO_SERVICE_SOCKET")
        reset_service_pipeline()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            fallback = global_compile_pipeline()
        assert not isinstance(fallback.store, DiskArtifactStore)

    def test_unreachable_daemon_falls_back(self, tmp_path, monkeypatch):
        from repro.pipeline.compile import global_compile_pipeline

        monkeypatch.setenv("REPRO_SERVICE_SOCKET",
                           "unix:" + str(tmp_path / "nobody-home.sock"))
        reset_service_pipeline()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            pipeline = global_compile_pipeline()
        assert not isinstance(pipeline.store, DiskArtifactStore)
        reset_service_pipeline()


# ----------------------------------------------------------------------
# Provenance schema.
# ----------------------------------------------------------------------

class TestProvenanceWorker:

    def test_provenance_round_trips_worker(self):
        provenance = Provenance(session="s", engine="cycle", worker="w7",
                                elapsed_s=0.5)
        data = provenance.to_dict()
        assert data["worker"] == "w7"
        assert Provenance.from_dict(data) == provenance

    def test_old_provenance_dicts_still_parse(self):
        data = Provenance(session="s").to_dict()
        data.pop("worker")  # a pre-service response JSON
        parsed = Provenance.from_dict(data)
        assert parsed.worker == ""

    def test_request_json_round_trip_unchanged(self):
        request = MatrixRequest(machines=MACHINES, kernels=KERNELS)
        assert request_from_dict(request.to_dict()) == request


# ----------------------------------------------------------------------
# Process-mode isolation and fault injection (slower).
# ----------------------------------------------------------------------

def _wait_for(predicate, timeout_s: float, message: str) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(message)


class TestProcessWorkers:

    def test_kill_worker_mid_job_retries_bit_identically(self, tmp_path):
        import signal

        request = MatrixRequest(machines=["vliw4"], kernels=["crc32"])
        with Session(name="oracle") as session:
            local = session.execute(request)
        daemon = ServiceDaemon(
            str(tmp_path / "svc"), workers=2, worker_mode="process",
            name="faulty", heartbeat_timeout=10.0, task_timeout=120.0,
            # Give the test a deterministic window in which the worker
            # is provably mid-task.
            worker_env={"REPRO_SERVICE_TASK_DELAY_S": "2.0"})
        with daemon:
            _wait_for(lambda: len(daemon.pool.live_ids()) == 2, 30.0,
                      "workers never connected")
            with ServiceClient(daemon.endpoint) as fault_client:
                handle = fault_client.submit(request)

                def busy_worker():
                    with daemon.pool._cv:
                        busy = [l.worker_id
                                for l in daemon.pool._links.values()
                                if l.busy is not None]
                    return busy[0] if busy else None

                _wait_for(lambda: busy_worker() is not None, 30.0,
                          "no worker ever went busy")
                victim = busy_worker()
                daemon._procs[victim].send_signal(signal.SIGKILL)

                remote = handle.result(timeout=120)
                record = fault_client.status(handle.id)
        # Zero jobs lost: the task was re-queued and completed with
        # results bit-identical to the single-process run.
        assert record["state"] == "done"
        assert _strip_provenance(remote) == _strip_provenance(local)
        # A replacement worker was spawned for the killed one.
        assert victim not in daemon.pool.worker_stats or \
            len(set(daemon.pool.worker_stats)) >= 2
