"""The native (generated-C) engine and the vectorized batch fallback.

Differential harness: :class:`repro.exec.NativeSimulator` must be
bit-identical to the :class:`repro.sim.FunctionalSimulator` oracle —
return values, memory write-backs and full execution profiles — over the
builtin workload suite, the customized (CUSTOM-op) variants on every
machine preset, and the fixed-seed generated population.  The same
contract is enforced for the NumPy-lockstep
:class:`repro.exec.VectorizedSimulator`, lane by lane.

Failure modes have defined semantics, tested here: a missing C compiler
degrades to the compiled engine with a single process-wide warning; a
module whose compile fails is quarantined and never retried; a corrupt
stored ``.so`` is recompiled from source exactly once; clearing a native
cache ``dlclose``\\ s its libraries so repeated session lifetimes cannot
leak mappings.
"""

from __future__ import annotations

import warnings

import pytest

from repro.arch import vliw4
from repro.arch.presets import PRESETS, get_preset
from repro.exec import (
    CODE_STAGE, NATIVE_STAGE, CodeCache, CompiledSimulator, NativeCodeCache,
    NativeSimulator, NativeToolchain, NativeUnavailableError,
    global_native_cache, make_functional_simulator, native_available,
    numpy_available, reset_global_native_cache, reset_native_fallback_warning,
    reset_native_toolchain, run_batch,
)
from repro.exec.native import CC_ENV, NativeCompileError
from repro.exec.registry import (
    EVALUATION_ENGINES, FUNCTIONAL_ENGINES,
)
from repro.ir import Opcode
from repro.pipeline import ArtifactStore
from repro.sim import FunctionalSimulator, SimulationError
from repro.toolchain import Toolchain
from repro.workloads import KERNELS, get_kernel

from _shared import arg_copies, build_kernel_module

requires_cc = pytest.mark.skipif(not native_available(),
                                 reason="no C compiler on this host")
requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="NumPy not installed")

#: argument size for the generated-population differential (keeps the
#: interpreter side of each comparison fast).
GEN_SIZE = 24


def _run_pair(module, entry, args, make_candidate):
    """(value, write-backs, profile) from the oracle and a candidate."""
    args_a, args_b = arg_copies(args), arg_copies(args)
    interp = FunctionalSimulator(module)
    candidate = make_candidate(module)
    value_a = interp.run(entry, *args_a)
    value_b = candidate.run(entry, *args_b)
    return (value_a, args_a, interp.profile), (value_b, args_b,
                                               candidate.profile)


def _assert_native_matches(module, entry, args):
    (va, aa, pa), (vb, ab, pb) = _run_pair(module, entry, args,
                                           NativeSimulator)
    assert vb == va
    assert ab == aa          # memory write-backs into list arguments
    assert pb == pa          # full ExecutionProfile equality


# ----------------------------------------------------------------------
# Differential suite: native vs. the interpreter oracle.
# ----------------------------------------------------------------------

@requires_cc
class TestNativeDifferential:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_builtin_kernel_matches_interpreter(self, name):
        kernel, module = build_kernel_module(name)
        args = kernel.arguments(None, seed=99)
        _assert_native_matches(module, kernel.entry, args)

    @pytest.mark.parametrize("name", ["sad16", "viterbi_acs",
                                      "saturated_add"])
    def test_custom_op_kernel_matches_interpreter(self, name):
        kernel, module = build_kernel_module(name)
        Toolchain(vliw4()).customize(module, area_budget_kgates=40.0)
        assert any(inst.opcode is Opcode.CUSTOM
                   for f in module for b in f.blocks
                   for inst in b.instructions)
        args = kernel.arguments(None, seed=5)
        _assert_native_matches(module, kernel.entry, args)

    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_preset_customization_matches_interpreter(self, preset):
        # The functional engines are machine independent; the preset axis
        # enters through ISA customization, which rewrites the module with
        # preset-specific CUSTOM ops.
        kernel, module = build_kernel_module("viterbi_acs")
        Toolchain(get_preset(preset)).customize(module,
                                                area_budget_kgates=40.0)
        args = kernel.arguments(None, seed=7)
        _assert_native_matches(module, kernel.entry, args)

    def test_generated_population_matches_interpreter(self,
                                                      seeded_population):
        with seeded_population:
            for name in seeded_population.names():
                kernel = get_kernel(name)
                _, module = build_kernel_module(name)
                args = kernel.arguments(GEN_SIZE, seed=11)
                _assert_native_matches(module, kernel.entry, args)

    def test_recursion_and_error_messages_match(self):
        from repro.frontend import compile_c
        from repro.opt import optimize

        module = compile_c(
            "int fib(int n) { if (n < 2) { return n; }"
            " return fib(n - 1) + fib(n - 2); }", module_name="fib")
        optimize(module, level=2)
        assert NativeSimulator(module).run("fib", 12) == 144

        div = compile_c("int f(int a) { return 100 / a; }", module_name="d")
        with pytest.raises(SimulationError) as native_exc:
            NativeSimulator(div).run("f", 0)
        with pytest.raises(SimulationError) as interp_exc:
            FunctionalSimulator(div).run("f", 0)
        assert str(native_exc.value) == str(interp_exc.value)

    def test_max_steps_enforced_with_interpreter_message(self):
        kernel, module = build_kernel_module("dot_product")
        args = kernel.arguments(None, seed=1)
        with pytest.raises(SimulationError, match="maximum step count"):
            NativeSimulator(module, max_steps=10).run(kernel.entry,
                                                      *arg_copies(args))


# ----------------------------------------------------------------------
# Failure modes (satellite: defined degradation semantics).
# ----------------------------------------------------------------------

class TestMissingCompilerFallback:
    @pytest.fixture(autouse=True)
    def _disable_compiler(self, monkeypatch):
        monkeypatch.setenv(CC_ENV, "none")
        reset_native_toolchain()
        reset_native_fallback_warning()
        yield
        reset_native_toolchain()
        reset_native_fallback_warning()

    def test_degrades_to_compiled_with_single_warning(self):
        kernel, module = build_kernel_module("dot_product")
        with pytest.warns(RuntimeWarning, match="native engine unavailable"):
            simulator = make_functional_simulator(module, engine="native")
        assert isinstance(simulator, CompiledSimulator)
        assert not isinstance(simulator, NativeSimulator)
        args = kernel.arguments(None, seed=3)
        assert (simulator.run(kernel.entry, *arg_copies(args))
                == kernel.expected(args))

        # The warning is once per process: the second degradation is silent.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = make_functional_simulator(module.clone(), engine="native")
        assert isinstance(again, CompiledSimulator)

    def test_run_batch_skips_straight_past_native(self):
        kernel, module = build_kernel_module("ip_checksum")
        arg_sets = [kernel.arguments(16, seed=s) for s in range(4)]
        expected = [kernel.expected(a) for a in arg_sets]
        result = run_batch(module, kernel.entry,
                           [arg_copies(a) for a in arg_sets])
        assert result.values == expected
        assert result.engine_used == ("vector" if numpy_available()
                                      else "compiled")


class TestCompileErrorQuarantine:
    def _failing_toolchain(self):
        toolchain = NativeToolchain(cc="none")
        toolchain.cc = "fake-cc"
        toolchain._version = "fake-cc 0.0"
        calls = []

        def explode(source):
            calls.append(source)
            raise NativeCompileError("fake-cc: exploded")

        toolchain.compile = explode
        return toolchain, calls

    def test_failed_compile_is_never_retried(self, tmp_path):
        _kernel, module = build_kernel_module("dot_product")
        toolchain, calls = self._failing_toolchain()
        cache = NativeCodeCache(toolchain=toolchain, lib_dir=str(tmp_path))
        assert cache.get_or_compile(module) is None
        assert len(calls) == 1
        assert cache.stats.compile_errors == 1
        assert cache.stats.quarantined == 1
        # Quarantined: the compiler is not invoked again, even for clones.
        assert cache.get_or_compile(module.clone()) is None
        assert len(calls) == 1
        reason = cache.quarantine_reason(cache.key_for(module))
        assert reason and "compile error" in reason

    def test_quarantined_module_degrades_to_compiled(self, tmp_path):
        kernel, module = build_kernel_module("dot_product")
        toolchain, _calls = self._failing_toolchain()
        cache = NativeCodeCache(toolchain=toolchain, lib_dir=str(tmp_path))
        with pytest.raises(NativeUnavailableError, match="compile error"):
            NativeSimulator(module, native_cache=cache)
        reset_native_fallback_warning()
        with pytest.warns(RuntimeWarning):
            simulator = make_functional_simulator(
                module.clone(), engine="native", native_cache=cache)
        assert isinstance(simulator, CompiledSimulator)
        args = kernel.arguments(None, seed=13)
        assert (simulator.run(kernel.entry, *arg_copies(args))
                == kernel.expected(args))
        reset_native_fallback_warning()


@requires_cc
class TestCorruptStoredArtifact:
    def test_recompiled_once_and_store_repaired(self, tmp_path):
        kernel, module = build_kernel_module("crc32")
        cache = NativeCodeCache(lib_dir=str(tmp_path))
        store = ArtifactStore()
        key = cache.key_for(module)
        store.put(NATIVE_STAGE, key, b"this is not a shared object",
                  persist=True)

        simulator = NativeSimulator(module, native_cache=cache, store=store)
        args = kernel.arguments(None, seed=8)
        assert (simulator.run(kernel.entry, *arg_copies(args))
                == kernel.expected(args))
        # The bad artifact was rebuilt from source (exactly one compile)
        # and the store entry replaced with the working .so.
        assert cache.stats.builds == 1
        repaired = store.get(NATIVE_STAGE, key, persist=True)
        assert repaired is not None
        assert repaired.payload[:4] == b"\x7fELF"
        cache.clear()


@requires_cc
class TestUnloadAcrossSessions:
    def test_cleared_cache_dlcloses_and_recompiles_cleanly(self):
        from repro.api import Session
        from repro.api.requests import RunRequest

        reset_global_native_cache()
        request = RunRequest(kernel="dot_product", engine="native", size=32)
        with Session() as first:
            before = first.execute(request)
        loaded = len(global_native_cache())
        assert before.correct and loaded >= 1
        # End of lifetime: every library is dlclosed...
        global_native_cache().clear()
        assert len(global_native_cache()) == 0
        assert global_native_cache().stats.unloads >= loaded
        # ...and a later session recompiles (or re-materializes) cleanly.
        with Session() as second:
            after = second.execute(request)
        assert after.correct and after.value == before.value
        reset_global_native_cache()


# ----------------------------------------------------------------------
# Vectorized batch fallback.
# ----------------------------------------------------------------------

@requires_numpy
class TestVectorizedSimulator:
    LANES = 8

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_lockstep_lanes_match_interpreter(self, name):
        from repro.exec import VectorizedSimulator

        kernel, module = build_kernel_module(name)
        arg_sets = [kernel.arguments(None, seed=100 + lane)
                    for lane in range(self.LANES)]
        vec_args = [arg_copies(a) for a in arg_sets]
        simulator = VectorizedSimulator(module, self.LANES)
        values = simulator.run_many(kernel.entry, vec_args)
        for lane, args in enumerate(arg_sets):
            ref_args = arg_copies(args)
            interp = FunctionalSimulator(module)
            assert values[lane] == interp.run(kernel.entry, *ref_args)
            assert vec_args[lane] == ref_args          # write-backs
            assert simulator.profiles[lane] == interp.profile

    def test_max_steps_trap_matches_interpreter_message(self):
        from repro.exec import VectorizedSimulator

        kernel, module = build_kernel_module("dot_product")
        arg_sets = [arg_copies(kernel.arguments(None, seed=s))
                    for s in range(4)]
        simulator = VectorizedSimulator(module, 4, max_steps=10)
        with pytest.raises(SimulationError, match="maximum step count"):
            simulator.run_many(kernel.entry, arg_sets)


class TestRunBatchCascade:
    def _sets(self, kernel, n=4, size=16):
        arg_sets = [kernel.arguments(size, seed=s) for s in range(n)]
        return arg_sets, [kernel.expected(a) for a in arg_sets]

    @requires_cc
    def test_native_ceiling_uses_native(self):
        kernel, module = build_kernel_module("dot_product")
        arg_sets, expected = self._sets(kernel)
        result = run_batch(module, kernel.entry,
                           [arg_copies(a) for a in arg_sets])
        assert result.engine_used == "native"
        assert result.values == expected
        assert all(n > 0 for n in result.instructions)

    @pytest.mark.parametrize("engine", ["compiled", "interpreter"])
    def test_explicit_engine_skips_cascade(self, engine):
        kernel, module = build_kernel_module("fir_filter")
        arg_sets, expected = self._sets(kernel)
        result = run_batch(module, kernel.entry,
                           [arg_copies(a) for a in arg_sets], engine=engine)
        assert result.engine_used == engine
        assert result.values == expected

    @requires_numpy
    def test_vector_tier_matches_per_set_results(self, monkeypatch):
        kernel, module = build_kernel_module("viterbi_acs")
        arg_sets, expected = self._sets(kernel, n=6, size=12)
        monkeypatch.setenv(CC_ENV, "none")
        reset_native_toolchain()
        try:
            result = run_batch(module, kernel.entry,
                               [arg_copies(a) for a in arg_sets])
        finally:
            monkeypatch.delenv(CC_ENV)
            reset_native_toolchain()
        assert result.engine_used == "vector"
        assert result.values == expected


# ----------------------------------------------------------------------
# Registry / API plumbing.
# ----------------------------------------------------------------------

class TestEnginePlumbing:
    def test_registry_includes_native(self):
        assert "native" in FUNCTIONAL_ENGINES
        assert "native" in EVALUATION_ENGINES

    def test_run_request_accepts_native_and_batch(self):
        from repro.api.requests import RunRequest

        request = RunRequest(kernel="crc32", engine="native", batch=8)
        clone = RunRequest.from_dict(request.to_dict())
        assert clone.engine == "native" and clone.batch == 8
        with pytest.raises(ValueError):
            RunRequest(kernel="crc32", batch=0)
        with pytest.raises(ValueError):
            RunRequest(kernel="crc32", engine="cycle", batch=2)

    def test_session_resolves_engine_from_environment(self, monkeypatch):
        from repro.api import Session

        monkeypatch.setenv("REPRO_ENGINE", "compiled")
        with Session() as session:
            assert session.engine == "compiled"
        monkeypatch.setenv("REPRO_ENGINE", "warp-drive")
        with pytest.raises(ValueError):
            Session()

    @requires_cc
    def test_session_batched_native_run(self):
        from repro.api import Session
        from repro.api.requests import RunRequest, response_from_json

        with Session() as session:
            response = session.execute(RunRequest(
                kernel="dot_product", engine="native", size=32, batch=6))
        assert response.correct
        assert response.batch == 6 and len(response.values) == 6
        assert response.batch_engine == "native"
        assert response.value == response.values[0]
        round_trip = response_from_json(response.to_json())
        assert round_trip.values == response.values

    @requires_cc
    def test_toolchain_and_matrix_native_engine(self):
        from repro.toolchain.matrix import run_matrix

        kernel, module = build_kernel_module("ip_checksum")
        args = kernel.arguments(None, seed=2)
        toolchain = Toolchain(vliw4(), engine="native")
        value = toolchain.run_reference(module, kernel.entry,
                                        *arg_copies(args))
        assert value == kernel.expected(args)

        report = run_matrix([vliw4()], kernel_names=["dot_product"],
                            size=32, engine="native")
        assert report.all_correct and report.engine == "native"


class TestCodeCacheEvictionCounter:
    def test_eviction_mirrors_onto_store_stage_stats(self):
        store = ArtifactStore()
        cache = CodeCache(capacity=1, store=store)
        _k1, m1 = build_kernel_module("dot_product")
        _k2, m2 = build_kernel_module("crc32")
        cache.get_or_translate(m1)
        cache.get_or_translate(m2)
        assert cache.stats.evictions == 1
        assert store.stats(CODE_STAGE).evictions == 1
        assert CODE_STAGE in store.stats_dict()

    def test_session_surfaces_code_cache_pressure(self):
        from repro.api import Session

        with Session() as session:
            session.code_cache.capacity = 1
            _k1, m1 = build_kernel_module("dot_product")
            _k2, m2 = build_kernel_module("crc32")
            session.code_cache.get_or_translate(m1)
            session.code_cache.get_or_translate(m2)
            # Session.stats() is a deprecated view over the registry now;
            # the old dict shape (and the single-counted eviction) holds.
            with pytest.warns(DeprecationWarning):
                stats = session.stats()
            assert stats[CODE_STAGE]["evictions"] == 1
