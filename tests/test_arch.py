"""Tests for architecture descriptions, area/power/encoding models, families."""

from __future__ import annotations

import pytest

from repro.arch import (
    CacheConfig, CustomOperation, DEFAULT_OPCODE_BUDGET, FunctionalUnit,
    IsaFamily, MachineConfigError, MachineDescription, OperationClass,
    area_ratio, classify, code_size, compute_drift, encoding_budget_used,
    estimate_area, fits_encoding_budget, get_preset, mass_market_superscalar,
    opcode_points_required, risc_baseline, vliw2, vliw4, vliw8,
)
from repro.arch.power import EnergyModel
from repro.ir import Opcode


class TestMachineDescription:
    def test_default_units_cover_required_classes(self):
        machine = MachineDescription(name="m", issue_width=4)
        for op_class in (OperationClass.IALU, OperationClass.MEM, OperationClass.BRANCH):
            assert machine.supports(op_class)

    def test_invalid_configurations_rejected(self):
        with pytest.raises(MachineConfigError):
            MachineDescription(issue_width=0)
        with pytest.raises(MachineConfigError):
            MachineDescription(issue_width=4, num_clusters=3)
        with pytest.raises(MachineConfigError):
            MachineDescription(registers_per_cluster=2)
        with pytest.raises(MachineConfigError):
            MachineDescription(functional_units=[
                FunctionalUnit("alu", frozenset({OperationClass.IALU}))
            ])

    def test_latency_overrides(self):
        machine = vliw4()
        default = machine.latency(OperationClass.IMUL)
        machine.latency_overrides[OperationClass.IMUL] = default + 3
        assert machine.latency(OperationClass.IMUL) == default + 3

    def test_custom_op_registration_adds_cfu(self):
        machine = vliw4()
        assert not machine.supports(OperationClass.CUSTOM)
        machine.add_custom_op(CustomOperation("sad_step", 2, 1, 1, 3.5, fused_ops=4))
        assert machine.supports(OperationClass.CUSTOM)
        assert machine.custom_latency("sad_step") == 1
        with pytest.raises(MachineConfigError):
            machine.add_custom_op(CustomOperation("sad_step", 2, 1, 1, 3.5))

    def test_clone_is_independent(self):
        machine = vliw4()
        clone = machine.clone("copy")
        clone.registers_per_cluster = 16
        assert machine.registers_per_cluster != 16
        assert clone.name == "copy"

    def test_table_round_trip(self):
        machine = vliw4()
        machine.latency_overrides[OperationClass.MEM] = 3
        rebuilt = MachineDescription.from_table(machine.to_table())
        assert rebuilt.issue_width == machine.issue_width
        assert rebuilt.latency(OperationClass.MEM) == 3
        assert rebuilt.registers_per_cluster == machine.registers_per_cluster

    def test_presets_are_valid(self):
        for name in ("risc32", "vliw2", "vliw4", "vliw8", "vliw4c2", "dsp16", "massmkt"):
            machine = get_preset(name)
            machine.validate()
        with pytest.raises(KeyError):
            get_preset("nonexistent")

    def test_cache_configuration(self):
        cache = CacheConfig(size_bytes=8192, line_bytes=32, associativity=2)
        assert cache.num_sets == 128
        with pytest.raises(MachineConfigError):
            CacheConfig(size_bytes=1000, line_bytes=32)

    def test_opcode_classification(self):
        assert classify(Opcode.ADD) is OperationClass.IALU
        assert classify(Opcode.MUL) is OperationClass.IMUL
        assert classify(Opcode.LOAD) is OperationClass.MEM
        assert classify(Opcode.BRANCH) is OperationClass.BRANCH


class TestAreaModel:
    def test_wider_machines_are_larger(self):
        assert estimate_area(vliw4()).core > estimate_area(vliw2()).core
        assert estimate_area(vliw8()).core > estimate_area(vliw4()).core

    def test_more_registers_cost_area(self):
        small = vliw4()
        large = vliw4()
        large.registers_per_cluster = 128
        assert estimate_area(large).core > estimate_area(small).core

    def test_custom_units_add_area(self):
        machine = vliw4()
        base = estimate_area(machine).core
        machine.add_custom_op(CustomOperation("x", 2, 1, 1, area_kgates=12.0))
        assert estimate_area(machine).core == pytest.approx(base + 12.0)

    def test_paper_claim_vliw4_near_risc_with_dynamic_control(self):
        """§2.2: a 4-issue exposed VLIW costs about as much as a scalar core
        once the binary-compatibility (dynamic scheduling) hardware is gone."""
        risc = risc_baseline()
        custom_vliw = vliw4()
        exposed_ratio = area_ratio(custom_vliw, risc)
        dynamic = estimate_area(mass_market_superscalar(), dynamically_scheduled=True)
        exposed = estimate_area(custom_vliw)
        assert exposed_ratio < 2.5          # same ballpark as the RISC
        assert dynamic.core > 2.0 * exposed.core  # compatibility hardware dominates

    def test_report_breakdown_sums(self):
        report = estimate_area(vliw4())
        assert report.total == pytest.approx(report.core + report.caches)
        assert set(report.as_dict()) >= {"control", "functional_units", "total"}


class TestEnergyModel:
    def test_operation_energy_accumulates(self):
        model = EnergyModel(vliw4())
        model.charge_operation(OperationClass.IALU)
        model.charge_operation(OperationClass.IMUL)
        assert model.report.dynamic_pj > 0

    def test_custom_op_cheaper_than_parts(self):
        from repro.arch.operations import DEFAULT_ENERGY_PJ

        model = EnergyModel(vliw4())
        model.charge_custom(fused_ops=4, inputs=2)
        fused = model.report.dynamic_pj
        assert fused < 4 * DEFAULT_ENERGY_PJ[OperationClass.IALU]

    def test_static_energy_scales_with_cycles(self):
        model = EnergyModel(vliw4())
        model.charge_cycles(1000)
        first = model.report.static_pj
        model.charge_cycles(1000)
        assert model.report.static_pj == pytest.approx(2 * first)

    def test_average_power_positive(self):
        model = EnergyModel(vliw4())
        model.charge_cycles(10_000)
        model.charge_operation(OperationClass.IALU)
        assert model.average_power_mw(10_000) > 0


class TestEncodingModel:
    def test_compression_removes_nop_cost(self):
        machine = vliw4()
        report = code_size(machine, [1, 2, 4, 1])
        assert report.nops == 4 * 4 - 8
        assert report.bytes_compressed < report.bytes_uncompressed

    def test_effective_bytes_follow_machine_setting(self):
        machine = vliw4()
        machine.compressed_encoding = True
        assert code_size(machine, [1, 1]).bytes_effective == code_size(machine, [1, 1]).bytes_compressed
        machine.compressed_encoding = False
        assert code_size(machine, [1, 1]).bytes_effective == code_size(machine, [1, 1]).bytes_uncompressed

    def test_opcode_points(self):
        assert opcode_points_required(2, 1) == 1
        assert opcode_points_required(4, 1) == 3
        assert opcode_points_required(2, 2) == 3

    def test_encoding_budget(self):
        machine = vliw4()
        for index in range(4):
            machine.add_custom_op(CustomOperation(f"op{index}", 4, 1, 1, 2.0))
        assert encoding_budget_used(machine) == 12
        assert fits_encoding_budget(machine, DEFAULT_OPCODE_BUDGET)
        machine.add_custom_op(CustomOperation("big", 4, 2, 1, 2.0))
        assert not fits_encoding_budget(machine, DEFAULT_OPCODE_BUDGET)


class TestIsaFamily:
    def test_derive_members_and_drift(self):
        family = IsaFamily("lx", vliw4("lx1"))
        wide = family.derive("lx2", issue_width=8)
        drift = family.drift("lx1", "lx2")
        assert drift.issue_width_change == 4
        assert wide.name in family
        assert len(family) == 2

    def test_duplicate_member_rejected(self):
        family = IsaFamily("fam", vliw4("a"))
        with pytest.raises(ValueError):
            family.add_member(vliw4("a"))

    def test_compatibility_matrix_asymmetric(self):
        family = IsaFamily("fam", vliw2("narrow"))
        family.derive("wide", issue_width=4)
        matrix = family.compatibility_matrix()
        # Widening keeps old binaries runnable; narrowing does not.
        assert matrix["narrow"]["wide"] is True
        assert matrix["wide"]["narrow"] is False

    def test_drift_detects_custom_ops_and_encoding(self):
        base = vliw4("base")
        target = vliw4("next")
        target.add_custom_op(CustomOperation("mac", 3, 1, 2, 8.0))
        target.compressed_encoding = not base.compressed_encoding
        drift = compute_drift(base, target)
        assert drift.added_custom_ops == ["mac"]
        assert drift.encoding_changed
        assert drift.severity >= 2
