"""Tests for the synthetic workload generation subsystem (repro.gen)."""

from __future__ import annotations

import pytest

from repro.exec import CompiledSimulator
from repro.frontend import compile_c
from repro.gen import (
    FAMILIES, WorkloadPopulation, WorkloadSpec, build_function,
    characterize_kernel, generate_kernel, sample_population_specs,
    sample_spec, static_features,
)
from repro.opt import optimize
from repro.pipeline import CompilePipeline
from repro.sim import FunctionalSimulator
from repro.workloads import (
    BUILTIN_KERNELS, DOMAINS, get_kernel, list_kernels, register_kernel,
    unregister_kernel,
)
from repro.workloads.kernels import KERNELS, Kernel


def run_both_engines(gk, seed=11, size=None):
    """(interpreter value, compiled value, oracle value) for one kernel."""
    module = compile_c(gk.c_source, module_name=gk.name)
    optimize(module, level=2)
    args = gk.kernel.arguments(size, seed=seed)
    expected = gk.kernel.expected(args)
    values = []
    for simulator_cls in (FunctionalSimulator, CompiledSimulator):
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        values.append(simulator_cls(module.clone()).run(gk.kernel.entry,
                                                        *run_args))
    return values[0], values[1], expected


class TestWorkloadSpec:
    def test_round_trips_through_json(self):
        spec = sample_spec("table_lookup", 99)
        clone = WorkloadSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.fingerprint() == spec.fingerprint()

    def test_fingerprint_is_stable_and_content_sensitive(self):
        a = WorkloadSpec(family="reduction", seed=5)
        b = WorkloadSpec(family="reduction", seed=5)
        c = WorkloadSpec(family="reduction", seed=6)
        d = WorkloadSpec(family="streaming_dsp", seed=5)
        assert a.fingerprint() == b.fingerprint()
        assert len({a.fingerprint(), c.fingerprint(), d.fingerprint()}) == 3

    def test_kernel_name_is_a_c_identifier(self):
        name = WorkloadSpec(family="control_heavy", seed=1).kernel_name()
        assert name.isidentifier()

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            WorkloadSpec(family="nope", seed=1)
        with pytest.raises(ValueError):
            WorkloadSpec(family="reduction", seed=1, size=48)  # not pow2
        with pytest.raises(ValueError):
            WorkloadSpec(family="reduction", seed=1, footprint=128, size=64)
        with pytest.raises(ValueError):
            WorkloadSpec(family="reduction", seed=1, stride=2)  # even
        with pytest.raises(ValueError):
            WorkloadSpec(family="reduction", seed=1, data_bits=24)
        with pytest.raises(ValueError):
            WorkloadSpec(family="reduction", seed=1, depth=3)
        with pytest.raises(ValueError):
            WorkloadSpec(family="reduction", seed=1, footprint=4, taps=4)
        # A mix the generator could not expand (shift-only, or no weight
        # at all) must be rejected up front, not hang generation.
        with pytest.raises(ValueError):
            WorkloadSpec(family="memory_mixed", seed=1, op_mix=(("shift", 1.0),))
        with pytest.raises(ValueError):
            WorkloadSpec(family="memory_mixed", seed=1,
                         op_mix=(("arith", 0.0), ("shift", 1.0)))

    def test_sample_spec_is_deterministic(self):
        assert sample_spec("memory_mixed", 7) == sample_spec("memory_mixed", 7)

    def test_sample_population_rejects_empty_families(self):
        with pytest.raises(ValueError):
            sample_population_specs(4, seed=1, families=())

    def test_sample_population_round_robins_families(self):
        specs = sample_population_specs(10, seed=3)
        assert len(specs) == 10
        assert [s.family for s in specs[:5]] == list(FAMILIES)
        # Deterministic in the seed, distinct content.
        again = sample_population_specs(10, seed=3)
        assert [s.fingerprint() for s in specs] == [s.fingerprint() for s in again]
        assert len({s.fingerprint() for s in specs}) == 10


class TestGenerator:
    def test_generation_is_deterministic(self):
        spec = sample_spec("streaming_dsp", 42)
        one, two = generate_kernel(spec), generate_kernel(spec)
        assert one.c_source == two.c_source
        assert one.python_source == two.python_source
        assert one.kernel.arguments(None, seed=5) == two.kernel.arguments(None, seed=5)

    def test_different_seeds_generate_different_kernels(self):
        a = generate_kernel(sample_spec("reduction", 1))
        b = generate_kernel(sample_spec("reduction", 2))
        assert a.name != b.name
        assert a.c_source != b.c_source

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", [0, 17, 4021])
    def test_every_family_self_checks_on_both_engines(self, family, seed):
        gk = generate_kernel(sample_spec(family, seed))
        interp, compiled, expected = run_both_engines(gk, seed=seed + 1)
        assert interp == expected
        assert compiled == expected

    def test_small_size_is_clamped_to_footprint(self):
        spec = sample_spec("memory_mixed", 5)
        gk = generate_kernel(spec)
        args = gk.kernel.arguments(1, seed=9)     # way below the footprint
        assert args[-1] >= spec.footprint         # n clamped
        interp, compiled, expected = run_both_engines(gk, seed=9, size=1)
        assert interp == compiled == expected

    def test_table_family_gets_a_256_entry_table(self):
        gk = generate_kernel(sample_spec("table_lookup", 8))
        args = gk.kernel.arguments(None, seed=1)
        tables = [a for a in args[:-1] if isinstance(a, list) and len(a) == 256]
        assert tables and all(0 <= v <= 255 for v in tables[0])

    def test_ast_renders_both_languages_from_one_tree(self):
        fn = build_function(sample_spec("control_heavy", 23))
        gk = generate_kernel(sample_spec("control_heavy", 23))
        assert fn.name in gk.c_source and fn.name in gk.python_source
        for array in fn.arrays:
            assert f"*{array.name}" in gk.c_source


class TestKernelRegistry:
    def test_list_kernels_covers_the_builtin_suite(self):
        names = list_kernels()
        assert set(BUILTIN_KERNELS) <= set(names)
        assert names == sorted(names)

    def test_get_kernel_keyerror_names_available_kernels(self):
        with pytest.raises(KeyError) as excinfo:
            get_kernel("definitely_not_a_kernel")
        message = str(excinfo.value)
        assert "definitely_not_a_kernel" in message
        assert "dot_product" in message           # lists what *is* available

    def test_register_and_unregister_round_trip(self):
        gk = generate_kernel(sample_spec("reduction", 77))
        register_kernel(gk.kernel)
        try:
            assert get_kernel(gk.name) is gk.kernel
            assert gk.name in list_kernels()
            assert gk.name in list_kernels(domain=gk.kernel.domain)
            assert gk.name in DOMAINS[gk.kernel.domain]
        finally:
            unregister_kernel(gk.name)
        assert gk.name not in list_kernels()
        assert gk.kernel.domain not in DOMAINS

    def test_duplicate_registration_requires_replace(self):
        gk = generate_kernel(sample_spec("reduction", 78))
        register_kernel(gk.kernel)
        try:
            with pytest.raises(ValueError):
                register_kernel(gk.kernel)
            register_kernel(gk.kernel, replace=True)   # idempotent with flag
            assert list_kernels().count(gk.name) == 1
            assert DOMAINS[gk.kernel.domain].count(gk.name) == 1
        finally:
            unregister_kernel(gk.name)

    def test_builtins_are_protected(self):
        with pytest.raises(ValueError):
            unregister_kernel("dot_product")
        assert "dot_product" in KERNELS

    def test_unregister_unknown_name_is_a_no_op(self):
        unregister_kernel("gen_never_registered")


class TestCharacterization:
    def test_static_features_see_the_structure(self):
        gk = generate_kernel(sample_spec("memory_mixed", 12))
        module = compile_c(gk.c_source, module_name=gk.name)
        optimize(module, level=2)
        features = static_features(module)
        assert features.instructions > 0
        assert features.loads >= 2                # two strided input streams
        assert features.stores >= 1               # the out[] stream
        assert features.largest_block > 0
        assert features.critical_path >= 1
        assert features.ilp_bound >= 1.0
        assert sum(features.opcode_histogram.values()) == features.instructions

    def test_characterize_kernel_end_to_end(self):
        gk = generate_kernel(sample_spec("control_heavy", 31))
        result = characterize_kernel(gk, pipeline=CompilePipeline())
        assert result.name == gk.name
        assert result.family == "control_heavy"
        assert result.dynamic.instructions > 0
        assert result.dynamic.branches > 0
        assert 0.0 <= result.dynamic.branch_taken_ratio <= 1.0
        payload = result.as_dict()
        assert payload["static"]["ilp_bound"] >= 1.0
        assert payload["dynamic"]["memory_fraction"] >= 0.0

    def test_characterization_raises_on_oracle_mismatch(self):
        gk = generate_kernel(sample_spec("reduction", 41))
        broken = Kernel(
            name=gk.kernel.name, domain=gk.kernel.domain,
            description=gk.kernel.description, source=gk.kernel.source,
            entry=gk.kernel.entry, make_args=gk.kernel.make_args,
            reference=lambda *args: 123456789,    # wrong oracle
            default_size=gk.kernel.default_size,
        )
        gk.kernel = broken
        with pytest.raises(AssertionError):
            characterize_kernel(gk, pipeline=CompilePipeline())


class TestWorkloadPopulation:
    def test_generate_is_deterministic_and_family_balanced(self):
        population = WorkloadPopulation.generate(15, seed=5)
        again = WorkloadPopulation.generate(15, seed=5)
        assert population.names() == again.names()
        assert population.fingerprints() == again.fingerprints()
        grouped = population.by_family()
        assert set(grouped) == set(FAMILIES)
        assert all(len(members) == 3 for members in grouped.values())

    def test_context_manager_scopes_registration(self):
        population = WorkloadPopulation.generate(6, seed=9)
        before = set(list_kernels())
        with population:
            assert set(population.names()) <= set(list_kernels())
            mix = population.family_mix("table_lookup", limit=1)
            assert get_kernel(mix.names()[0]).domain == "gen:table_lookup"
        assert set(list_kernels()) == before

    def test_registration_cleans_up_after_exceptions(self):
        population = WorkloadPopulation.generate(5, seed=13)
        before = set(list_kernels())
        with pytest.raises(RuntimeError):
            with population:
                raise RuntimeError("boom")
        assert set(list_kernels()) == before

    def test_validate_is_bit_identical_across_engines(self):
        population = WorkloadPopulation.generate(10, seed=21)
        results = population.validate(pipeline=CompilePipeline())
        assert len(results) == 10
        assert all(results.values())

    def test_family_mix_requires_known_family(self):
        population = WorkloadPopulation.generate(2, seed=1,
                                                 families=("reduction",))
        with pytest.raises(KeyError):
            population.family_mix("streaming_dsp")

    def test_customization_gain_reports_a_plausible_record(self):
        population = WorkloadPopulation.generate(4, seed=31,
                                                 families=("streaming_dsp",))
        with population:
            gain = population.customization_gain(
                "streaming_dsp", budget=24.0, kernels_per_family=2)
        assert gain.feasible
        assert gain.gain >= 0.99                  # customization never hurts
        assert gain.custom_area_kgates >= gain.base_area_kgates
        assert set(gain.as_dict()) >= {"family", "gain", "custom_ops"}
