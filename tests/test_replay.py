"""repro.replay: experiment manifests, replay, and the regression gate.

The end-to-end contract under test: a journaled request (or a recorded
manifest) replays through a fresh ``Session.execute`` with bit-identical
stage fingerprints and oracle outputs; any tampering — a fingerprint, a
response field, a missing metric — fails the gate; perf metrics trip
when the fresh run lands outside the declared tolerance band.
"""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main as cli_main
from repro.api.requests import RunRequest, request_from_dict
from repro.api.session import SESSION_DELAY_ENV, Session
from repro.obs import read_journal, reset_global_tracer, set_obs_mode
from repro.replay import (
    ExperimentManifest, GateReport, ManifestError, capture_env,
    check_metric, compare_bench, default_replay_metrics, fingerprint_of,
    gate_bench_dirs, load_manifests, manifest_from_event,
    manifest_from_response, metric_spec, replay_manifest, response_digest,
    run_gate,
)


@pytest.fixture(autouse=True)
def _clean_obs_state(monkeypatch):
    monkeypatch.delenv("REPRO_OBS", raising=False)
    monkeypatch.delenv("REPRO_OBS_JOURNAL", raising=False)
    monkeypatch.delenv(SESSION_DELAY_ENV, raising=False)
    set_obs_mode(None)
    reset_global_tracer()
    yield
    set_obs_mode(None)
    reset_global_tracer()


def _run_request(**overrides) -> RunRequest:
    fields = {"kernel": "dot_product", "machine": "vliw4", "size": 24,
              "seed": 7, "engine": "cycle"}
    fields.update(overrides)
    return RunRequest(**fields)


def _record(tmp_path, name="unit", **overrides) -> ExperimentManifest:
    request = _run_request(**overrides)
    with Session(name="record-test") as session:
        response = session.execute(request)
    return manifest_from_response(request, response, name=name,
                                  elapsed_s=0.01)


# ----------------------------------------------------------------------
# Metric specs and their tolerance checks.
# ----------------------------------------------------------------------

class TestMetricSpecs:

    def test_floor_and_ceiling_are_absolute(self):
        spec = metric_spec(5.0, floor=3.0, ceiling=8.0)
        assert check_metric(spec, 3.0)[0]
        assert check_metric(spec, 8.0)[0]
        ok, note = check_metric(spec, 2.9)
        assert not ok and "floor" in note
        ok, note = check_metric(spec, 8.1)
        assert not ok and "ceiling" in note

    def test_band_is_direction_aware(self):
        lower = metric_spec(1.0, direction="lower", band=2.0)
        assert check_metric(lower, 1.9)[0]
        assert not check_metric(lower, 2.1)[0]
        higher = metric_spec(10.0, direction="higher", band=2.0)
        assert check_metric(higher, 5.5)[0]
        assert not check_metric(higher, 4.9)[0]

    def test_band_disabled_when_scales_differ(self):
        spec = metric_spec(10.0, direction="higher", band=2.0, floor=1.0)
        assert not check_metric(spec, 2.0)[0]
        # relative_ok=False keeps only the absolute floor.
        assert check_metric(spec, 2.0, relative_ok=False)[0]
        assert not check_metric(spec, 0.5, relative_ok=False)[0]

    def test_unbounded_fidelity_must_reproduce_exactly(self):
        spec = metric_spec(0.75, kind="fidelity")
        assert check_metric(spec, 0.75)[0]
        ok, note = check_metric(spec, 0.7500001)
        assert not ok and "drifted" in note

    def test_non_numeric_fresh_value_fails(self):
        ok, note = check_metric(metric_spec(1.0, band=2.0), "fast")
        assert not ok and "not numeric" in note

    def test_spec_vocabulary_validated(self):
        with pytest.raises(ValueError):
            metric_spec(1.0, kind="vibes")
        with pytest.raises(ValueError):
            metric_spec(1.0, direction="sideways")

    def test_default_replay_metrics_band_elapsed(self):
        metrics = default_replay_metrics(0.5)
        spec = metrics["elapsed_s"]
        assert spec["direction"] == "lower" and spec["kind"] == "perf"
        assert check_metric(spec, 0.5 * spec["band"] + 0.9)[0]
        assert not check_metric(spec, 0.5 * spec["band"] + 1.1)[0]


# ----------------------------------------------------------------------
# Manifest construction and loading.
# ----------------------------------------------------------------------

class TestManifest:

    def test_response_digest_drops_provenance(self, tmp_path):
        request = _run_request()
        with Session(name="digest-test") as session:
            response = session.execute(request)
        digest = response_digest(response)
        assert "provenance" not in digest
        assert "cycles" in digest or "value" in digest
        # The digest is stable across runs (wall clock lives in
        # provenance, which was dropped).
        with Session(name="digest-test-2") as session:
            digest2 = response_digest(session.execute(request))
        assert fingerprint_of(digest) == fingerprint_of(digest2)

    def test_manifest_round_trips_through_disk(self, tmp_path):
        manifest = _record(tmp_path)
        path = str(tmp_path / "m.json")
        manifest.save(path)
        loaded = ExperimentManifest.load(path)
        assert loaded.request == manifest.request
        assert loaded.fingerprints == manifest.fingerprints
        assert loaded.response_fingerprint == manifest.response_fingerprint
        assert loaded.env == capture_env()

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ManifestError):
            ExperimentManifest.from_dict({"kind": "run"})
        with pytest.raises(ManifestError):
            ExperimentManifest.from_dict(
                {"manifest_kind": "experiment.manifest",
                 "schema_version": 99,
                 "request": {"kind": "run"}})
        with pytest.raises(ManifestError):
            ExperimentManifest.from_dict(
                {"manifest_kind": "experiment.manifest", "request": {}})

    def test_journal_event_is_a_manifest(self, tmp_path):
        journal_path = str(tmp_path / "obs.jsonl")
        request = _run_request()
        with Session(name="journal-test", obs="trace",
                     journal=journal_path) as session:
            session.execute(request)
        events = [event for event in read_journal(journal_path)
                  if event.get("event") == "manifest"]
        assert len(events) == 1
        event = events[0]
        # The session completed the event into a replayable manifest.
        assert event["response_fingerprint"]
        assert event["env"]["python"]
        assert "elapsed_s" in event["replay_metrics"]
        manifest = manifest_from_event(event)
        assert manifest.request["kind"] == "run"
        assert manifest.fingerprints
        assert request_from_dict(manifest.request).kernel == "dot_product"

    def test_degraded_event_is_refused(self):
        with pytest.raises(ManifestError, match="degraded"):
            manifest_from_event({"event": "manifest",
                                 "request": {"kind": "run"},
                                 "degraded": ["request: set"]})

    def test_load_manifests_walks_directories(self, tmp_path):
        manifest = _record(tmp_path)
        manifest.save(str(tmp_path / "a.json"))
        (tmp_path / "broken.json").write_text("{not json")
        manifests, problems = load_manifests(str(tmp_path))
        assert [m.name for m in manifests] == ["unit"]
        assert len(problems) == 1 and "broken.json" in problems[0]


# ----------------------------------------------------------------------
# Replay: bit-identity plus tamper detection.
# ----------------------------------------------------------------------

class TestReplay:

    def test_replay_reproduces_bit_identically(self, tmp_path):
        manifest = _record(tmp_path)
        report = replay_manifest(manifest)
        assert report.ok and report.fidelity_ok and report.perf_ok
        assert not report.fingerprint_mismatches
        assert not report.response_mismatches
        assert report.fingerprints_expected == len(manifest.fingerprints) > 0

    def test_tampered_fingerprint_fails_fidelity(self, tmp_path):
        manifest = _record(tmp_path)
        manifest.fingerprints[0]["key"] = "0" * 64
        report = replay_manifest(manifest)
        assert not report.ok and not report.fidelity_ok
        assert report.fingerprint_mismatches
        # Perf is independent: the run itself was fine.
        assert report.perf_ok

    def test_tampered_response_fails_with_field_path(self, tmp_path):
        manifest = _record(tmp_path)
        manifest.response["cycles"] = -1
        manifest.response_fingerprint = fingerprint_of(manifest.response)
        report = replay_manifest(manifest)
        assert not report.ok
        assert any("cycles" in mismatch
                   for mismatch in report.response_mismatches)

    def test_perf_band_trips_on_injected_delay(self, tmp_path, monkeypatch):
        manifest = _record(tmp_path)
        manifest.metrics["elapsed_s"] = metric_spec(
            0.001, kind="perf", direction="lower", band=1.0, slack=0.05)
        monkeypatch.setenv(SESSION_DELAY_ENV, "0.3")
        report = replay_manifest(manifest)
        assert report.fidelity_ok, (report.fingerprint_mismatches,
                                    report.response_mismatches)
        assert not report.perf_ok and not report.ok
        delta = {d.name: d for d in report.deltas}["elapsed_s"]
        assert not delta.ok and "band" in delta.note

    def test_unrunnable_request_is_reported_not_raised(self):
        manifest = ExperimentManifest(
            name="bad", kind="run",
            request={"kind": "run", "kernel": "no_such_kernel",
                     "machine": "vliw4"})
        report = replay_manifest(manifest)
        assert not report.ok and report.error


# ----------------------------------------------------------------------
# The gate: manifests + BENCH baselines.
# ----------------------------------------------------------------------

class TestGate:

    def test_gate_passes_on_faithful_manifests(self, tmp_path):
        _record(tmp_path).save(str(tmp_path / "good.json"))
        report = run_gate([str(tmp_path / "good.json")])
        assert isinstance(report, GateReport) and report.ok
        assert [entry.check for entry in report.entries] == ["replay"]

    def test_gate_fails_on_tampered_manifest_and_load_problems(
            self, tmp_path):
        manifest = _record(tmp_path)
        manifest.fingerprints[0]["key"] = "f" * 64
        manifest.save(str(tmp_path / "bad.json"))
        (tmp_path / "unreadable.json").write_text("{")
        report = run_gate([str(tmp_path)])
        assert not report.ok
        assert {entry.check for entry in report.failures} == \
            {"replay", "load"}

    def test_empty_gate_is_not_a_pass(self):
        assert not GateReport().ok

    def test_compare_bench_uses_declared_tolerances(self):
        baseline = {"shrunk": False, "metrics": {
            "speedup": metric_spec(20.0, band=4.0, floor=3.0),
            "pass_rate": metric_spec(1.0, kind="fidelity", floor=1.0),
        }}
        fresh_ok = {"shrunk": False, "metrics": {
            "speedup": metric_spec(18.0), "pass_rate": metric_spec(1.0)}}
        assert all(e.ok for e in compare_bench(baseline, fresh_ok, "b"))
        fresh_bad = {"shrunk": False, "metrics": {
            "speedup": metric_spec(4.0), "pass_rate": metric_spec(0.9)}}
        failures = [e for e in compare_bench(baseline, fresh_bad, "b")
                    if not e.ok]
        assert {e.target for e in failures} == {"b:speedup", "b:pass_rate"}

    def test_compare_bench_scale_mismatch_keeps_absolute_bounds(self):
        baseline = {"shrunk": False, "metrics": {
            "speedup": metric_spec(20.0, band=1.5, floor=3.0)}}
        shrunk_fresh = {"shrunk": True, "metrics": {
            "speedup": metric_spec(5.0)}}
        entries = compare_bench(baseline, shrunk_fresh, "b")
        assert all(e.ok for e in entries)  # band waived, floor holds
        too_slow = {"shrunk": True, "metrics": {"speedup": metric_spec(2.0)}}
        assert not compare_bench(baseline, too_slow, "b")[0].ok

    def test_compare_bench_pre_manifest_schema_skipped(self):
        entries = compare_bench({"experiment": "old"}, {}, "legacy")
        assert len(entries) == 1 and entries[0].ok
        assert "skipped" in entries[0].detail["note"]

    def test_gate_bench_dirs_end_to_end(self, tmp_path):
        baseline_dir = tmp_path / "baseline"
        fresh_dir = tmp_path / "fresh"
        baseline_dir.mkdir()
        fresh_dir.mkdir()
        document = {"shrunk": False, "metrics": {
            "speedup": metric_spec(10.0, band=2.0)}}
        (baseline_dir / "BENCH_x.json").write_text(json.dumps(document))
        (baseline_dir / "BENCH_skipme.json").write_text(json.dumps(document))
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(
            {"shrunk": False, "metrics": {"speedup": metric_spec(9.0)}}))
        entries = gate_bench_dirs(str(baseline_dir), str(fresh_dir))
        by_target = {e.target: e for e in entries}
        assert by_target["BENCH_x.json:speedup"].ok
        assert by_target["BENCH_skipme.json"].ok  # no fresh run: skipped
        # A regression outside the band fails.
        (fresh_dir / "BENCH_x.json").write_text(json.dumps(
            {"shrunk": False, "metrics": {"speedup": metric_spec(3.0)}}))
        entries = gate_bench_dirs(str(baseline_dir), str(fresh_dir))
        assert not all(e.ok for e in entries)


# ----------------------------------------------------------------------
# The CLI: record → replay → gate.
# ----------------------------------------------------------------------

class TestReplayCli:

    def _write_request(self, tmp_path):
        path = tmp_path / "req.json"
        path.write_text(json.dumps(
            {"kind": "run", "kernel": "ip_checksum", "machine": "risc32",
             "size": 16, "seed": 3, "engine": "cycle"}))
        return str(path)

    def test_record_then_replay_round_trip(self, tmp_path, capsys):
        request_path = self._write_request(tmp_path)
        manifest_path = str(tmp_path / "m.json")
        assert cli_main(["record", "--request", request_path,
                         "--output", manifest_path,
                         "--name", "cli-roundtrip"]) == 0
        assert cli_main(["replay", manifest_path]) == 0
        out = capsys.readouterr().out
        assert "cli-roundtrip" in out and "ok" in out

    def test_replay_detects_tampering_via_exit_code(self, tmp_path, capsys):
        request_path = self._write_request(tmp_path)
        manifest_path = tmp_path / "m.json"
        assert cli_main(["record", "--request", request_path,
                         "--output", str(manifest_path)]) == 0
        data = json.loads(manifest_path.read_text())
        data["fingerprints"][0]["key"] = "d" * 64
        manifest_path.write_text(json.dumps(data))
        report_path = tmp_path / "report.json"
        assert cli_main(["replay", str(manifest_path),
                         "--report", str(report_path)]) == 1
        report = json.loads(report_path.read_text())
        assert report["ok"] is False
        assert report["replays"][0]["fingerprint_mismatches"]

    def test_replay_of_journal_by_trace_id(self, tmp_path, capsys):
        journal_path = str(tmp_path / "obs.jsonl")
        with Session(name="cli-journal", obs="trace",
                     journal=journal_path) as session:
            response = session.execute(_run_request(size=16))
        trace_id = response.provenance.trace_id
        assert cli_main(["replay", journal_path,
                         "--trace-id", trace_id]) == 0
        assert cli_main(["replay", journal_path,
                         "--trace-id", "missing"]) == 2

    def test_gate_cli_reports_and_exit_codes(self, tmp_path, capsys):
        request_path = self._write_request(tmp_path)
        manifest_path = str(tmp_path / "m.json")
        assert cli_main(["record", "--request", request_path,
                         "--output", manifest_path]) == 0
        report_path = tmp_path / "gate.json"
        assert cli_main(["gate", manifest_path,
                         "--report", str(report_path)]) == 0
        assert json.loads(report_path.read_text())["ok"] is True
        # Nothing to check is a usage error, not a silent pass.
        assert cli_main(["gate"]) == 2
        assert cli_main(["record", "--request",
                         str(tmp_path / "absent.json"),
                         "--output", manifest_path]) == 2
