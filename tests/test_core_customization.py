"""Tests for the ISA-customization engine (patterns, identification,
selection, rewriting, end-to-end customizer)."""

from __future__ import annotations

import pytest

from repro.arch import CustomOperation, risc_baseline, vliw4
from repro.core import (
    Candidate, EnumerationConfig, ExtensionLibrary, IsaCustomizer, Pattern,
    PatternNode, SelectionConfig, customize_isa, enumerate_block_cuts,
    global_extension_library, identify_candidates, pattern_from_cut,
    rewrite_with_library, select, select_greedy, select_knapsack,
)
from repro.core.rewrite import custom_op_usage
from repro.frontend import compile_c
from repro.ir import Opcode, assert_valid, build_dataflow_graph
from repro.opt import optimize
from repro.sim import CycleSimulator, FunctionalSimulator
from repro.backend import compile_module
from repro.workloads import get_kernel


def make_mac_pattern() -> Pattern:
    """A hand-written multiply-accumulate pattern: out = in0*in1 + in2."""
    nodes = [
        PatternNode(Opcode.MUL, (("in", 0), ("in", 1))),
        PatternNode(Opcode.ADD, (("node", 0), ("in", 2))),
    ]
    return Pattern(nodes, outputs=[1], num_inputs=3, name="mac")


class TestPatterns:
    def test_evaluate_matches_python(self):
        mac = make_mac_pattern()
        assert mac.evaluate([3, 4, 5]) == 17
        assert mac.evaluate([-2, 6, 1]) == -11

    def test_evaluate_wraps_to_32_bits(self):
        mac = make_mac_pattern()
        assert mac.evaluate([2**16, 2**16, 0]) == -(2**31) or mac.evaluate([2**16, 2**16, 0]) == 0
        # 2^32 wraps to 0 in 32-bit arithmetic.
        assert mac.evaluate([2**16, 2**16, 7]) == 7

    def test_wrong_arity_rejected(self):
        with pytest.raises(Exception):
            make_mac_pattern().evaluate([1, 2])

    def test_hardware_latency_less_than_software(self):
        mac = make_mac_pattern()
        software = mac.software_latency(lambda op: 2 if op is Opcode.MUL else 1)
        assert mac.hardware_latency() <= software

    def test_area_grows_with_size(self):
        small = make_mac_pattern()
        nodes = list(small.nodes) + [PatternNode(Opcode.ADD, (("node", 1), ("in", 3)))]
        large = Pattern(nodes, outputs=[2], num_inputs=4)
        assert large.hardware_area_kgates() > small.hardware_area_kgates()

    def test_signature_commutative_invariance(self):
        a = Pattern([PatternNode(Opcode.ADD, (("in", 0), ("in", 1)))], [0], 2)
        b = Pattern([PatternNode(Opcode.ADD, (("in", 1), ("in", 0)))], [0], 2)
        assert a.signature() == b.signature()

    def test_signature_distinguishes_structure(self):
        add = Pattern([PatternNode(Opcode.ADD, (("in", 0), ("in", 1)))], [0], 2)
        sub = Pattern([PatternNode(Opcode.SUB, (("in", 0), ("in", 1)))], [0], 2)
        assert add.signature() != sub.signature()

    def test_pattern_from_cut_round_trip(self, sad_module):
        function = sad_module.get_function("sad16")
        body = function.get_block("for.body")
        dfg = build_dataflow_graph(body)
        chain = [i for i in body.instructions
                 if i.opcode in (Opcode.SUB, Opcode.CMPLT, Opcode.NEG, Opcode.SELECT)]
        pattern, inputs, outputs = pattern_from_cut(chain, dfg)
        assert pattern.size == 4
        assert len(outputs) == 1
        # |a - b| for a=9, b=4 and a=4, b=9.
        assert pattern.evaluate([9, 4]) == 5 or pattern.evaluate([4, 9]) == 5


class TestIdentification:
    def test_cuts_respect_io_constraints(self, sad_module):
        function = sad_module.get_function("sad16")
        body = function.get_block("for.body")
        config = EnumerationConfig(max_inputs=2, max_outputs=1, max_size=6)
        dfg = build_dataflow_graph(body)
        for cut, _dfg in enumerate_block_cuts(body, config):
            non_const_inputs = [
                v for v in dfg.subgraph_inputs(cut)
                if not hasattr(v, "value") or not isinstance(getattr(v, "value", None), int)
            ]
            assert len(dfg.subgraph_outputs(cut)) <= 1
            assert len(cut) <= 6
            assert dfg.is_convex(cut)

    def test_memory_ops_never_in_candidates(self, sad_module):
        candidates = identify_candidates(sad_module, EnumerationConfig(max_outputs=1))
        for candidate in candidates:
            for node in candidate.pattern.nodes:
                assert node.opcode not in (Opcode.LOAD, Opcode.STORE, Opcode.CALL)

    def test_candidates_merged_across_occurrences(self):
        kernel = get_kernel("sad16")
        module = compile_c(kernel.source)
        optimize(module, level=3, unroll_factor=4)   # 4 copies of the abs chain
        candidates = identify_candidates(module, EnumerationConfig(max_outputs=1))
        best = max(candidates, key=lambda c: c.static_count)
        assert best.static_count >= 4

    def test_benefit_weighted_by_frequency(self, sad_module):
        candidates = identify_candidates(sad_module, EnumerationConfig(max_outputs=1))
        machine = vliw4()
        for candidate in candidates:
            assert candidate.estimated_benefit(machine) == pytest.approx(
                candidate.cycles_saved_per_use(machine) * candidate.dynamic_count
            )


class TestSelection:
    def _candidates(self):
        kernel = get_kernel("alpha_blend")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        return identify_candidates(module, EnumerationConfig(max_outputs=1)), module

    def test_area_budget_respected(self):
        candidates, _ = self._candidates()
        machine = vliw4()
        for budget in (5.0, 20.0, 60.0):
            result = select_greedy(candidates, machine,
                                   SelectionConfig(area_budget_kgates=budget))
            assert result.area_used_kgates <= budget + 1e-9

    def test_opcode_budget_respected(self):
        candidates, _ = self._candidates()
        result = select_greedy(candidates, vliw4(),
                               SelectionConfig(opcode_budget=3, area_budget_kgates=1e9))
        assert result.opcode_points_used <= 3

    def test_max_operations_respected(self):
        candidates, _ = self._candidates()
        result = select_greedy(candidates, vliw4(),
                               SelectionConfig(max_operations=2, area_budget_kgates=1e9))
        assert len(result.selected) <= 2

    def test_knapsack_at_least_as_good_as_greedy_estimate(self):
        candidates, _ = self._candidates()
        machine = vliw4()
        config_g = SelectionConfig(area_budget_kgates=25.0, algorithm="greedy")
        config_k = SelectionConfig(area_budget_kgates=25.0, algorithm="knapsack")
        greedy = select(candidates, machine, config_g)
        knapsack = select(candidates, machine, config_k)
        # Before overlap filtering both respect the budget; knapsack should
        # never be drastically worse than greedy.
        assert knapsack.area_used_kgates <= 25.0 + 1e-9
        assert greedy.area_used_kgates <= 25.0 + 1e-9

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            select([], vliw4(), SelectionConfig(algorithm="magic"))

    def test_overlap_filtering_keeps_disjoint_sites(self):
        candidates, _ = self._candidates()
        result = select_greedy(candidates, vliw4(), SelectionConfig())
        claimed = set()
        for candidate in result.selected:
            for occurrence in candidate.occurrences:
                ids = {id(inst) for inst in occurrence.instructions}
                assert not (ids & claimed)
                claimed |= ids


class TestRewriteAndCustomizer:
    def test_customize_isa_end_to_end_correct(self):
        kernel = get_kernel("viterbi_acs")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        base = vliw4()
        result = customize_isa(module, base, area_budget_kgates=40.0)
        assert result.machine.custom_ops
        assert custom_op_usage(module)
        assert_valid(module)
        # Semantics preserved through fused execution on both simulators.
        args = kernel.arguments(32)
        expected = kernel.expected(args)
        functional = FunctionalSimulator(module.clone()).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        compiled, _ = compile_module(module, result.machine)
        cycle = CycleSimulator(compiled).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        assert functional == expected
        assert cycle.value == expected

    def test_customization_reduces_cycles(self):
        kernel = get_kernel("saturated_add")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        base = vliw4()
        baseline_compiled, _ = compile_module(module.clone(), base)
        args = kernel.arguments(48)
        run_args = lambda: tuple(list(a) if isinstance(a, list) else a for a in args)
        baseline = CycleSimulator(baseline_compiled).run(kernel.entry, *run_args())

        result = customize_isa(module, base, area_budget_kgates=40.0)
        compiled, _ = compile_module(module, result.machine)
        custom = CycleSimulator(compiled).run(kernel.entry, *run_args())
        assert custom.value == baseline.value
        assert custom.cycles <= baseline.cycles

    def test_report_fields_consistent(self):
        kernel = get_kernel("rgb_to_gray")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        result = customize_isa(module, vliw4(), area_budget_kgates=30.0)
        report = result.report
        assert report.operations_selected == len(report.selected_names)
        assert report.area_added_kgates <= 30.0 + 1e-9
        assert report.base_machine == "vliw4"
        assert "custom" in report.custom_machine
        assert report.summary()

    def test_library_rewrite_applies_to_unseen_program(self):
        # Build a library from one kernel, apply it to another that contains
        # the same abs-difference idiom.
        donor = get_kernel("sad16")
        donor_module = compile_c(donor.source)
        optimize(donor_module, level=3)
        library = ExtensionLibrary()
        customizer = IsaCustomizer(vliw4(), library=library,
                                   selection_config=SelectionConfig(area_budget_kgates=60.0))
        customizer.customize(donor_module)
        assert len(library) > 0

        recipient_source = (
            "int absdiff_sum(int *a, int *b, int n) {\n"
            "    int acc = 0;\n"
            "    for (int i = 0; i < n; i++) {\n"
            "        int d = a[i] - b[i];\n"
            "        acc = acc + (d < 0 ? -d : d);\n"
            "    }\n"
            "    return acc;\n"
            "}\n"
        )
        recipient = compile_c(recipient_source)
        optimize(recipient, level=3)
        rewritten = rewrite_with_library(recipient, library,
                                         EnumerationConfig(max_outputs=1))
        assert sum(rewritten.values()) > 0
        # Register entries globally so the simulator can execute them.
        for entry in library:
            if entry.name not in global_extension_library():
                global_extension_library().register(entry.pattern, entry.operation)
        a = [5, -3, 10, 0]
        b = [2, 4, -10, 0]
        value = FunctionalSimulator(recipient).run("absdiff_sum", a, b, 4)
        assert value == sum(abs(x - y) for x, y in zip(a, b))

    def test_area_customization_shares_budget_across_kernels(self):
        mix_modules = []
        for name in ("sad16", "saturated_add"):
            kernel = get_kernel(name)
            module = compile_c(kernel.source, module_name=name)
            optimize(module, level=3)
            mix_modules.append((module, 1.0))
        customizer = IsaCustomizer(vliw4(),
                                   selection_config=SelectionConfig(area_budget_kgates=50.0))
        result = customizer.customize_for_area(mix_modules, name="vliw4+area")
        assert result.machine.name == "vliw4+area"
        assert result.report.area_added_kgates <= 50.0 + 1e-9
        # Both modules remain semantically correct after rewriting.
        for (module, _w), name in zip(mix_modules, ("sad16", "saturated_add")):
            kernel = get_kernel(name)
            args = kernel.arguments(24)
            expected = kernel.expected(args)
            value = FunctionalSimulator(module).run(
                kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
            assert value == expected
