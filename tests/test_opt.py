"""Tests for the machine-independent optimizer.

Every structural claim is double-checked behaviourally: after a pass runs,
the functional simulator must still produce the same result as the
unoptimized module.
"""

from __future__ import annotations

import pytest

from repro.frontend import compile_c
from repro.ir import Constant, Opcode, assert_valid
from repro.opt import (
    algebraic_simplify, constant_fold, copy_propagate, dead_code_elimination,
    if_convert, inline_small_functions, local_cse, optimize, simplify_cfg,
    unroll_loops,
)
from repro.sim import FunctionalSimulator


def results_match(source: str, entry: str, args, level: int = 3) -> bool:
    """Optimize at ``level`` and compare against the unoptimized result."""
    reference_module = compile_c(source)
    reference = FunctionalSimulator(reference_module).run(
        entry, *[list(a) if isinstance(a, list) else a for a in args])
    module = compile_c(source)
    optimize(module, level=level)
    assert_valid(module)
    value = FunctionalSimulator(module).run(
        entry, *[list(a) if isinstance(a, list) else a for a in args])
    return reference == value


class TestLocalPasses:
    def test_constant_fold_binary(self):
        module = compile_c("int f(void){return 3 * 7 + 2;}")
        function = module.get_function("f")
        changed = constant_fold(function)
        # After folding (plus propagation) the function should reduce to a
        # constant return; run the cleanup pipeline to check value.
        optimize(module, level=1)
        assert FunctionalSimulator(module).run("f") == 23
        assert changed >= 1

    def test_constant_fold_division_by_zero_is_left_alone(self):
        module = compile_c("int f(int x){return 10 / (x - x);}")
        function = module.get_function("f")
        constant_fold(function)
        algebraic_simplify(function)
        # The division must survive (it traps at run time, not compile time).
        assert any(i.opcode is Opcode.DIV for i in function.instructions())

    def test_algebraic_identities(self):
        module = compile_c("int f(int x){return (x + 0) * 1 + (x * 0);}")
        optimize(module, level=1)
        function = module.get_function("f")
        assert all(i.opcode is not Opcode.MUL for i in function.instructions())
        assert FunctionalSimulator(module).run("f", 9) == 9

    def test_multiply_by_power_of_two_becomes_shift(self):
        module = compile_c("int f(int x){return x * 8;}")
        function = module.get_function("f")
        algebraic_simplify(function)
        assert any(i.opcode is Opcode.SHL for i in function.instructions())
        assert FunctionalSimulator(module).run("f", 5) == 40

    def test_copy_propagation_removes_mov_chains(self):
        module = compile_c("int f(int x){int a = x; int b = a; int c = b; return c;}")
        function = module.get_function("f")
        copy_propagate(function)
        dead_code_elimination(function)
        assert FunctionalSimulator(module).run("f", 11) == 11

    def test_local_cse_reuses_subexpression(self):
        module = compile_c("int f(int a,int b){return (a*b) + (a*b);}")
        function = module.get_function("f")
        before = sum(1 for i in function.instructions() if i.opcode is Opcode.MUL)
        copy_propagate(function)
        local_cse(function)
        dead_code_elimination(function)
        after = sum(1 for i in function.instructions() if i.opcode is Opcode.MUL)
        assert before == 2 and after == 1
        assert FunctionalSimulator(module).run("f", 6, 7) == 84

    def test_cse_respects_redefinition(self):
        source = "int f(int a,int b){int x = a*b; a = a + 1; int y = a*b; return x + y;}"
        assert results_match(source, "f", (3, 4), level=1)

    def test_dead_code_elimination_keeps_side_effects(self):
        module = compile_c("int f(int *p){int unused = 5 * 6; p[0] = 1; return 0;}")
        function = module.get_function("f")
        dead_code_elimination(function)
        assert any(i.opcode is Opcode.STORE for i in function.instructions())
        data = [0]
        FunctionalSimulator(module).run("f", data)
        assert data[0] == 1


class TestCfgAndIfConversion:
    def test_simplify_cfg_merges_chains(self):
        module = compile_c("int f(int x){int y = 0; if (x > 0) {y = 1;} return y;}")
        function = module.get_function("f")
        before = len(function.blocks)
        if_convert(function)
        simplify_cfg(function)
        assert len(function.blocks) <= before
        assert FunctionalSimulator(module).run("f", 5) == 1
        assert FunctionalSimulator(module).run("f", -5) == 0

    def test_if_convert_diamond_to_select(self):
        source = "int f(int x){int y; if (x > 0) {y = x * 2;} else {y = -x;} return y;}"
        module = compile_c(source)
        function = module.get_function("f")
        converted = if_convert(function)
        assert converted == 1
        assert len(function.blocks) < 4
        assert any(i.opcode is Opcode.SELECT for i in function.instructions())
        assert FunctionalSimulator(module).run("f", 3) == 6
        assert FunctionalSimulator(module).run("f", -3) == 3

    def test_if_convert_skips_stores(self):
        source = "int f(int *p,int x){if (x > 0) {p[0] = 1;} return x;}"
        module = compile_c(source)
        function = module.get_function("f")
        assert if_convert(function) == 0

    def test_if_convert_preserves_semantics_on_kernels(self):
        from repro.workloads import get_kernel

        for name in ("saturated_add", "viterbi_acs", "alpha_blend"):
            kernel = get_kernel(name)
            args = kernel.arguments(24)
            assert results_match(kernel.source, kernel.entry, args, level=2)


class TestUnrolling:
    def test_unroll_creates_wider_block(self):
        source = "int f(int *a,int n){int s=0;for(int i=0;i<n;i++){s+=a[i];}return s;}"
        module = compile_c(source)
        function = module.get_function("f")
        changed = unroll_loops(function, factor=4)
        assert changed == 1
        biggest = max(len(b.instructions) for b in function.blocks)
        assert biggest > 20
        data = list(range(10))
        assert FunctionalSimulator(module).run("f", data, 10) == sum(data)

    def test_unroll_handles_non_multiple_trip_counts(self):
        source = "int f(int *a,int n){int s=0;for(int i=0;i<n;i++){s+=a[i]*i;}return s;}"
        module = compile_c(source)
        optimize(module, level=3, unroll_factor=4)
        for n in (0, 1, 3, 4, 5, 7, 8, 9):
            data = list(range(20))
            expected = sum(data[i] * i for i in range(n))
            assert FunctionalSimulator(module.clone()).run("f", data, n) == expected

    def test_unroll_is_not_applied_twice(self):
        source = "int f(int *a,int n){int s=0;for(int i=0;i<n;i++){s+=a[i];}return s;}"
        module = compile_c(source)
        function = module.get_function("f")
        assert unroll_loops(function, factor=2) == 1
        assert unroll_loops(function, factor=2) == 0

    def test_unroll_skips_loops_with_calls(self):
        source = (
            "int g(int x){return x + 1;}\n"
            "int f(int n){int s=0;for(int i=0;i<n;i++){s+=g(i);}return s;}"
        )
        module = compile_c(source)
        function = module.get_function("f")
        assert unroll_loops(function, factor=4) == 0


class TestInlining:
    def test_small_helper_is_inlined(self):
        source = (
            "int clamp(int x,int lo,int hi){return x < lo ? lo : (x > hi ? hi : x);}\n"
            "int f(int x){return clamp(x, 0, 255) + clamp(x * 2, 0, 255);}"
        )
        module = compile_c(source)
        inlined = inline_small_functions(module)
        assert inlined == 2
        function = module.get_function("f")
        assert all(i.opcode is not Opcode.CALL for i in function.instructions())
        assert FunctionalSimulator(module).run("f", 200) == 200 + 255

    def test_recursive_function_not_inlined(self):
        source = (
            "int fact(int n){if (n <= 1) {return 1;} return n * fact(n - 1);}\n"
            "int f(int n){return fact(n);}"
        )
        module = compile_c(source)
        inline_small_functions(module)
        assert FunctionalSimulator(module).run("f", 5) == 120


class TestFullPipeline:
    @pytest.mark.parametrize("level", [0, 1, 2, 3])
    def test_levels_preserve_semantics(self, level):
        from repro.workloads import get_kernel

        kernel = get_kernel("fir_filter")
        args = kernel.arguments(32)
        assert results_match(kernel.source, kernel.entry, args, level=level)

    def test_optimization_reduces_dynamic_instructions(self):
        from repro.workloads import get_kernel

        kernel = get_kernel("rgb_to_gray")
        args = kernel.arguments(32)
        raw = compile_c(kernel.source)
        opt = compile_c(kernel.source)
        optimize(opt, level=2)
        sim_raw = FunctionalSimulator(raw)
        sim_opt = FunctionalSimulator(opt)
        run_args = lambda: tuple(list(a) if isinstance(a, list) else a for a in args)
        assert sim_raw.run(kernel.entry, *run_args()) == sim_opt.run(kernel.entry, *run_args())
        assert (sim_opt.profile.instructions_executed
                <= sim_raw.profile.instructions_executed)

    def test_statistics_recorded(self):
        module = compile_c("int f(int x){int a = x * 1 + 0; return a;}")
        stats = optimize(module, level=2)
        assert stats.total() > 0
        assert "dead_code_elimination" in stats.changes
