"""Differential harness: the trace-based retiming model vs. the cycle simulator.

The analytic model of :mod:`repro.model` is only usable for design-space
screening if it stays locked to the ground-truth
:class:`~repro.sim.cycle.CycleSimulator`.  This harness sweeps **all
preset machines × the built-in kernel suite × a fixed-seed 25-kernel
generated population** and asserts, per cell:

* cycle estimates within the declared tolerance
  (:data:`repro.model.TRACE_CYCLE_TOLERANCE`) *and* within each
  estimate's self-reported ``error_bound_cycles``;
* **exact** agreement on code size, executed-operation counts (including
  NOP slots and spill/copy/custom breakdowns) and oracle outputs;

plus hypothesis property tests that retiming is deterministic and
monotone in issue width, serialization/caching tests for the trace
artifact, and end-to-end checks of the fidelity selector through
``Evaluator``, ``Explorer.screen_then_rescore`` and ``run_matrix``.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import Session
from repro.arch.presets import PRESETS, get_preset
from repro.dse import DesignPoint, DesignSpace
from repro.model import (
    TRACE_CYCLE_TOLERANCE, KernelTrace, RetimingModel, capture_trace,
)
from repro.sim.cycle import CycleSimulator
from repro.toolchain import run_matrix
from repro.workloads import KERNELS, get_kernel

from _shared import POPULATION_SEED

SIZE = 16
SEED = 1234

PRESET_NAMES = sorted(PRESETS)
BUILTIN_NAMES = sorted(KERNELS)


# ----------------------------------------------------------------------
# Shared sweep plumbing: one session (artifact store) for the module.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def sweep():
    """(session, retiming model) shared by the whole differential sweep."""
    session = Session(name="trace-model-tests")
    model = RetimingModel(store=session.pipeline.store)
    yield session, model
    session.close()


def _differential_cell(pipeline, model, kernel, machine, copies):
    """Run one (kernel, machine) cell both ways; return (truth, estimate)."""
    args = kernel.arguments(SIZE, seed=SEED)
    expected = kernel.expected(args)
    module, _records = pipeline.front(kernel.source, kernel.name, opt_level=2)
    compiled, report = pipeline.backend(module, machine)

    truth = CycleSimulator(compiled).run(kernel.entry, *copies(args))
    trace, _record = pipeline.trace(module, kernel.entry, args)
    estimate = model.price(compiled, machine, trace)

    # Oracle outputs: exact, three ways.
    assert trace.value == expected
    assert truth.value == expected
    assert estimate.value == expected

    # Operation counts: exact, including the per-kind breakdown.
    for field in ("operations_executed", "nop_slots", "bundles_executed",
                  "spill_ops_executed", "copy_ops_executed",
                  "custom_ops_executed", "call_overhead_cycles",
                  "branch_stall_cycles"):
        assert getattr(estimate.stats, field) == getattr(truth.stats, field), \
            f"{field} diverged on {kernel.name}@{machine.name}"

    # Code size is a backend artifact: identical object either way.
    assert report.code is not None and report.code.bytes_effective > 0

    # Cycle estimate: within the declared tolerance *and* the estimate's
    # own error bound.
    difference = abs(estimate.cycles - truth.cycles)
    assert difference <= max(TRACE_CYCLE_TOLERANCE * truth.cycles,
                             estimate.error_bound_cycles), (
        f"{kernel.name}@{machine.name}: trace {estimate.cycles} vs "
        f"cycle {truth.cycles} (bound {estimate.error_bound_cycles})")
    return truth, estimate


class TestDifferentialBuiltinSuite:
    """All presets × all built-in kernels."""

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_preset_against_cycle_simulator(self, preset, sweep, copies):
        session, model = sweep
        machine = get_preset(preset)
        for name in BUILTIN_NAMES:
            _differential_cell(session.pipeline, model, get_kernel(name),
                               machine, copies)


class TestDifferentialGeneratedPopulation:
    """All presets × the fixed-seed 25-kernel generated population."""

    @pytest.mark.parametrize("preset", PRESET_NAMES)
    def test_preset_against_cycle_simulator(self, preset, sweep,
                                            seeded_population, copies):
        session, model = sweep
        machine = get_preset(preset)
        with seeded_population:
            for name in seeded_population.names():
                _differential_cell(session.pipeline, model, get_kernel(name),
                                   machine, copies)


# ----------------------------------------------------------------------
# The trace artifact itself.
# ----------------------------------------------------------------------

class TestKernelTrace:
    def test_capture_is_deterministic_and_fingerprinted(self, kernel_module):
        kernel, module = kernel_module("dot_product")
        args = kernel.arguments(SIZE, seed=SEED)
        first = capture_trace(module, kernel.entry, args)
        second = capture_trace(module, kernel.entry, args)
        assert first.fingerprint and first.fingerprint == second.fingerprint
        assert first.to_dict() == second.to_dict()
        assert first.value == kernel.expected(args)
        assert first.memory_accesses and first.block_counts

    def test_json_round_trip(self, kernel_module):
        kernel, module = kernel_module("crc32")
        trace = capture_trace(module, kernel.entry,
                              kernel.arguments(SIZE, seed=SEED))
        rebuilt = KernelTrace.from_json(trace.to_json())
        assert rebuilt == trace
        assert rebuilt.to_json() == trace.to_json()

    def test_capture_does_not_mutate_arguments(self, kernel_module):
        kernel, module = kernel_module("fir_filter")
        args = kernel.arguments(48, seed=SEED)
        snapshot = tuple(list(a) if isinstance(a, list) else a for a in args)
        capture_trace(module, kernel.entry, args)
        assert tuple(list(a) if isinstance(a, list) else a
                     for a in args) == snapshot

    def test_trace_stage_caches_by_module_and_args(self, api_session):
        kernel = get_kernel("dot_product")
        pipeline = api_session.pipeline
        module, _ = pipeline.front(kernel.source, kernel.name, opt_level=2)
        args = kernel.arguments(SIZE, seed=SEED)
        _trace, record = pipeline.trace(module, kernel.entry, args)
        assert not record.hit
        _trace, record = pipeline.trace(module, kernel.entry, args)
        assert record.hit
        # Different arguments: a different artifact.
        other = kernel.arguments(SIZE, seed=SEED + 1)
        _trace, record = pipeline.trace(module, kernel.entry, other)
        assert not record.hit

    def test_trace_is_machine_independent(self, api_session, kernel_module):
        """One trace serves every machine: keys carry no machine axis."""
        kernel = get_kernel("histogram")
        pipeline = api_session.pipeline
        module, _ = pipeline.front(kernel.source, kernel.name, opt_level=2)
        args = kernel.arguments(SIZE, seed=SEED)
        pipeline.trace(module, kernel.entry, args)
        model = RetimingModel(store=pipeline.store)
        for preset in PRESET_NAMES:
            machine = get_preset(preset)
            compiled, _report = pipeline.backend(module, machine)
            _trace, record = pipeline.trace(module, kernel.entry, args)
            assert record.hit, f"trace rebuilt for {preset}"
            model.price(compiled, machine, _trace)


# ----------------------------------------------------------------------
# Property tests: determinism and monotonicity.
# ----------------------------------------------------------------------

class TestRetimingProperties:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=st.sampled_from(BUILTIN_NAMES),
           preset=st.sampled_from(PRESET_NAMES))
    def test_retiming_is_deterministic(self, name, preset, sweep):
        """Two independent model instances agree bit-for-bit."""
        session, _shared = sweep
        kernel = get_kernel(name)
        machine = get_preset(preset)
        pipeline = session.pipeline
        module, _ = pipeline.front(kernel.source, kernel.name, opt_level=2)
        compiled, _report = pipeline.backend(module, machine)
        trace, _record = pipeline.trace(module, kernel.entry,
                                        kernel.arguments(SIZE, seed=SEED))
        first = RetimingModel().price(compiled, machine, trace)
        second = RetimingModel().price(compiled, machine, trace)
        assert first.cycles == second.cycles
        assert first.energy_uj == second.energy_uj
        assert first.stats == second.stats
        assert first.error_bound_cycles == second.error_bound_cycles

    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(name=st.sampled_from(BUILTIN_NAMES))
    def test_retiming_is_monotone_in_issue_width(self, name, sweep):
        """Wider issue never costs cycles (same caches, compressed code)."""
        session, model = sweep
        kernel = get_kernel(name)
        pipeline = session.pipeline
        module, _ = pipeline.front(kernel.source, kernel.name, opt_level=2)
        trace, _record = pipeline.trace(module, kernel.entry,
                                        kernel.arguments(SIZE, seed=SEED))
        previous = None
        for width in (1, 2, 4, 8):
            machine = DesignPoint(issue_width=width, registers=64).to_machine()
            compiled, _report = pipeline.backend(module, machine)
            estimate = model.price(compiled, machine, trace)
            if previous is not None:
                assert estimate.cycles <= previous, (
                    f"{name}: width {width} costs {estimate.cycles} > "
                    f"{previous}")
            previous = estimate.cycles


# ----------------------------------------------------------------------
# Fidelity selector end to end.
# ----------------------------------------------------------------------

class TestFidelityWiring:
    def test_evaluator_trace_fidelity_tracks_cycle(self, api_session):
        cycle = api_session.evaluator("video", size=SIZE).evaluate(
            get_preset("vliw4"))
        trace = api_session.evaluator("video", size=SIZE,
                                      fidelity="trace").evaluate(
            get_preset("vliw4"))
        assert cycle.fidelity == "cycle" and trace.fidelity == "trace"
        assert trace.feasible == cycle.feasible
        assert trace.total_code_bytes == cycle.total_code_bytes
        assert abs(trace.weighted_cycles - cycle.weighted_cycles) <= max(
            TRACE_CYCLE_TOLERANCE * cycle.weighted_cycles, 1.0)
        assert trace.summary_row()["fidelity"] == "trace"

    def test_batch_keys_distinguish_fidelity(self, api_session):
        trace_eval = api_session.evaluator("video", size=SIZE,
                                           fidelity="trace")
        cycle_eval = trace_eval.with_fidelity("cycle")
        point = DesignPoint(issue_width=2, registers=32)
        trace_batch = api_session.batch_evaluator(trace_eval)
        cycle_batch = api_session.batch_evaluator(cycle_eval)
        assert trace_batch.point_key(point) != cycle_batch.point_key(point)
        evaluation = trace_batch.evaluate(point)
        assert evaluation.point == point      # re-scoring can map back

    def test_screen_then_rescore(self, api_session):
        space = DesignSpace(issue_widths=(1, 2, 4), register_counts=(32, 64),
                            cluster_counts=(1,), mul_unit_counts=(1,),
                            mem_unit_counts=(1,))
        evaluator = api_session.evaluator("video", size=SIZE,
                                          fidelity="trace")
        explorer = api_session.explorer(evaluator)
        result = explorer.screen_then_rescore(space)
        assert result.fidelity == "trace+rescore"
        assert result.best is not None and result.best.fidelity == "cycle"
        fidelities = {row["fidelity"] for row in result.to_rows()}
        assert "cycle" in fidelities          # frontier was re-scored
        assert result.to_dict()["fidelity"] == "trace+rescore"

        # The re-scored winner matches a pure cycle-fidelity exploration.
        reference = api_session.explorer(
            evaluator.with_fidelity("cycle")).exhaustive(space)
        assert result.best.machine.name == reference.best.machine.name
        assert result.best.weighted_cycles == reference.best.weighted_cycles

    def test_screen_then_rescore_off_frontier_objective(self, api_session):
        """perf_per_watt winners may sit off the (time, area) frontier;
        the screening best must still be re-scored at cycle fidelity."""
        space = DesignSpace(issue_widths=(1, 2, 4), register_counts=(32, 64),
                            cluster_counts=(1,), mul_unit_counts=(1,),
                            mem_unit_counts=(1,))
        evaluator = api_session.evaluator("video", size=SIZE,
                                          fidelity="trace")
        explorer = api_session.explorer(evaluator,
                                        objective="perf_per_watt")
        result = explorer.screen_then_rescore(space)
        assert result.best is not None and result.best.fidelity == "cycle"
        assert result.rescore is not None
        assert result.rescore["points"] >= 1
        assert result.rescore["batch"]["requested"] >= 1
        assert result.to_dict()["rescore"] == result.rescore

    def test_run_matrix_trace_fidelity(self, api_session):
        machines = [get_preset("vliw4"), get_preset("risc32")]
        kernels = ["dot_product", "crc32", "histogram"]
        cycle = run_matrix(machines, kernel_names=kernels, size=SIZE,
                           pipeline=api_session.pipeline)
        trace = run_matrix(machines, kernel_names=kernels, size=SIZE,
                           fidelity="trace", pipeline=api_session.pipeline)
        assert trace.fidelity == "trace" and cycle.fidelity == "cycle"
        assert trace.all_correct and cycle.all_correct
        for trace_cell, cycle_cell in zip(trace.cells, cycle.cells):
            assert trace_cell.kernel == cycle_cell.kernel
            assert trace_cell.operations == cycle_cell.operations
            assert trace_cell.code_bytes == cycle_cell.code_bytes
            assert abs(trace_cell.cycles - cycle_cell.cycles) <= max(
                TRACE_CYCLE_TOLERANCE * cycle_cell.cycles, 1.0)
        assert trace.to_dict()["fidelity"] == "trace"

    def test_session_fidelity_default(self):
        with Session(fidelity="trace") as session:
            evaluator = session.evaluator("video", size=SIZE)
            assert evaluator.fidelity == "trace"
        with pytest.raises(ValueError):
            Session(fidelity="clairvoyant")

    def test_generated_population_seed_matches_conftest(self,
                                                       seeded_population):
        assert len(seeded_population) == 25
        assert POPULATION_SEED == 20260730
        assert seeded_population.names()  # deterministic, non-empty
