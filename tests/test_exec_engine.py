"""Differential tests: the compiled engine against the interpreter oracle.

The contract of :class:`repro.exec.CompiledSimulator` is bit-for-bit
equivalence with :class:`repro.sim.FunctionalSimulator` on successful
runs: same return values, same memory write-backs, same
:class:`ExecutionProfile` counters — for every kernel of the workload
suite, with and without CUSTOM (ISA-extension) operations.  These tests
enforce that contract, plus the code cache, the batch evaluator and the
engine-selector plumbing.
"""

from __future__ import annotations

import pytest

from repro.arch import vliw4
from repro.dse import DesignPoint, DesignSpace, Evaluator, Explorer
from repro.exec import (
    BatchEvaluator, CodeCache, CompiledSimulator, global_code_cache,
    make_functional_simulator, module_fingerprint, reset_global_code_cache,
)
from repro.frontend import compile_c
from repro.ir import Opcode
from repro.opt import optimize
from repro.sim import FunctionalSimulator, SimulationError
from repro.toolchain import Toolchain
from repro.workloads import KERNELS, get_kernel, get_mix, run_kernel, validate_suite

from _shared import build_kernel_module


@pytest.fixture(autouse=True)
def _clean_code_cache():
    reset_global_code_cache()
    yield
    reset_global_code_cache()


def _run_both(module, entry, args):
    """Run interpreter and compiled engine; return both (value, args, profile)."""
    args_a = tuple(list(a) if isinstance(a, list) else a for a in args)
    args_b = tuple(list(a) if isinstance(a, list) else a for a in args)
    interp = FunctionalSimulator(module)
    compiled = CompiledSimulator(module)
    value_a = interp.run(entry, *args_a)
    value_b = compiled.run(entry, *args_b)
    return (value_a, args_a, interp.profile), (value_b, args_b, compiled.profile)


class TestDifferentialSuite:
    """Every workload kernel: identical values, write-backs and profiles."""

    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_kernel_matches_interpreter(self, name):
        kernel, module = build_kernel_module(name)
        args = kernel.arguments(None, seed=99)
        (va, aa, pa), (vb, ab, pb) = _run_both(module, kernel.entry, args)
        assert vb == va
        assert ab == aa          # memory write-backs into list arguments
        assert pb == pa          # full ExecutionProfile equality
        assert va == kernel.expected(args)

    @pytest.mark.parametrize("name", ["sad16", "viterbi_acs", "saturated_add"])
    def test_kernel_with_custom_ops_matches_interpreter(self, name):
        kernel, module = build_kernel_module(name)
        toolchain = Toolchain(vliw4())
        toolchain.customize(module, area_budget_kgates=40.0)
        assert any(inst.opcode is Opcode.CUSTOM
                   for f in module for b in f.blocks for inst in b.instructions), \
            "customization produced no CUSTOM ops; test is vacuous"
        args = kernel.arguments(None, seed=5)
        (va, aa, pa), (vb, ab, pb) = _run_both(module, kernel.entry, args)
        assert vb == va
        assert ab == aa
        assert pb == pa
        assert pa.opcode_counts.get("custom", 0) > 0

    def test_run_profiled_applies_identical_frequencies(self):
        kernel, module = build_kernel_module("dot_product")
        clone = module.clone()
        args = kernel.arguments(None, seed=3)
        FunctionalSimulator(module).run_profiled(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        CompiledSimulator(clone).run_profiled(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        for function in module.functions.values():
            twin = clone.get_function(function.name)
            for block in function.blocks:
                assert twin.get_block(block.name).frequency == block.frequency

    def test_recursive_calls_match(self):
        source = """
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}
"""
        module = compile_c(source, module_name="fib")
        optimize(module, level=2)
        (va, _aa, pa), (vb, _ab, pb) = _run_both(module, "fib", (12,))
        assert va == vb == 144
        assert pa == pb

    def test_max_steps_enforced(self):
        kernel, module = build_kernel_module("dot_product")
        args = kernel.arguments(None, seed=1)
        simulator = CompiledSimulator(module, max_steps=10)
        with pytest.raises(SimulationError):
            simulator.run(kernel.entry,
                          *[list(a) if isinstance(a, list) else a for a in args])

    def test_float_into_int_destination_truncates_like_interpreter(self):
        from repro.ir import Function, Module
        from repro.ir.instructions import move, ret
        from repro.ir.types import F32, I32
        from repro.ir.values import VirtualRegister

        module = Module("t")
        function = Function("f", return_type=I32, param_types=[F32],
                            param_names=["x"])
        module.add_function(function)
        block = function.new_block("entry")
        register = VirtualRegister(I32)
        block.append(move(register, function.arguments[0]))
        block.append(ret(register))
        assert (FunctionalSimulator(module).run("f", 3.5)
                == CompiledSimulator(module).run("f", 3.5) == 3)

    def test_division_by_zero_raises_simulation_error(self):
        module = compile_c("int f(int a) { return 100 / a; }", module_name="d")
        assert CompiledSimulator(module).run("f", 5) == 20
        with pytest.raises(SimulationError):
            CompiledSimulator(module).run("f", 0)


class TestCodeCache:
    def test_fingerprint_stable_across_clones(self):
        _kernel, module = build_kernel_module("fir_filter")
        assert module_fingerprint(module) == module_fingerprint(module.clone())

    def test_fingerprint_distinguishes_different_modules(self):
        _k1, m1 = build_kernel_module("fir_filter")
        _k2, m2 = build_kernel_module("dot_product")
        assert module_fingerprint(m1) != module_fingerprint(m2)

    def test_structurally_identical_modules_share_translation(self):
        kernel, module = build_kernel_module("dot_product")
        cache = CodeCache()
        first = CompiledSimulator(module, cache=cache)
        second = CompiledSimulator(module.clone(), cache=cache)
        assert first.program is second.program
        assert cache.stats.misses == 1 and cache.stats.hits == 1
        args = kernel.arguments(None, seed=11)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        assert first.run(kernel.entry, *run_args) == kernel.expected(args)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        assert second.run(kernel.entry, *run_args) == kernel.expected(args)

    def test_mutated_module_misses_cache(self):
        _kernel, module = build_kernel_module("dot_product")
        cache = CodeCache()
        cache.get_or_translate(module)
        clone = module.clone()
        # Mutate: renaming the entry function changes the structure.
        function = clone.functions.pop("dot_product")
        function.name = "renamed"
        clone.functions["renamed"] = function
        cache.get_or_translate(clone)
        assert cache.stats.misses == 2

    def test_lru_eviction(self):
        cache = CodeCache(capacity=1)
        _k1, m1 = build_kernel_module("dot_product")
        _k2, m2 = build_kernel_module("crc32")
        cache.get_or_translate(m1)
        cache.get_or_translate(m2)
        assert len(cache) == 1
        assert cache.stats.evictions == 1


class TestEngineSelector:
    def test_make_functional_simulator_dispatch(self):
        _kernel, module = build_kernel_module("dot_product")
        assert isinstance(make_functional_simulator(module), FunctionalSimulator)
        assert isinstance(make_functional_simulator(module, engine="compiled"),
                          CompiledSimulator)
        with pytest.raises(ValueError):
            make_functional_simulator(module, engine="quantum")

    def test_toolchain_engine_selection(self):
        kernel, module = build_kernel_module("ip_checksum")
        args = kernel.arguments(None, seed=2)
        reference = Toolchain(vliw4()).run_reference(
            module, kernel.entry,
            *[list(a) if isinstance(a, list) else a for a in args])
        compiled = Toolchain(vliw4(), engine="compiled").run_reference(
            module, kernel.entry,
            *[list(a) if isinstance(a, list) else a for a in args])
        assert reference == compiled
        with pytest.raises(ValueError):
            Toolchain(vliw4(), engine="nope")

    def test_run_kernel_and_validate_suite(self):
        interp = run_kernel("rgb_to_gray", engine="interpreter")
        compiled = run_kernel("rgb_to_gray", engine="compiled")
        assert interp.correct and compiled.correct
        assert interp.value == compiled.value
        assert interp.instructions == compiled.instructions
        results = validate_suite(["dot_product", "histogram"], engine="compiled")
        assert all(results.values())

    def test_evaluator_engine_validation(self):
        with pytest.raises(ValueError):
            Evaluator(get_mix("medical"), size=8, engine="warp")

    def test_evaluator_compiled_engine_is_consistent(self):
        mix = get_mix("medical")
        cycle = Evaluator(mix, size=12).evaluate(DesignPoint().to_machine())
        compiled = Evaluator(mix, size=12, engine="compiled").evaluate(
            DesignPoint().to_machine())
        assert cycle.feasible and compiled.feasible
        assert compiled.total_code_bytes == cycle.total_code_bytes
        # The compiled engine omits cache stalls, so its cycle count is a
        # lower bound on the cycle-accurate count — but of the same scale.
        assert 0 < compiled.weighted_cycles <= cycle.weighted_cycles
        assert compiled.weighted_cycles > 0.5 * cycle.weighted_cycles


class TestBatchEvaluator:
    @pytest.fixture(autouse=True)
    def _bind_evaluator(self, medical_evaluator):
        self._evaluator = medical_evaluator

    def test_deduplicates_and_memoizes(self):
        batch = BatchEvaluator(self._evaluator())
        point = DesignPoint(issue_width=2)
        first, second = batch.evaluate_many([point, point])
        assert first is second
        assert batch.stats.evaluated == 1
        assert batch.stats.memory_hits == 1
        batch.evaluate(point)
        assert batch.stats.evaluated == 1

    def test_disk_cache_round_trip(self, tmp_path):
        point = DesignPoint(issue_width=2)
        cold = BatchEvaluator(self._evaluator(), cache_dir=str(tmp_path))
        before = cold.evaluate(point)
        warm = BatchEvaluator(self._evaluator(), cache_dir=str(tmp_path))
        after = warm.evaluate(point)
        assert warm.stats.disk_hits == 1 and warm.stats.evaluated == 0
        assert after.summary_row() == before.summary_row()

    def test_parallel_matches_serial(self):
        points = [DesignPoint(issue_width=w) for w in (1, 2)]
        serial = BatchEvaluator(self._evaluator()).evaluate_many(points)
        parallel = BatchEvaluator(self._evaluator(),
                                  workers=2).evaluate_many(points)
        assert ([e.summary_row() for e in serial]
                == [e.summary_row() for e in parallel])

    def test_cache_key_covers_every_axis(self):
        batch = BatchEvaluator(self._evaluator())
        base = DesignPoint()
        assert (batch.point_key(base)
                != batch.point_key(DesignPoint(mem_latency=3)))
        assert (batch.point_key(base)
                != batch.point_key(DesignPoint(compressed_encoding=False)))


class TestExplorerBatching:
    def _explorer(self, **kwargs):
        evaluator = Evaluator(get_mix("medical"), size=8, engine="compiled")
        return Explorer(evaluator, **kwargs)

    def _space(self):
        return DesignSpace(issue_widths=(1, 2), register_counts=(32,),
                           cluster_counts=(1,), mul_unit_counts=(1,),
                           mem_unit_counts=(1, 2))

    def test_exhaustive_through_batch(self):
        explorer = self._explorer()
        space = self._space()
        expected_points = space.size()   # w1-ls2 is filtered out -> 3
        result = explorer.exhaustive(space)
        assert result.points_evaluated == expected_points == 3
        assert explorer.batch.stats.evaluated == expected_points
        assert result.best is not None and result.best.feasible

    def test_greedy_unique_evaluations(self):
        result = self._explorer().greedy(self._space())
        names = [e.machine.name for e in result.evaluations]
        assert len(names) == len(set(names))
        assert result.best is not None

    def test_annealing_deterministic_and_deduplicated(self):
        first = self._explorer().annealing(self._space(), iterations=8, seed=3)
        second = self._explorer().annealing(self._space(), iterations=8, seed=3)
        assert ([e.machine.name for e in first.evaluations]
                == [e.machine.name for e in second.evaluations])
        assert first.best.machine.name == second.best.machine.name
        names = [e.machine.name for e in first.evaluations]
        assert len(names) == len(set(names))
