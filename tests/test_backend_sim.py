"""Tests for the back end (regalloc, scheduler, codegen, asm) and simulators."""

from __future__ import annotations

import pytest

from repro.arch import (
    CustomOperation, MachineDescription, OperationClass, dsp_core,
    risc_baseline, vliw2, vliw4, vliw8,
)
from repro.backend import (
    SelectionError, allocate_registers, block_pressure, compile_module,
    compute_liveness, decode_word, encode_module, encode_op, render_assembly,
    schedule_block, select_instruction, validate_function,
)
from repro.frontend import compile_c
from repro.opt import optimize
from repro.sim import (
    Cache, CycleSimulator, FunctionalSimulator, Memory, MemoryError_,
    ProgramImage, SimulationError,
)
from repro.arch.machine import CacheConfig
from repro.ir import I32, Opcode
from repro.workloads import get_kernel


def compiled_kernel(name: str, machine, level: int = 2, size: int = 24):
    kernel = get_kernel(name)
    module = compile_c(kernel.source, module_name=name)
    optimize(module, level=level)
    compiled, report = compile_module(module, machine)
    args = kernel.arguments(size)
    return kernel, compiled, report, args


class TestInstructionSelection:
    def test_missing_fpu_rejected(self):
        machine = dsp_core()   # integer only
        module = compile_c("float f(float a, float b){return a * b + 1.0;}")
        problems = validate_function(module.get_function("f"), machine)
        assert problems

    def test_unknown_custom_op_rejected(self):
        from repro.ir import instructions as insts
        from repro.ir.values import VirtualRegister

        inst = insts.custom(VirtualRegister(I32), "ghost", [])
        with pytest.raises(SelectionError):
            select_instruction(inst, vliw4())

    def test_latency_comes_from_machine_table(self):
        machine = vliw4()
        machine.latency_overrides[OperationClass.IMUL] = 5
        from repro.ir import instructions as insts
        from repro.ir.values import Constant, VirtualRegister

        op = select_instruction(
            insts.binop(Opcode.MUL, VirtualRegister(I32), Constant(1), Constant(2)),
            machine,
        )
        assert op.latency == 5


class TestRegisterAllocation:
    def test_liveness_across_blocks(self):
        module = compile_c(
            "int f(int a,int b){int x = a + b; if (a > 0) {x = x * 2;} return x;}"
        )
        function = module.get_function("f")
        live_in, live_out = compute_liveness(function)
        entry = function.entry
        # x is live out of the entry block (read by later blocks).
        assert live_out[entry.name]

    def test_no_spills_with_plenty_of_registers(self, dot_module):
        function = dot_module.get_function("dot_product")
        assignment, plan = allocate_registers(function, vliw4())
        assert not plan.spilled_registers
        assert assignment.spill_loads == 0

    def test_small_register_file_forces_spills(self):
        kernel = get_kernel("dct_stage")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        machine = vliw4()
        machine.registers_per_cluster = 8
        function = module.get_function(kernel.entry)
        assignment, plan = allocate_registers(function, machine)
        assert plan.spilled_registers
        assert assignment.spill_loads > 0

    def test_pressure_positive_on_real_code(self, sad_module):
        function = sad_module.get_function("sad16")
        _live_in, live_out = compute_liveness(function)
        body = function.get_block("for.body")
        assert block_pressure(body, live_out[body.name]) >= 3


class TestScheduler:
    def test_respects_issue_width(self, sad_module):
        function = sad_module.get_function("sad16")
        body = function.get_block("for.body")
        for machine in (vliw2(), vliw4(), vliw8()):
            scheduled, _stats = schedule_block(body, machine)
            assert max(len(b.ops) for b in scheduled.bundles) <= machine.issue_width

    def test_wider_machine_schedules_fewer_cycles(self):
        kernel = get_kernel("dct_stage")
        module = compile_c(kernel.source)
        optimize(module, level=3)
        function = module.get_function(kernel.entry)
        block = max(function.blocks, key=lambda b: len(b.instructions))
        narrow, _ = schedule_block(block, vliw2())
        wide, _ = schedule_block(block, vliw8())
        assert wide.cycles < narrow.cycles

    def test_dependences_respected_by_cycle(self, dot_module):
        machine = vliw4()
        function = dot_module.get_function("dot_product")
        body = function.get_block("for.body")
        scheduled, _ = schedule_block(body, machine)
        issue = {}
        for cycle, bundle in enumerate(scheduled.bundles):
            for op in bundle.ops:
                issue[id(op.inst)] = (cycle, op)
        from repro.ir import build_dataflow_graph

        dfg = build_dataflow_graph(body, include_terminator=True)
        for producer, consumer, kind in dfg.graph.edges(data="kind"):
            if kind != "flow":
                continue
            producer_cycle, producer_op = issue[id(producer)]
            consumer_cycle, _ = issue[id(consumer)]
            assert consumer_cycle >= producer_cycle + producer_op.latency

    def test_terminator_in_last_bundle(self, dot_module):
        function = dot_module.get_function("dot_product")
        for block in function.blocks:
            scheduled, _ = schedule_block(block, vliw4())
            terminator_ops = [
                (index, op)
                for index, bundle in enumerate(scheduled.bundles)
                for op in bundle.ops if op.inst.is_terminator()
            ]
            if terminator_ops:
                index, _op = terminator_ops[-1]
                assert index == len(scheduled.bundles) - 1

    def test_cluster_assignment_inserts_copies(self):
        from repro.arch import clustered_vliw4

        kernel = get_kernel("dct_stage")
        module = compile_c(kernel.source)
        optimize(module, level=2)
        function = module.get_function(kernel.entry)
        block = max(function.blocks, key=lambda b: len(b.instructions))
        _scheduled, stats = schedule_block(block, clustered_vliw4())
        assert stats.copies_inserted >= 0  # copies counted without crashing


class TestCodegenAndAsm:
    def test_compile_report_counts(self, sad_module):
        compiled, report = compile_module(sad_module, vliw4())
        assert report.functions == len(sad_module.functions)
        assert report.schedule.bundles > 0
        assert report.code is not None and report.code.operations > 0

    def test_assembly_rendering_mentions_blocks_and_ops(self, dot_module):
        compiled, _report = compile_module(dot_module, vliw4())
        text = render_assembly(compiled)
        assert ".function dot_product" in text
        assert "for.body" in text
        assert "mul" in text

    def test_binary_encoding_round_trip_opcode(self, dot_module):
        compiled, _report = compile_module(dot_module, vliw4())
        image = encode_module(compiled)
        assert image.total_words > 0
        function = compiled.get("dot_product")
        first_op = function.blocks[0].bundles[0].ops[0]
        word = encode_op(first_op, function, [])
        decoded = decode_word(word)
        assert decoded.opcode is first_op.inst.opcode


class TestMemoryAndCaches:
    def test_memory_guard_page(self):
        memory = Memory(4096)
        with pytest.raises(MemoryError_):
            memory.load(0, I32)

    def test_memory_out_of_range(self):
        memory = Memory(256)
        with pytest.raises(MemoryError_):
            memory.store(300, 1, I32)
        with pytest.raises(MemoryError_):
            memory.allocate(10_000)

    def test_scalar_round_trip(self):
        from repro.ir import F32, I8, I16

        memory = Memory()
        address = memory.allocate(16)
        memory.store(address, -2, I16)
        assert memory.load(address, I16) == -2
        memory.store(address, 1.5, F32)
        assert memory.load(address, F32) == pytest.approx(1.5)
        memory.store(address, 200, I8)
        assert memory.load(address, I8) == -56  # wraps as signed byte

    def test_program_image_places_globals(self):
        module = compile_c("int lut[3] = {7, 8, 9};\nint f(int i){return lut[i];}")
        image = ProgramImage(module)
        address = image.address_of("lut")
        assert address >= Memory.GUARD
        assert image.memory.load(address + 4, I32) == 8

    def test_cache_hit_miss_behaviour(self):
        cache = Cache(CacheConfig(size_bytes=1024, line_bytes=32, associativity=1,
                                  miss_penalty=10))
        assert cache.access(0) == 10          # cold miss
        assert cache.access(4) == 0           # same line
        assert cache.access(4096) >= 0        # other set or conflict
        assert cache.stats.accesses == 3
        assert 0 < cache.stats.miss_rate <= 1.0

    def test_cache_lru_eviction(self):
        cache = Cache(CacheConfig(size_bytes=64, line_bytes=32, associativity=2,
                                  miss_penalty=5))
        cache.access(0)
        cache.access(64)
        cache.access(0)      # touch to make 64 the LRU victim
        cache.access(128)    # evicts 64
        assert cache.access(0) == 0
        assert cache.access(64) == 5


class TestSimulators:
    @pytest.mark.parametrize("kernel_name", ["dot_product", "saturated_add", "ip_checksum"])
    def test_functional_matches_oracle(self, kernel_name):
        kernel = get_kernel(kernel_name)
        module = compile_c(kernel.source)
        args = kernel.arguments(24)
        expected = kernel.expected(args)
        simulator = FunctionalSimulator(module)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        assert simulator.run(kernel.entry, *run_args) == expected

    def test_functional_profile_counts_blocks(self, dot_module):
        simulator = FunctionalSimulator(dot_module)
        simulator.run_profiled("dot_product", [1] * 10, [2] * 10, 10)
        function = dot_module.get_function("dot_product")
        body = next(b for b in function.blocks if "body" in b.name or "unrolled" in b.name)
        assert body.frequency >= 1

    def test_functional_detects_bad_argument_count(self, dot_module):
        simulator = FunctionalSimulator(dot_module)
        with pytest.raises(SimulationError):
            simulator.run("dot_product", 1)

    def test_division_by_zero_raises(self):
        module = compile_c("int f(int a){return 10 / a;}")
        with pytest.raises(SimulationError):
            FunctionalSimulator(module).run("f", 0)

    @pytest.mark.parametrize("machine_factory", [risc_baseline, vliw2, vliw4, vliw8])
    def test_cycle_simulator_matches_functional(self, machine_factory):
        kernel, compiled, _report, args = compiled_kernel("viterbi_acs", machine_factory())
        expected = kernel.expected(args)
        result = CycleSimulator(compiled).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        assert result.value == expected
        assert result.cycles > 0
        assert result.stats.ipc > 0

    def test_wider_machine_is_faster(self):
        kernel = get_kernel("dct_stage")
        cycles = {}
        for machine in (vliw2(), vliw8()):
            module = compile_c(kernel.source)
            optimize(module, level=3)
            compiled, _ = compile_module(module, machine)
            args = kernel.arguments(64)
            result = CycleSimulator(compiled).run(
                kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
            cycles[machine.issue_width] = result.cycles
        assert cycles[8] < cycles[2]

    def test_cache_and_energy_accounting_present(self):
        kernel, compiled, _report, args = compiled_kernel("histogram", vliw4(), size=256)
        result = CycleSimulator(compiled).run(
            kernel.entry, *[list(a) if isinstance(a, list) else a for a in args])
        assert result.dcache is not None and result.dcache.accesses > 0
        assert result.icache is not None and result.icache.accesses > 0
        assert result.energy_uj > 0
        assert result.time_us > 0

    def test_output_arrays_written_back(self):
        kernel = get_kernel("saturated_add")
        module = compile_c(kernel.source)
        optimize(module, level=2)
        compiled, _ = compile_module(module, vliw4())
        a = [40000, -40000, 10]
        b = [10000, -10000, 20]
        out = [0, 0, 0]
        CycleSimulator(compiled).run(kernel.entry, a, b, out, 3)
        assert out == [32767, -32768, 30]

    def test_call_overhead_charged(self):
        source = (
            "int helper(int x){return x * 3;}\n"
            "int f(int n){int s = 0; for (int i = 0; i < n; i++) {s += helper(i);} return s;}"
        )
        module = compile_c(source)
        optimize(module, level=0)   # keep the call
        compiled, _ = compile_module(module, vliw4())
        result = CycleSimulator(compiled).run("f", 5)
        assert result.value == sum(i * 3 for i in range(5))
        assert result.stats.call_overhead_cycles > 0
