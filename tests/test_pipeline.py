"""Tests for the staged compilation pipeline and its artifact store.

Covers the PR-2 acceptance criteria: artifact-store correctness (hits
across clones, misses on opt-level / unroll-factor / machine-axis
changes), differential identity of cached vs. fresh compiles on every
kernel, front-half sharing across a 30+-point design-space sweep
(asserted via stage statistics), the unified engine registry, and the
pass manager's per-iteration fixpoint reporting.
"""

from __future__ import annotations

import pytest

from repro.arch import vliw2, vliw4
from repro.arch.machine import CustomOperation
from repro.arch.operations import OperationClass
from repro.backend.asm import encode_module
from repro.dse import DesignPoint, DesignSpace, Evaluator
from repro.exec import (
    EVALUATION_ENGINES, FUNCTIONAL_ENGINES, BatchEvaluator, validate_engine,
)
from repro.exec.cache import module_fingerprint
from repro.opt import PassManager, optimize
from repro.opt import pipeline as opt_pipeline
from repro.pipeline import (
    ArtifactStore, CompilePipeline, machine_backend_fingerprint,
)
from repro.sim.cycle import CycleSimulator
from repro.toolchain import Toolchain
from repro.workloads import KERNELS, get_kernel, get_mix


# ----------------------------------------------------------------------
# ArtifactStore.
# ----------------------------------------------------------------------

class TestArtifactStore:
    def test_put_get_and_stats(self):
        store = ArtifactStore()
        assert store.get("s", "k") is None
        store.put("s", "k", {"x": 1}, seconds=0.5)
        artifact = store.get("s", "k")
        assert artifact is not None and artifact.payload == {"x": 1}
        stats = store.stats("s")
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
        assert stats.seconds_saved == pytest.approx(0.5)
        assert stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self):
        store = ArtifactStore(capacity=2)
        store.put("s", "a", 1)
        store.put("s", "b", 2)
        store.get("s", "a")          # refresh a
        store.put("s", "c", 3)       # evicts b
        assert store.get("s", "b") is None
        assert store.get("s", "a").payload == 1
        assert store.get("s", "c").payload == 3
        assert store.stats("s").evictions == 1

    def test_stage_namespaces_are_distinct(self):
        store = ArtifactStore()
        store.put("s1", "k", "one")
        store.put("s2", "k", "two")
        assert store.get("s1", "k").payload == "one"
        assert store.get("s2", "k").payload == "two"

    def test_disk_layer_roundtrip(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path))
        store.put("s", "k", [1, 2, 3], seconds=0.25, persist=True)
        fresh = ArtifactStore(cache_dir=str(tmp_path))
        artifact = fresh.get("s", "k", persist=True)
        assert artifact is not None and artifact.payload == [1, 2, 3]
        assert artifact.source == "disk"
        assert fresh.stats("s").disk_hits == 1
        # Promoted to memory: the next lookup is a memory hit.
        assert fresh.get("s", "k", persist=True).source == "memory"

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = ArtifactStore(cache_dir=str(tmp_path))
        store.put("s", "k", "payload", persist=True)
        path = tmp_path / "s" / "k.pkl"
        path.write_bytes(b"not a pickle")
        fresh = ArtifactStore(cache_dir=str(tmp_path))
        assert fresh.get("s", "k", persist=True) is None


# ----------------------------------------------------------------------
# Fingerprints: the machine-axis → stage dependency table.
# ----------------------------------------------------------------------

class TestBackendFingerprint:
    def test_timing_only_axes_do_not_invalidate(self):
        base = vliw4()
        fp = machine_backend_fingerprint(base)
        variant = base.clone("renamed")
        variant.clock_ns = base.clock_ns * 2
        variant.branch_penalty = base.branch_penalty + 3
        variant.icache = None
        variant.dcache = None
        variant.notes = "different provenance"
        assert machine_backend_fingerprint(variant) == fp

    @pytest.mark.parametrize("mutate", [
        lambda m: setattr(m, "issue_width", m.issue_width * 2),
        lambda m: setattr(m, "registers_per_cluster",
                          m.registers_per_cluster // 2),
        lambda m: m.latency_overrides.update({OperationClass.MEM: 9}),
        lambda m: setattr(m, "compressed_encoding",
                          not m.compressed_encoding),
        lambda m: setattr(m, "syllable_bits", 24),
        lambda m: setattr(m, "intercluster_latency",
                          m.intercluster_latency + 1),
    ])
    def test_backend_axes_invalidate(self, mutate):
        base = vliw4()
        fp = machine_backend_fingerprint(base)
        variant = base.clone()
        mutate(variant)
        assert machine_backend_fingerprint(variant) != fp

    def test_custom_op_table_invalidates(self):
        base = vliw4()
        fp = machine_backend_fingerprint(base)
        variant = base.clone()
        variant.add_custom_op(CustomOperation(
            name="madd3", num_inputs=3, num_outputs=1, latency=2,
            area_kgates=4.0))
        assert machine_backend_fingerprint(variant) != fp

    def test_custom_op_cost_axes_do_not_invalidate(self):
        base = vliw4()
        base.add_custom_op(CustomOperation(
            name="madd3", num_inputs=3, num_outputs=1, latency=2,
            area_kgates=4.0, fused_ops=3))
        fp = machine_backend_fingerprint(base)
        variant = base.clone()
        variant.custom_ops["madd3"].area_kgates = 99.0
        variant.custom_ops["madd3"].fused_ops = 7
        assert machine_backend_fingerprint(variant) == fp


# ----------------------------------------------------------------------
# CompilePipeline caching semantics.
# ----------------------------------------------------------------------

def _kernel_source(name="dot_product"):
    kernel = get_kernel(name)
    return kernel, kernel.source


class TestCompilePipelineCaching:
    def test_hit_across_module_clones(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        module, _ = pipeline.front(source, kernel.name)
        pipeline.backend(module, vliw4())
        assert pipeline.store.stats("backend").misses == 1
        pipeline.backend(module.clone(), vliw4())
        assert pipeline.store.stats("backend").hits == 1
        assert pipeline.store.stats("backend").misses == 1

    def test_front_half_cached_by_source(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        m1, records1 = pipeline.front(source, kernel.name)
        m2, records2 = pipeline.front(source, kernel.name)
        assert [r.hit for r in records1] == [False, False]
        assert [r.hit for r in records2] == [True]
        assert module_fingerprint(m1) == module_fingerprint(m2)
        assert m1 is not m2  # caller-safe clones

    def test_miss_on_opt_level_change(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        pipeline.front(source, kernel.name, opt_level=2)
        pipeline.front(source, kernel.name, opt_level=3)
        stats = pipeline.store.stats("optimize")
        assert stats.misses == 2 and stats.hits == 0
        # The raw frontend output is shared between opt configurations.
        assert pipeline.store.stats("frontend").hits == 1

    def test_miss_on_unroll_factor_change(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        pipeline.front(source, kernel.name, opt_level=3, unroll_factor=2)
        pipeline.front(source, kernel.name, opt_level=3, unroll_factor=4)
        stats = pipeline.store.stats("optimize")
        assert stats.misses == 2 and stats.hits == 0

    def test_miss_on_machine_axis_change(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        module, _ = pipeline.front(source, kernel.name)
        pipeline.backend(module, vliw4())
        pipeline.backend(module, vliw2())
        narrow_regs = vliw4()
        narrow_regs.registers_per_cluster = 16
        pipeline.backend(module, narrow_regs)
        stats = pipeline.store.stats("backend")
        assert stats.misses == 3 and stats.hits == 0

    def test_mutating_returned_module_does_not_poison_cache(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        module, _ = pipeline.front(source, kernel.name)
        fp = module_fingerprint(module)
        # Rewrite the caller's module after the backend cached it.
        pipeline.backend(module, vliw4())
        function = next(iter(module.functions.values()))
        function.blocks[0].instructions[0].annotations["mut"] = True
        del module.functions[function.name]
        # A clean clone still hits and executes correctly.
        fresh, _ = pipeline.front(source, kernel.name)
        assert module_fingerprint(fresh) == fp
        compiled, _report = pipeline.backend(fresh, vliw4())
        assert pipeline.store.stats("backend").hits == 1
        args = kernel.arguments(None, seed=7)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        result = CycleSimulator(compiled).run(kernel.entry, *run_args)
        assert result.value == kernel.expected(args)

    def test_rebind_across_timing_only_machines(self):
        kernel, source = _kernel_source()
        pipeline = CompilePipeline()
        module, _ = pipeline.front(source, kernel.name)
        base = vliw4()
        compiled_a, report_a = pipeline.backend(module, base)
        fast = base.clone("fast-clock")
        fast.clock_ns = base.clock_ns / 2
        fast.branch_penalty = base.branch_penalty + 1
        compiled_b, report_b = pipeline.backend(module, fast)
        # Timing-only variation: scheduled code is reused wholesale ...
        stats = pipeline.store.stats("backend")
        assert stats.hits == 1 and stats.misses == 1
        assert compiled_b.machine is fast
        assert report_b.machine == "fast-clock"
        # ... and the simulators read timing from the rebound machine.
        args = kernel.arguments(None, seed=3)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        result_a = CycleSimulator(compiled_a).run(kernel.entry, *run_args)
        result_b = CycleSimulator(compiled_b).run(kernel.entry, *run_args)
        assert result_a.value == result_b.value == kernel.expected(args)
        assert result_b.cycles > result_a.cycles  # extra branch penalty
        assert result_b.clock_ns == fast.clock_ns
        # Identical binaries modulo the machine name.
        image_a = encode_module(compiled_a)
        image_b = encode_module(compiled_b)
        assert image_a.words == image_b.words
        assert image_b.machine_name == "fast-clock"

    def test_encode_stage_serves_binary(self):
        kernel, source = _kernel_source()
        toolchain = Toolchain(vliw4(), pipeline=CompilePipeline())
        a1 = toolchain.build(source, kernel.name)
        a2 = toolchain.build(source, kernel.name)
        b1, b2 = a1.binary, a2.binary
        assert b1.words == b2.words
        stats = toolchain.pipeline.store.stats("encode")
        assert stats.misses == 1 and stats.hits == 1

    def test_binary_reencodes_after_compiled_mutation(self):
        kernel, source = _kernel_source()
        toolchain = Toolchain(vliw4(), pipeline=CompilePipeline())
        artifacts = toolchain.build(source, kernel.name)
        baseline = artifacts.binary
        dropped = next(iter(artifacts.compiled.functions))
        del artifacts.compiled.functions[dropped]
        image = artifacts.binary           # cached image no longer matches
        assert dropped in baseline.words
        assert dropped not in image.words

    def test_report_surfaces_stage_records(self):
        kernel, source = _kernel_source()
        toolchain = Toolchain(vliw4(), pipeline=CompilePipeline())
        report = toolchain.build(source, kernel.name).report
        assert [r.stage for r in report.stages] == [
            "frontend", "optimize", "backend"]
        assert all(not r.hit for r in report.stages)
        assert all(r.seconds >= 0.0 for r in report.stages)
        warm = toolchain.build(source, kernel.name).report
        assert [(r.stage, r.hit) for r in warm.stages] == [
            ("optimize", True), ("backend", True)]


# ----------------------------------------------------------------------
# Differential identity: cached vs. fresh compiles, every kernel.
# ----------------------------------------------------------------------

class TestDifferentialIdentity:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_cached_equals_fresh(self, name):
        kernel = get_kernel(name)
        machine = vliw4()
        shared = CompilePipeline()
        # Cold build, then a fully cached build on the same pipeline.
        _, cold, cold_report, _ = shared.build(
            kernel.source, machine, name=kernel.name, opt_level=2)
        _, warm, warm_report, _ = shared.build(
            kernel.source, machine, name=kernel.name, opt_level=2)
        assert all(r.hit for r in warm_report.stages)
        # And a from-scratch compile on a private pipeline.
        _, fresh, fresh_report, _ = CompilePipeline().build(
            kernel.source, machine, name=kernel.name, opt_level=2)

        images = [encode_module(c) for c in (cold, warm, fresh)]
        assert images[0].words == images[1].words == images[2].words
        assert (images[0].bundle_table == images[1].bundle_table
                == images[2].bundle_table)
        for report in (warm_report, fresh_report):
            assert report.functions == cold_report.functions
            assert report.spilled_registers == cold_report.spilled_registers
            assert report.schedule.bundles == cold_report.schedule.bundles
            assert report.code.bytes_effective == cold_report.code.bytes_effective

    @pytest.mark.parametrize("name", ["dot_product", "sad16", "crc32"])
    def test_cached_simulation_matches_fresh(self, name):
        kernel = get_kernel(name)
        machine = vliw4()
        shared = CompilePipeline()
        shared.build(kernel.source, machine, name=kernel.name)
        _, warm, _, _ = shared.build(kernel.source, machine, name=kernel.name)
        _, fresh, _, _ = CompilePipeline().build(
            kernel.source, machine, name=kernel.name)
        args = kernel.arguments(None, seed=11)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        warm_result = CycleSimulator(warm).run(kernel.entry, *run_args)
        args = kernel.arguments(None, seed=11)
        run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
        fresh_result = CycleSimulator(fresh).run(kernel.entry, *run_args)
        assert warm_result.value == fresh_result.value == kernel.expected(args)
        assert warm_result.cycles == fresh_result.cycles
        assert warm_result.stats.operations_executed == \
            fresh_result.stats.operations_executed


# ----------------------------------------------------------------------
# DSE sweep: front half exactly once per kernel.
# ----------------------------------------------------------------------

class TestSweepSharing:
    def test_sweep_compiles_front_half_once_per_kernel(self):
        space = DesignSpace(
            issue_widths=(4,),
            register_counts=(32, 64),
            cluster_counts=(1,),
            mul_unit_counts=(1,),
            mem_unit_counts=(1,),
            mul_latencies=(1, 2, 3, 4),
            mem_latencies=(2, 3),
            compression_options=(True, False),
        )
        points = list(space.points())
        assert len(points) >= 30
        mix = get_mix("medical")
        n_kernels = len(mix.names())
        pipeline = CompilePipeline()
        evaluator = Evaluator(mix, size=8, engine="compiled",
                              pipeline=pipeline)
        for point in points:
            evaluation = evaluator.evaluate(point.to_machine())
            assert evaluation.feasible
        # Frontend + optimize ran exactly once per kernel over the whole
        # 32-point sweep; every (kernel, point) pair hit the backend.
        assert pipeline.store.stats("frontend").misses == n_kernels
        assert pipeline.store.stats("frontend").hits == 0
        assert pipeline.store.stats("optimize").misses == n_kernels
        assert pipeline.store.stats("optimize").hits == 0
        backend = pipeline.store.stats("backend")
        assert backend.misses == len(points) * n_kernels
        assert backend.hits == 0
        # A second sweep over the same space is compile-free.
        warm = Evaluator(mix, size=8, engine="compiled", pipeline=pipeline)
        for point in points[:5]:
            warm.evaluate(point.to_machine())
        assert pipeline.store.stats("optimize").hits == n_kernels
        assert pipeline.store.stats("backend").hits == 5 * n_kernels
        assert backend.misses == len(points) * n_kernels

    def test_evaluations_identical_with_and_without_shared_pipeline(self):
        mix = get_mix("network")
        point = DesignPoint(issue_width=2, registers=32)
        shared = CompilePipeline()
        evaluator = Evaluator(mix, size=8, pipeline=shared)
        first = evaluator.evaluate(point.to_machine())
        second = evaluator.evaluate(point.to_machine())
        isolated = Evaluator(mix, size=8,
                             pipeline=CompilePipeline()).evaluate(
                                 point.to_machine())
        for other in (second, isolated):
            assert other.weighted_cycles == first.weighted_cycles
            assert other.weighted_energy_uj == first.weighted_energy_uj
            assert other.total_code_bytes == first.total_code_bytes


# ----------------------------------------------------------------------
# Engine registry (unified validation).
# ----------------------------------------------------------------------

class TestEngineRegistry:
    def test_registry_contents(self):
        assert "interpreter" in FUNCTIONAL_ENGINES
        assert "cycle" in EVALUATION_ENGINES
        assert validate_engine("compiled") == "compiled"
        assert validate_engine("cycle", "evaluation") == "cycle"

    def test_unknown_engine_raises(self):
        with pytest.raises(ValueError, match="unknown engine"):
            validate_engine("quantum")
        with pytest.raises(ValueError, match="unknown engine"):
            validate_engine("interpreter", "evaluation")
        with pytest.raises(KeyError):
            validate_engine("cycle", "nonsense")

    def test_toolchain_and_evaluator_share_validation(self):
        with pytest.raises(ValueError, match="unknown engine"):
            Toolchain(vliw4(), engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            Evaluator(get_mix("medical"), size=8, engine="warp")


# ----------------------------------------------------------------------
# BatchEvaluator on the shared artifact store.
# ----------------------------------------------------------------------

class TestBatchEvaluatorStore:
    @pytest.fixture(autouse=True)
    def _bind_evaluator(self, medical_evaluator):
        self._evaluator = lambda: medical_evaluator(pipeline=CompilePipeline())

    def test_two_batches_share_a_store(self):
        store = ArtifactStore(capacity=None)
        point = DesignPoint(issue_width=2)
        first = BatchEvaluator(self._evaluator(), store=store)
        first.evaluate(point)
        assert first.stats.evaluated == 1
        second = BatchEvaluator(self._evaluator(), store=store)
        second.evaluate(point)
        assert second.stats.evaluated == 0
        assert second.stats.memory_hits == 1

    def test_disk_layer_still_works(self, tmp_path):
        point = DesignPoint(issue_width=2)
        cold = BatchEvaluator(self._evaluator(), cache_dir=str(tmp_path))
        cold.evaluate(point)
        warm = BatchEvaluator(self._evaluator(), cache_dir=str(tmp_path))
        result = warm.evaluate(point)
        assert warm.stats.disk_hits == 1 and warm.stats.evaluated == 0
        assert result.weighted_cycles > 0


# ----------------------------------------------------------------------
# PassManager fixpoint reporting.
# ----------------------------------------------------------------------

class TestFixpointReporting:
    def test_per_iteration_counts_recorded(self):
        kernel = get_kernel("fir_filter")
        pipeline = CompilePipeline()
        module, _ = pipeline.frontend(kernel.source, kernel.name)
        stats = optimize(module, level=2)
        assert stats.fixpoint_runs, "optimize() must record fixpoint runs"
        labels = [run.label for run in stats.fixpoint_runs]
        assert labels == ["initial", "post-inline", "post-if-convert"]
        for run in stats.fixpoint_runs:
            assert run.converged
            assert run.iterations[-1] == 0          # the proving iteration
            assert all(n >= 0 for n in run.iterations)
        # Per-iteration counts must sum to the aggregate counters' total
        # for the cleanup passes.
        cleanup_names = {name for name, _fn in opt_pipeline.CLEANUP_PASSES}
        cleanup_total = sum(count for name, count in stats.changes.items()
                            if name in cleanup_names)
        assert sum(run.total_changes
                   for run in stats.fixpoint_runs) == cleanup_total
        assert stats.cap_hits == []

    def test_cap_hit_warns_and_reports(self, monkeypatch):
        def always_changes(function):
            return 1

        monkeypatch.setattr(opt_pipeline, "CLEANUP_PASSES",
                            (("always_changes", always_changes),))
        kernel = get_kernel("dot_product")
        pipeline = CompilePipeline()
        module, _ = pipeline.frontend(kernel.source, kernel.name)
        manager = PassManager(verify=False)
        with pytest.warns(RuntimeWarning, match="iteration cap"):
            run = manager.run_to_fixpoint("test", module, max_iterations=3)
        assert not run.converged
        assert run.iterations == [1, 1, 1]
        assert manager.stats.cap_hits == [run]
