"""Mass-customized toolchain: the one-call facade and the N×M test matrix."""

from .driver import BuildArtifacts, Toolchain
from .matrix import MatrixCell, MatrixReport, run_matrix

__all__ = ["BuildArtifacts", "Toolchain", "MatrixCell", "MatrixReport", "run_matrix"]
