"""The N×M validation matrix (architectures × programs).

Section 3.1 item 2: "Testing methodology uses architectures as if they
were test programs (thus NxM tests)".  Every kernel is compiled for every
machine in the list, run on the cycle simulator, and checked against both
the kernel's pure-Python oracle and the machine-independent functional
simulation.  The matrix is simultaneously the toolchain's regression
suite and the raw data for experiment E5.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..arch.machine import MachineDescription
from ..exec.registry import validate_engine
from ..sim.cycle import CycleSimulator
from ..workloads.kernels import KERNELS, Kernel, copy_run_args, get_kernel

#: version of MatrixReport's exported dict/JSON form.
REPORT_SCHEMA_VERSION = 1


@dataclass
class MatrixCell:
    """The result of one (machine, kernel) combination."""

    machine: str
    kernel: str
    correct: bool
    cycles: int = 0
    operations: int = 0
    ipc: float = 0.0
    code_bytes: int = 0
    error: Optional[str] = None


@dataclass
class MatrixReport:
    """All cells of one N×M run plus summary helpers."""

    cells: List[MatrixCell] = field(default_factory=list)
    #: functional cross-check engine the run used.
    engine: str = "interpreter"
    #: timing-model fidelity: "cycle" (simulated) or "trace" (retimed).
    fidelity: str = "cycle"

    def cell(self, machine: str, kernel: str) -> MatrixCell:
        for cell in self.cells:
            if cell.machine == machine and cell.kernel == kernel:
                return cell
        raise KeyError(f"no cell for ({machine}, {kernel})")

    @property
    def machines(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.machine not in seen:
                seen.append(cell.machine)
        return seen

    @property
    def kernels(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.kernel not in seen:
                seen.append(cell.kernel)
        return seen

    @property
    def all_correct(self) -> bool:
        return all(cell.correct for cell in self.cells)

    @property
    def failures(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if not cell.correct]

    def pass_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(cell.correct for cell in self.cells) / len(self.cells)

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for printing as the E5 table."""
        return [
            {
                "machine": cell.machine,
                "kernel": cell.kernel,
                "ok": "pass" if cell.correct else "FAIL",
                "cycles": cell.cycles,
                "ipc": round(cell.ipc, 2),
                "code_bytes": cell.code_bytes,
            }
            for cell in self.cells
        ]

    def to_dict(self) -> Dict[str, object]:
        """Schema-versioned, JSON-representable form of the whole run."""
        return {
            "kind": "matrix_report",
            "schema_version": REPORT_SCHEMA_VERSION,
            "engine": self.engine,
            "fidelity": self.fidelity,
            "machines": self.machines,
            "kernels": self.kernels,
            "cells": len(self.cells),
            "pass_rate": round(self.pass_rate(), 4),
            "all_correct": self.all_correct,
            "rows": self.to_rows(),
            "failures": [
                {"machine": cell.machine, "kernel": cell.kernel,
                 "error": cell.error}
                for cell in self.failures
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def run_matrix(machines: Sequence[MachineDescription],
               kernel_names: Optional[Iterable[str]] = None,
               size: Optional[int] = None,
               opt_level: int = 2,
               seed: int = 1234,
               engine: str = "interpreter",
               fidelity: str = "cycle",
               pipeline=None) -> MatrixReport:
    """Compile and validate every kernel on every machine.

    ``engine`` selects the functional cross-check engine through the
    unified registry ("interpreter", "compiled" or "native"); ``pipeline``
    injects a staged compile pipeline (the default session's when None),
    so a matrix sweep shares artifacts — including native ``.so``s — with
    whatever warmed the session.

    ``fidelity`` selects the timing model: ``"cycle"`` executes every
    cell on the cycle simulator; ``"trace"`` profiles each kernel once
    (the pipeline's machine-independent trace stage — the profiled run
    doubles as the functional oracle check) and prices every machine
    analytically with the :class:`repro.model.RetimingModel`.

    Correctness semantics differ by fidelity: at ``"cycle"`` each cell's
    ``correct`` certifies the *scheduled code executed on that machine*
    against the oracle; at ``"trace"`` nothing machine-specific executes,
    so ``correct`` certifies only the machine-independent kernel
    semantics (once per kernel) — it cannot catch a per-machine
    miscompile.  Use trace fidelity to screen timing, cycle fidelity to
    validate the toolchain (the differential harness in
    ``tests/test_trace_model.py`` keeps the two locked together).
    """
    validate_engine(engine, "functional")
    validate_engine(fidelity, "fidelity")
    from ..exec.engine import make_functional_simulator

    names = sorted(kernel_names) if kernel_names is not None else sorted(KERNELS)
    if fidelity == "trace":
        # The one profiled run is the only functional execution, and it
        # always uses the threaded-code engine; record what actually ran
        # rather than a cross-check engine that never did.
        engine = "compiled"
    report = MatrixReport(engine=engine, fidelity=fidelity)
    if pipeline is None:
        from ..api.session import default_pipeline

        pipeline = default_pipeline()
    retimer = None
    if fidelity == "trace":
        from ..model.retime import RetimingModel

        retimer = RetimingModel(store=pipeline.store)

    for machine in machines:
        for name in names:
            kernel = get_kernel(name)
            args = kernel.arguments(size, seed=seed)
            expected = kernel.expected(args)
            cell = MatrixCell(machine=machine.name, kernel=name, correct=False)
            try:
                module, _records = pipeline.front(kernel.source, kernel.name,
                                                  opt_level=opt_level)
                compiled, compile_report = pipeline.backend(module, machine)

                if fidelity == "trace":
                    # Profile-once path: the trace's recorded value *is*
                    # the functional-simulation output (the threaded-code
                    # engine is bit-identical to the interpreter), and
                    # timing is retimed from the static schedule.
                    trace, _record = pipeline.trace(module, kernel.entry,
                                                    args)
                    estimate = retimer.price(compiled, machine, trace)
                    ref_value = run_value = trace.value
                    cell.cycles = estimate.cycles
                    cell.operations = estimate.stats.operations_executed
                    cell.ipc = estimate.stats.ipc
                else:
                    # Cross-check 1: functional simulation vs. the oracle.
                    reference = make_functional_simulator(
                        module.clone(), engine=engine, store=pipeline.store)
                    ref_value = reference.run(kernel.entry,
                                              *copy_run_args(args))

                    # Cross-check 2: scheduled code on the cycle simulator.
                    simulator = CycleSimulator(compiled)
                    result = simulator.run(kernel.entry, *copy_run_args(args))
                    run_value = result.value
                    cell.cycles = result.cycles
                    cell.operations = result.stats.operations_executed
                    cell.ipc = result.stats.ipc

                if compile_report.code is not None:
                    cell.code_bytes = compile_report.code.bytes_effective
                cell.correct = (run_value == expected and ref_value == expected)
                if not cell.correct:
                    cell.error = (
                        f"expected {expected}, functional {ref_value}, "
                        f"{fidelity}-level {run_value}"
                    )
            except Exception as exc:  # noqa: BLE001 - matrix reports, never raises
                cell.error = f"{type(exc).__name__}: {exc}"
            report.cells.append(cell)
    return report
