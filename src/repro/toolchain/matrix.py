"""The N×M validation matrix (architectures × programs).

Section 3.1 item 2: "Testing methodology uses architectures as if they
were test programs (thus NxM tests)".  Every kernel is compiled for every
machine in the list, run on the cycle simulator, and checked against both
the kernel's pure-Python oracle and the machine-independent functional
simulation.  The matrix is simultaneously the toolchain's regression
suite and the raw data for experiment E5.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..arch.machine import MachineDescription
from ..exec.registry import validate_engine
from ..sim.cycle import CycleSimulator
from ..workloads.kernels import KERNELS, Kernel, get_kernel

#: version of MatrixReport's exported dict/JSON form.
REPORT_SCHEMA_VERSION = 1


@dataclass
class MatrixCell:
    """The result of one (machine, kernel) combination."""

    machine: str
    kernel: str
    correct: bool
    cycles: int = 0
    operations: int = 0
    ipc: float = 0.0
    code_bytes: int = 0
    error: Optional[str] = None


@dataclass
class MatrixReport:
    """All cells of one N×M run plus summary helpers."""

    cells: List[MatrixCell] = field(default_factory=list)
    #: functional cross-check engine the run used.
    engine: str = "interpreter"

    def cell(self, machine: str, kernel: str) -> MatrixCell:
        for cell in self.cells:
            if cell.machine == machine and cell.kernel == kernel:
                return cell
        raise KeyError(f"no cell for ({machine}, {kernel})")

    @property
    def machines(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.machine not in seen:
                seen.append(cell.machine)
        return seen

    @property
    def kernels(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.kernel not in seen:
                seen.append(cell.kernel)
        return seen

    @property
    def all_correct(self) -> bool:
        return all(cell.correct for cell in self.cells)

    @property
    def failures(self) -> List[MatrixCell]:
        return [cell for cell in self.cells if not cell.correct]

    def pass_rate(self) -> float:
        if not self.cells:
            return 0.0
        return sum(cell.correct for cell in self.cells) / len(self.cells)

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for printing as the E5 table."""
        return [
            {
                "machine": cell.machine,
                "kernel": cell.kernel,
                "ok": "pass" if cell.correct else "FAIL",
                "cycles": cell.cycles,
                "ipc": round(cell.ipc, 2),
                "code_bytes": cell.code_bytes,
            }
            for cell in self.cells
        ]

    def to_dict(self) -> Dict[str, object]:
        """Schema-versioned, JSON-representable form of the whole run."""
        return {
            "kind": "matrix_report",
            "schema_version": REPORT_SCHEMA_VERSION,
            "engine": self.engine,
            "machines": self.machines,
            "kernels": self.kernels,
            "cells": len(self.cells),
            "pass_rate": round(self.pass_rate(), 4),
            "all_correct": self.all_correct,
            "rows": self.to_rows(),
            "failures": [
                {"machine": cell.machine, "kernel": cell.kernel,
                 "error": cell.error}
                for cell in self.failures
            ],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


def run_matrix(machines: Sequence[MachineDescription],
               kernel_names: Optional[Iterable[str]] = None,
               size: Optional[int] = None,
               opt_level: int = 2,
               seed: int = 1234,
               engine: str = "interpreter",
               pipeline=None) -> MatrixReport:
    """Compile and validate every kernel on every machine.

    ``engine`` selects the functional cross-check engine through the
    unified registry ("interpreter" or "compiled"); ``pipeline`` injects
    a staged compile pipeline (the default session's when None), so a
    matrix sweep shares artifacts with whatever warmed the session.
    """
    validate_engine(engine, "functional")
    from ..exec.engine import make_functional_simulator

    names = sorted(kernel_names) if kernel_names is not None else sorted(KERNELS)
    report = MatrixReport(engine=engine)
    if pipeline is None:
        from ..api.session import default_pipeline

        pipeline = default_pipeline()

    for machine in machines:
        for name in names:
            kernel = get_kernel(name)
            args = kernel.arguments(size, seed=seed)
            expected = kernel.expected(args)
            cell = MatrixCell(machine=machine.name, kernel=name, correct=False)
            try:
                module, _records = pipeline.front(kernel.source, kernel.name,
                                                  opt_level=opt_level)

                # Cross-check 1: functional simulation vs. the Python oracle.
                reference = make_functional_simulator(module.clone(),
                                                      engine=engine)
                ref_args = tuple(list(a) if isinstance(a, list) else a for a in args)
                ref_value = reference.run(kernel.entry, *ref_args)

                # Cross-check 2: scheduled code on the cycle simulator.
                compiled, compile_report = pipeline.backend(module, machine)
                simulator = CycleSimulator(compiled)
                run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
                result = simulator.run(kernel.entry, *run_args)

                cell.cycles = result.cycles
                cell.operations = result.stats.operations_executed
                cell.ipc = result.stats.ipc
                if compile_report.code is not None:
                    cell.code_bytes = compile_report.code.bytes_effective
                cell.correct = (result.value == expected and ref_value == expected)
                if not cell.correct:
                    cell.error = (
                        f"expected {expected}, functional {ref_value}, "
                        f"cycle-level {result.value}"
                    )
            except Exception as exc:  # noqa: BLE001 - matrix reports, never raises
                cell.error = f"{type(exc).__name__}: {exc}"
            report.cells.append(cell)
    return report
