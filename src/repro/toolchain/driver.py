"""The mass-customized toolchain facade.

:class:`Toolchain` is the one object a product team interacts with: it is
constructed from an architecture description table, and from then on
"software development is relative to the toolchain, not the hardware"
(§3.1) — the same ``compile``/``run``/``customize`` calls work for every
member of the architecture family, and deriving a new family member is a
table edit, not a new toolchain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.area import AreaReport, estimate_area
from ..arch.encoding import CodeSizeReport
from ..arch.machine import MachineDescription
from ..backend.codegen import CompileReport
from ..backend.mcode import CompiledModule
from ..backend.asm import BinaryImage, encode_module, render_assembly
from ..core.customizer import CustomizationResult, IsaCustomizer
from ..core.identification import EnumerationConfig
from ..core.library import ExtensionLibrary, global_extension_library
from ..core.selection import SelectionConfig
from ..exec.registry import validate_engine
from ..ir import Module
from ..pipeline import CompilePipeline
from ..sim.cycle import CycleSimulator, SimulationResult
from ..sim.functional import FunctionalSimulator


@dataclass
class BuildArtifacts:
    """Everything produced by one compile-for-machine invocation."""

    module: Module
    compiled: CompiledModule
    report: CompileReport
    machine: MachineDescription
    #: the pipeline that produced this build and its backend content key;
    #: set by :meth:`Toolchain.build` so derived artifacts (the binary
    #: encoding) are served from the same artifact store.
    pipeline: Optional[CompilePipeline] = None
    backend_key: Optional[str] = None

    @property
    def assembly(self) -> str:
        return render_assembly(self.compiled)

    @property
    def binary(self) -> BinaryImage:
        if self.pipeline is not None and self.backend_key is not None:
            image = self.pipeline.encode(self.compiled, self.backend_key)
            if self._image_matches(image):
                return image
        # ``compiled`` was restructured after the build (functions added,
        # dropped or rescheduled): encode the live object instead of the
        # cached image.
        return encode_module(self.compiled)

    def _image_matches(self, image: BinaryImage) -> bool:
        """Cheap structural check that a cached image still describes
        ``compiled`` (same functions, same bundle counts)."""
        if set(image.words) != set(self.compiled.functions):
            return False
        for function in self.compiled:
            bundles = sum(len(block.bundles) for block in function.blocks)
            if len(image.bundle_table.get(function.name, ())) != bundles:
                return False
        return True

    @property
    def area(self) -> AreaReport:
        return estimate_area(self.machine)

    @property
    def code_size(self) -> Optional[CodeSizeReport]:
        return self.report.code


class Toolchain:
    """A complete compiler + simulator stack for one machine description."""

    def __init__(self, machine: MachineDescription, opt_level: int = 2,
                 unroll_factor: int = 4,
                 library: Optional[ExtensionLibrary] = None,
                 engine: str = "interpreter",
                 pipeline: Optional[CompilePipeline] = None) -> None:
        validate_engine(engine, "functional")
        self.machine = machine
        self.opt_level = opt_level
        self.unroll_factor = unroll_factor
        self.library = library if library is not None else global_extension_library()
        #: functional-execution engine used by run_reference:
        #: "interpreter" (reference oracle), "compiled" (threaded code)
        #: or "native" (generated C, degrading to compiled without a CC).
        self.engine = engine
        #: staged compile pipeline; the default service session's by
        #: default, so toolchains for different family members share the
        #: machine-independent half of every compile.
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            from ..api.session import default_pipeline

            self.pipeline = default_pipeline()

    # ------------------------------------------------------------------
    # Front end + optimizer.
    # ------------------------------------------------------------------
    def frontend(self, source: str, name: str = "module") -> Module:
        """Compile C source to optimized IR (no machine dependence yet)."""
        module, _records = self.pipeline.front(
            source, name, opt_level=self.opt_level,
            unroll_factor=self.unroll_factor)
        return module

    # ------------------------------------------------------------------
    # Machine-dependent back end.
    # ------------------------------------------------------------------
    def build(self, module_or_source, name: str = "module") -> BuildArtifacts:
        """Compile IR (or C source) for this toolchain's machine.

        Every stage is served from the pipeline's content-addressed
        artifact store when its inputs are unchanged;
        ``report.stages`` records what was reused vs. rebuilt.
        """
        module, compiled, report, backend_key = self.pipeline.build(
            module_or_source, self.machine, name=name,
            opt_level=self.opt_level, unroll_factor=self.unroll_factor)
        return BuildArtifacts(module=module, compiled=compiled, report=report,
                              machine=self.machine, pipeline=self.pipeline,
                              backend_key=backend_key)

    # ------------------------------------------------------------------
    # Simulation.
    # ------------------------------------------------------------------
    def run(self, artifacts: BuildArtifacts, entry: str, *args) -> SimulationResult:
        """Cycle-accurately simulate a built program."""
        simulator = CycleSimulator(artifacts.compiled)
        return simulator.run(entry, *args)

    def run_reference(self, module: Module, entry: str, *args):
        """Run the functional simulator (machine independent).

        Uses this toolchain's ``engine`` selection: the interpreter, the
        compiled (threaded-code) engine or the generated-C native engine —
        all produce identical results.  Native ``.so`` artifacts are
        shared through the pipeline's artifact store.
        """
        from ..exec.engine import make_functional_simulator

        simulator = make_functional_simulator(module.clone(), engine=self.engine,
                                              store=self.pipeline.store)
        return simulator.run(entry, *args)

    def compile_and_run(self, source: str, entry: str, *args,
                        name: str = "module") -> Tuple[BuildArtifacts, SimulationResult]:
        """One call from C source to cycle-level results."""
        artifacts = self.build(source, name)
        return artifacts, self.run(artifacts, entry, *args)

    # ------------------------------------------------------------------
    # Customization.
    # ------------------------------------------------------------------
    def customize(self, module: Module, *, area_budget_kgates: float = 40.0,
                  max_operations: int = 8, name: Optional[str] = None,
                  profile_entry: Optional[str] = None,
                  profile_args: Tuple = ()) -> "Toolchain":
        """Derive a new toolchain whose machine is customized for ``module``.

        The module is rewritten in place to use the new operations; the
        returned toolchain targets the extended family member and shares
        this toolchain's extension library.
        """
        customizer = IsaCustomizer(
            self.machine,
            enumeration=EnumerationConfig(max_outputs=1),
            selection_config=SelectionConfig(
                area_budget_kgates=area_budget_kgates,
                max_operations=max_operations,
            ),
            library=self.library,
        )
        result = customizer.customize(module, name=name,
                                      profile_entry=profile_entry,
                                      profile_args=profile_args)
        derived = Toolchain(result.machine, opt_level=self.opt_level,
                            unroll_factor=self.unroll_factor,
                            library=self.library, engine=self.engine,
                            pipeline=self.pipeline)
        derived.last_customization = result  # type: ignore[attr-defined]
        return derived

    # ------------------------------------------------------------------
    # Retargeting.
    # ------------------------------------------------------------------
    def retarget(self, machine: MachineDescription) -> "Toolchain":
        """The same toolchain pointed at a different family member."""
        return Toolchain(machine, opt_level=self.opt_level,
                         unroll_factor=self.unroll_factor,
                         library=self.library, engine=self.engine,
                         pipeline=self.pipeline)

    def describe(self) -> str:
        return f"Toolchain for {self.machine.describe()} (O{self.opt_level})"
