"""repro: customized instruction-sets for embedded processors.

A reproduction of the system envisioned by J. A. Fisher, "Customized
Instruction-Sets for Embedded Processors", DAC 1999: a mass-customizable
VLIW toolchain (C front end, optimizer, table-driven retargetable back
end, functional and cycle-level simulators), automated instruction-set
extension (identification, selection, rewriting), design-space
exploration, ISA-drift/binary-translation machinery, and the economic
models behind the paper's five barriers.

Typical use — the session-scoped service façade::

    from repro import CustomizeRequest, Session

    with Session(opt_level=3) as session:
        job = session.submit(CustomizeRequest(kernel="sad16",
                                              machine="vliw4",
                                              area_budget_kgates=30.0))
        response = job.result()
        print(response.custom_machine, response.speedup)
        print(response.to_json())          # schema-versioned, with provenance

or the classic objects, bound to a session::

    from repro import Session, vliw4
    from repro.workloads import get_kernel

    kernel = get_kernel("sad16")
    toolchain = Session().toolchain(vliw4())
    module = toolchain.frontend(kernel.source, kernel.name)
    custom = toolchain.customize(module, area_budget_kgates=30.0)
    artifacts = custom.build(module)
    result = custom.run(artifacts, kernel.entry, *kernel.arguments())
    print(result.cycles, result.energy_uj)

The same six request kinds drive the CLI: ``python -m repro
{compile,run,customize,explore,matrix,gen}``.
"""

from .arch import (
    MachineDescription, clustered_vliw4, dsp_core, get_preset,
    mass_market_superscalar, risc_baseline, vliw, vliw2, vliw4, vliw8,
)
from .core import IsaCustomizer, customize_isa
from .exec import BatchEvaluator, CompiledSimulator, make_functional_simulator
from .frontend import compile_c
from .gen import WorkloadPopulation, WorkloadSpec, generate_kernel, sample_spec
from .ir import IRBuilder, Module
from .model import KernelTrace, RetimingModel, TraceEstimate, capture_trace
from .obs import (
    MetricsRegistry, ObsJournal, Tracer, global_tracer, obs_mode,
    obs_override, render_prometheus, set_obs_mode,
)
from .opt import optimize
from .pipeline import (
    ArtifactStore, CompilePipeline, global_compile_pipeline,
    reset_global_compile_pipeline,
)
from .sim import CycleSimulator, FunctionalSimulator
from .toolchain import Toolchain, run_matrix
from .api import (
    CompileRequest, CustomizeRequest, ExploreRequest, Job, MatrixRequest,
    PopulationRequest, RunRequest, Session, default_session,
    reset_default_session,
)

__version__ = "1.1.0"

__all__ = [
    "MachineDescription", "clustered_vliw4", "dsp_core", "get_preset",
    "mass_market_superscalar", "risc_baseline", "vliw", "vliw2", "vliw4",
    "vliw8",
    "IsaCustomizer", "customize_isa",
    "BatchEvaluator", "CompiledSimulator", "make_functional_simulator",
    "compile_c",
    "WorkloadPopulation", "WorkloadSpec", "generate_kernel", "sample_spec",
    "IRBuilder", "Module",
    "KernelTrace", "RetimingModel", "TraceEstimate", "capture_trace",
    "MetricsRegistry", "ObsJournal", "Tracer", "global_tracer", "obs_mode",
    "obs_override", "render_prometheus", "set_obs_mode",
    "optimize",
    "ArtifactStore", "CompilePipeline", "global_compile_pipeline",
    "reset_global_compile_pipeline",
    "CycleSimulator", "FunctionalSimulator",
    "Toolchain", "run_matrix",
    "CompileRequest", "CustomizeRequest", "ExploreRequest", "Job",
    "MatrixRequest", "PopulationRequest", "RunRequest", "Session",
    "default_session", "reset_default_session",
    "__version__",
]
