"""repro: customized instruction-sets for embedded processors.

A reproduction of the system envisioned by J. A. Fisher, "Customized
Instruction-Sets for Embedded Processors", DAC 1999: a mass-customizable
VLIW toolchain (C front end, optimizer, table-driven retargetable back
end, functional and cycle-level simulators), automated instruction-set
extension (identification, selection, rewriting), design-space
exploration, ISA-drift/binary-translation machinery, and the economic
models behind the paper's five barriers.

Typical use::

    from repro import Toolchain, vliw4
    from repro.workloads import get_kernel

    kernel = get_kernel("sad16")
    toolchain = Toolchain(vliw4())
    module = toolchain.frontend(kernel.source, kernel.name)
    custom = toolchain.customize(module, area_budget_kgates=30.0)
    artifacts = custom.build(module)
    result = custom.run(artifacts, kernel.entry, *kernel.arguments())
    print(result.cycles, result.energy_uj)
"""

from .arch import (
    MachineDescription, clustered_vliw4, dsp_core, get_preset,
    mass_market_superscalar, risc_baseline, vliw, vliw2, vliw4, vliw8,
)
from .core import IsaCustomizer, customize_isa
from .exec import BatchEvaluator, CompiledSimulator, make_functional_simulator
from .frontend import compile_c
from .gen import WorkloadPopulation, WorkloadSpec, generate_kernel, sample_spec
from .ir import IRBuilder, Module
from .opt import optimize
from .pipeline import (
    ArtifactStore, CompilePipeline, global_compile_pipeline,
    reset_global_compile_pipeline,
)
from .sim import CycleSimulator, FunctionalSimulator
from .toolchain import Toolchain, run_matrix

__version__ = "1.0.0"

__all__ = [
    "MachineDescription", "clustered_vliw4", "dsp_core", "get_preset",
    "mass_market_superscalar", "risc_baseline", "vliw", "vliw2", "vliw4",
    "vliw8",
    "IsaCustomizer", "customize_isa",
    "BatchEvaluator", "CompiledSimulator", "make_functional_simulator",
    "compile_c",
    "WorkloadPopulation", "WorkloadSpec", "generate_kernel", "sample_spec",
    "IRBuilder", "Module",
    "optimize",
    "ArtifactStore", "CompilePipeline", "global_compile_pipeline",
    "reset_global_compile_pipeline",
    "CycleSimulator", "FunctionalSimulator",
    "Toolchain", "run_matrix",
    "__version__",
]
