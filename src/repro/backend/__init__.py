"""The retargetable VLIW back end.

Driven entirely by a :class:`~repro.arch.MachineDescription`: instruction
selection, cluster assignment, register allocation with spill planning,
list scheduling into VLIW bundles, assembly rendering and binary encoding.
"""

from .mcode import (
    Bundle, CompiledFunction, CompiledModule, MachineOp, RegisterAssignment,
    ScheduledBlock,
)
from .isel import SelectionError, select_block, select_instruction, validate_function
from .regalloc import SpillPlan, allocate_registers, block_pressure, compute_liveness
from .scheduler import ScheduleStatistics, assign_clusters, schedule_block
from .codegen import CompileReport, compile_function, compile_module
from .asm import (
    BinaryImage, EncodedOp, OPCODE_NUMBERS, decode_word, encode_module,
    encode_op, render_assembly,
)

__all__ = [
    "Bundle", "CompiledFunction", "CompiledModule", "MachineOp",
    "RegisterAssignment", "ScheduledBlock",
    "SelectionError", "select_block", "select_instruction", "validate_function",
    "SpillPlan", "allocate_registers", "block_pressure", "compute_liveness",
    "ScheduleStatistics", "assign_clusters", "schedule_block",
    "CompileReport", "compile_function", "compile_module",
    "BinaryImage", "EncodedOp", "OPCODE_NUMBERS", "decode_word",
    "encode_module", "encode_op", "render_assembly",
]
