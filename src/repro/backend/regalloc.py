"""Liveness analysis and register allocation.

The allocator computes whole-function liveness of virtual registers,
measures the per-block register pressure, and maps virtual registers onto
the machine's architectural registers with a furthest-next-use spill
heuristic when pressure exceeds the file size.  Spill decisions are
returned so the scheduler can materialise the reload/spill memory traffic
in the bundles (which is how a small register file shows up as lost cycles
and extra code, the effect the "number of registers" axis of experiment E8
measures).

Values keep their virtual names in the simulated execution (the cycle
simulator is trace-accurate for timing but executes by name); the
assignment produced here is used for timing, spill traffic, and assembly
rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..arch.machine import MachineDescription
from ..ir import Argument, BasicBlock, Function, Instruction, VirtualRegister
from .mcode import RegisterAssignment


# ----------------------------------------------------------------------
# Liveness.
# ----------------------------------------------------------------------

def compute_liveness(function: Function) -> Tuple[Dict[str, Set[int]], Dict[str, Set[int]]]:
    """Iterative backward liveness: returns (live_in, live_out) by block name."""
    use: Dict[str, Set[int]] = {}
    defined: Dict[str, Set[int]] = {}
    for block in function.blocks:
        block_use: Set[int] = set()
        block_def: Set[int] = set()
        for inst in block.instructions:
            for reg in inst.uses():
                if reg.id not in block_def:
                    block_use.add(reg.id)
            if inst.dest is not None:
                block_def.add(inst.dest.id)
        use[block.name] = block_use
        defined[block.name] = block_def

    live_in: Dict[str, Set[int]] = {b.name: set() for b in function.blocks}
    live_out: Dict[str, Set[int]] = {b.name: set() for b in function.blocks}

    changed = True
    while changed:
        changed = False
        for block in reversed(function.blocks):
            out: Set[int] = set()
            for successor in block.successors():
                out |= live_in[successor.name]
            new_in = use[block.name] | (out - defined[block.name])
            if out != live_out[block.name] or new_in != live_in[block.name]:
                live_out[block.name] = out
                live_in[block.name] = new_in
                changed = True
    return live_in, live_out


def block_pressure(block: BasicBlock, live_out: Set[int]) -> int:
    """Maximum number of simultaneously live registers inside ``block``."""
    live: Set[int] = set(live_out)
    max_pressure = len(live)
    for inst in reversed(block.instructions):
        if inst.dest is not None:
            live.discard(inst.dest.id)
        for reg in inst.uses():
            live.add(reg.id)
        max_pressure = max(max_pressure, len(live))
    return max_pressure


# ----------------------------------------------------------------------
# Allocation.
# ----------------------------------------------------------------------

@dataclass
class SpillPlan:
    """Registers chosen to live in memory, and the traffic they cause."""

    spilled_registers: Set[int] = field(default_factory=set)
    #: per block name, number of reloads/stores the spills introduce.
    reloads_per_block: Dict[str, int] = field(default_factory=dict)
    stores_per_block: Dict[str, int] = field(default_factory=dict)


def allocate_registers(function: Function, machine: MachineDescription,
                       reserved: int = 4) -> Tuple[RegisterAssignment, SpillPlan]:
    """Assign virtual registers to the machine's architectural registers.

    ``reserved`` registers are kept back for the stack pointer, link
    register and assembler temporaries.  The allocator is a whole-function
    priority allocator: registers are ranked by (spill-cost = frequency-
    weighted use count), the top ``k`` stay in registers, the rest are
    spilled; every use of a spilled register inside a block costs one
    reload and every definition one store, which is what the scheduler
    materialises.
    """
    available = max(2, machine.total_registers - reserved)
    live_in, live_out = compute_liveness(function)

    # Spill cost: frequency-weighted number of uses + defs.
    cost: Dict[int, float] = {}
    vregs: Dict[int, VirtualRegister] = {}
    for block in function.blocks:
        weight = max(1.0, block.frequency)
        for inst in block.instructions:
            for reg in inst.uses():
                cost[reg.id] = cost.get(reg.id, 0.0) + weight
                vregs[reg.id] = reg
            if inst.dest is not None:
                cost[inst.dest.id] = cost.get(inst.dest.id, 0.0) + weight
                vregs[inst.dest.id] = inst.dest
    for arg in function.arguments:
        cost.setdefault(arg.id, 1.0)
        vregs.setdefault(arg.id, arg)

    assignment = RegisterAssignment()
    assignment.max_pressure = max(
        (block_pressure(b, live_out[b.name]) for b in function.blocks), default=0
    )

    ranked = sorted(cost, key=lambda reg_id: -cost[reg_id])
    plan = SpillPlan()

    if len(ranked) <= available:
        keep = set(ranked)
    else:
        keep = set(ranked[:available])
        plan.spilled_registers = set(ranked[available:])

    next_physical = 0
    for reg_id in ranked:
        if reg_id in keep:
            assignment.physical[reg_id] = next_physical % available
            next_physical += 1
        else:
            assignment.spilled[reg_id] = assignment.spill_slots
            assignment.spill_slots += 1

    # Spill traffic per block.
    for block in function.blocks:
        reloads = 0
        stores = 0
        for inst in block.instructions:
            for reg in inst.uses():
                if reg.id in plan.spilled_registers:
                    reloads += 1
            if inst.dest is not None and inst.dest.id in plan.spilled_registers:
                stores += 1
        if reloads:
            plan.reloads_per_block[block.name] = reloads
        if stores:
            plan.stores_per_block[block.name] = stores
        assignment.spill_loads += reloads
        assignment.spill_stores += stores

    return assignment, plan
