"""Cluster assignment and VLIW list scheduling.

The scheduler is the part of the back end the paper calls "especially
hard": it must extract ILP on *every* member of the architecture family
described by a table, without per-target special cases.  It consumes only
the machine description — issue width, cluster count, functional-unit
slots per operation class, latencies — so retargeting really is just a
table change.

For each basic block it:

1. builds the dependence graph (flow / anti / output / memory edges),
2. lowers instructions to :class:`MachineOp` syllables (instruction
   selection),
3. assigns operations to register clusters and inserts inter-cluster copy
   operations on flow edges that cross clusters,
4. attaches spill reload/store operations from the register allocator's
   plan, and
5. list-schedules the graph into bundles with critical-path priority under
   the machine's per-class slot limits and per-cluster issue width.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from ..arch.machine import MachineDescription
from ..arch.operations import OperationClass
from ..ir import (
    BasicBlock, Constant, Function, Instruction, Opcode, VirtualRegister,
    build_dataflow_graph,
)
from ..ir.types import I32, PTR
from .isel import select_instruction
from .mcode import Bundle, MachineOp, ScheduledBlock
from .regalloc import SpillPlan


@dataclass
class ScheduleStatistics:
    """Per-block scheduling statistics, accumulated per function."""

    blocks: int = 0
    bundles: int = 0
    operations: int = 0
    copies_inserted: int = 0
    spill_ops_inserted: int = 0

    def merge(self, other: "ScheduleStatistics") -> None:
        self.blocks += other.blocks
        self.bundles += other.bundles
        self.operations += other.operations
        self.copies_inserted += other.copies_inserted
        self.spill_ops_inserted += other.spill_ops_inserted


# ----------------------------------------------------------------------
# Cluster assignment.
# ----------------------------------------------------------------------

def assign_clusters(ops: List[MachineOp], graph: nx.DiGraph,
                    machine: MachineDescription) -> int:
    """Assign each op to a register cluster; returns copies needed.

    Greedy assignment in topological order: an operation goes to the
    cluster holding the majority of its register operands' producers,
    breaking ties towards the least-loaded cluster.  The number of flow
    edges that end up crossing clusters is returned (each will become an
    explicit copy operation).
    """
    if machine.num_clusters <= 1:
        for op in ops:
            op.cluster = 0
        return 0

    by_inst: Dict[int, MachineOp] = {id(op.inst): op for op in ops}
    load: List[int] = [0] * machine.num_clusters

    order = list(nx.topological_sort(graph))
    for inst in order:
        op = by_inst.get(id(inst))
        if op is None:
            continue
        votes = [0] * machine.num_clusters
        for pred in graph.predecessors(inst):
            pred_op = by_inst.get(id(pred))
            if pred_op is not None and graph.edges[pred, inst].get("kind") == "flow":
                votes[pred_op.cluster] += 1
        best = max(range(machine.num_clusters),
                   key=lambda c: (votes[c], -load[c]))
        # Branch/memory units are modelled as shared: keep them on cluster 0
        # so the slot accounting stays simple.
        if op.op_class in (OperationClass.BRANCH,):
            best = 0
        op.cluster = best
        load[best] += 1

    crossings = 0
    for u, v, kind in graph.edges(data="kind"):
        if kind != "flow":
            continue
        op_u = by_inst.get(id(u))
        op_v = by_inst.get(id(v))
        if op_u is not None and op_v is not None and op_u.cluster != op_v.cluster:
            crossings += 1
    return crossings


# ----------------------------------------------------------------------
# Spill traffic materialisation.
# ----------------------------------------------------------------------

def _make_spill_ops(count_loads: int, count_stores: int,
                    machine: MachineDescription) -> List[MachineOp]:
    """Create timing-only spill reload/store operations."""
    ops: List[MachineOp] = []
    mem_latency = machine.latency(OperationClass.MEM)
    for _ in range(count_loads):
        reload_inst = Instruction(Opcode.LOAD, VirtualRegister(I32, "spill.re"),
                                  [Constant(0, I32)])
        reload_inst.annotations["spill"] = True
        ops.append(MachineOp(reload_inst, OperationClass.MEM, mem_latency,
                             is_spill=True))
    for _ in range(count_stores):
        store_inst = Instruction(Opcode.STORE, None,
                                 [Constant(0, I32), Constant(0, I32)])
        store_inst.annotations["spill"] = True
        ops.append(MachineOp(store_inst, OperationClass.MEM, mem_latency,
                             is_spill=True))
    return ops


# ----------------------------------------------------------------------
# List scheduling.
# ----------------------------------------------------------------------

def _edge_ready_time(kind: str, producer_issue: int, producer_latency: int) -> int:
    """Earliest issue cycle of a consumer given one incoming edge."""
    if kind == "flow":
        return producer_issue + producer_latency
    if kind == "anti":
        return producer_issue          # may issue in the same cycle
    return producer_issue + 1          # output / memory / order / barrier


def schedule_block(block: BasicBlock, machine: MachineDescription,
                   spill_plan: Optional[SpillPlan] = None
                   ) -> Tuple[ScheduledBlock, ScheduleStatistics]:
    """List-schedule one basic block for ``machine``."""
    stats = ScheduleStatistics(blocks=1)
    dfg = build_dataflow_graph(block, include_terminator=True)
    graph = dfg.graph

    ops: List[MachineOp] = [select_instruction(inst, machine)
                            for inst in block.instructions]
    by_inst: Dict[int, MachineOp] = {id(op.inst): op for op in ops}

    copies = assign_clusters(ops, graph, machine)
    stats.copies_inserted += copies

    # Spill traffic for this block (timing-only operations with no
    # dependence constraints beyond resource contention).
    extra_ops: List[MachineOp] = []
    if spill_plan is not None:
        reloads = spill_plan.reloads_per_block.get(block.name, 0)
        stores = spill_plan.stores_per_block.get(block.name, 0)
        extra_ops = _make_spill_ops(reloads, stores, machine)
        stats.spill_ops_inserted += len(extra_ops)

    # Inter-cluster copies are modelled as additional IALU ops competing for
    # slots (timing-only; the value transfer is implicit in simulation).
    copy_ops: List[MachineOp] = []
    for _ in range(copies):
        copy_inst = Instruction(Opcode.MOV, VirtualRegister(I32, "xcopy"),
                                [Constant(0, I32)])
        copy_inst.annotations["xcopy"] = True
        copy_ops.append(MachineOp(copy_inst, OperationClass.IALU,
                                  max(1, machine.intercluster_latency), is_copy=True))

    # Priority: critical-path height (longest latency path to any leaf).
    height: Dict[int, int] = {}
    for inst in reversed(list(nx.topological_sort(graph))):
        op = by_inst[id(inst)]
        best = 0
        for succ in graph.successors(inst):
            edge_kind = graph.edges[inst, succ].get("kind", "flow")
            succ_height = height[id(succ)]
            if edge_kind == "flow":
                best = max(best, succ_height + op.latency)
            else:
                best = max(best, succ_height + 1)
        height[id(inst)] = best

    terminator = block.terminator
    unscheduled: Set[int] = {id(inst) for inst in block.instructions}
    issue_cycle: Dict[int, int] = {}
    pending_extra = list(extra_ops) + list(copy_ops)

    bundles: List[Bundle] = []
    cycle = 0
    max_cycles_guard = 10 * (len(ops) + len(pending_extra)) + 64

    while unscheduled or pending_extra:
        if cycle > max_cycles_guard:
            raise RuntimeError(
                f"scheduler failed to converge on block {block.name} "
                f"for machine {machine.name}"
            )
        bundle = Bundle()
        used_slots: Dict[OperationClass, int] = {}
        used_per_cluster: Dict[int, int] = {}
        total_issued = 0

        def can_issue(op: MachineOp) -> bool:
            if total_issued >= machine.issue_width:
                return False
            if used_per_cluster.get(op.cluster, 0) >= machine.cluster_issue_width:
                return False
            limit = machine.slots_for(op.op_class)
            if used_slots.get(op.op_class, 0) >= limit:
                return False
            return True

        # Ready real operations, highest priority first.
        ready: List[Instruction] = []
        for inst in block.instructions:
            if id(inst) not in unscheduled:
                continue
            if inst is terminator and len(unscheduled) > 1:
                continue  # the terminator goes in the final bundle
            earliest = 0
            blocked = False
            for pred in graph.predecessors(inst):
                if id(pred) in unscheduled:
                    blocked = True
                    break
                kind = graph.edges[pred, inst].get("kind", "flow")
                pred_op = by_inst[id(pred)]
                earliest = max(earliest, _edge_ready_time(
                    kind, issue_cycle[id(pred)], pred_op.latency))
            if not blocked and earliest <= cycle:
                ready.append(inst)
        ready.sort(key=lambda inst: -height[id(inst)])

        for inst in ready:
            op = by_inst[id(inst)]
            if not can_issue(op):
                continue
            bundle.ops.append(op)
            issue_cycle[id(inst)] = cycle
            unscheduled.discard(id(inst))
            used_slots[op.op_class] = used_slots.get(op.op_class, 0) + 1
            used_per_cluster[op.cluster] = used_per_cluster.get(op.cluster, 0) + 1
            total_issued += 1

        # Fill remaining slots with spill/copy traffic.
        still_pending: List[MachineOp] = []
        for op in pending_extra:
            if can_issue(op):
                bundle.ops.append(op)
                used_slots[op.op_class] = used_slots.get(op.op_class, 0) + 1
                used_per_cluster[op.cluster] = used_per_cluster.get(op.cluster, 0) + 1
                total_issued += 1
            else:
                still_pending.append(op)
        pending_extra = still_pending

        bundles.append(bundle)
        cycle += 1

    scheduled = ScheduledBlock(name=block.name, bundles=bundles,
                               frequency=block.frequency)
    stats.bundles += len(bundles)
    stats.operations += sum(len(b) for b in bundles)
    return scheduled, stats
