"""Assembly rendering and binary encoding of compiled modules.

The encoding is a straightforward fixed-32-bit-syllable VLIW format (with
an optional compressed form whose bundles carry a one-byte template):
every operation becomes one word holding the opcode number, the register
numbers assigned by the allocator (or spill-slot markers) and a small
immediate.  The point of this module is not fidelity to any real binary
format — it is to give the ISA-drift experiments an actual *binary
artifact* to translate: the drift translator decodes these words,
re-schedules them for a different family member and re-encodes them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir import Constant, GlobalVariable, Opcode, VirtualRegister
from .mcode import Bundle, CompiledFunction, CompiledModule, MachineOp

#: stable numbering of opcodes for the binary encoding.
OPCODE_NUMBERS: Dict[Opcode, int] = {op: i for i, op in enumerate(Opcode)}
NUMBER_OPCODES: Dict[int, Opcode] = {i: op for op, i in OPCODE_NUMBERS.items()}


@dataclass
class EncodedOp:
    """One decoded syllable of a binary image."""

    opcode_number: int
    dest: int
    src1: int
    src2: int
    immediate: int
    custom_index: int = 0

    @property
    def opcode(self) -> Opcode:
        return NUMBER_OPCODES[self.opcode_number]


@dataclass
class BinaryImage:
    """The encoded program: words per function, plus the symbol tables."""

    machine_name: str
    words: Dict[str, List[int]] = field(default_factory=dict)
    #: bundle boundaries: function -> list of (start_word, op_count).
    bundle_table: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)
    custom_op_names: List[str] = field(default_factory=list)

    @property
    def total_words(self) -> int:
        return sum(len(w) for w in self.words.values())

    @property
    def total_bytes(self) -> int:
        return 4 * self.total_words


def _register_number(value, compiled: CompiledFunction) -> int:
    if isinstance(value, VirtualRegister):
        if compiled.registers is None:
            return value.id % 64
        if value.id in compiled.registers.physical:
            return compiled.registers.physical[value.id]
        if value.id in compiled.registers.spilled:
            return 63  # spill marker
        return value.id % 64
    return 0


def _immediate(value) -> int:
    if isinstance(value, Constant) and isinstance(value.value, int):
        return value.value & 0xFFFF
    if isinstance(value, GlobalVariable) and value.address is not None:
        return value.address & 0xFFFF
    return 0


def encode_op(op: MachineOp, compiled: CompiledFunction,
              custom_names: List[str]) -> int:
    """Pack one operation into a 32-bit word."""
    inst = op.inst
    opcode_number = OPCODE_NUMBERS[inst.opcode] & 0x3F
    if op.is_spill or op.is_copy:
        # Timing-only traffic synthesized after allocation: its temporary
        # registers have no assignment, so encode the spill marker rather
        # than a raw virtual-register id (keeps images content-
        # deterministic across compiles).
        return ((opcode_number << 26) | ((63 if inst.dest is not None else 0)
                                         << 20)) & 0xFFFFFFFF
    dest = _register_number(inst.dest, compiled) if inst.dest is not None else 0
    src1 = _register_number(inst.operands[0], compiled) if inst.operands else 0
    src2 = _register_number(inst.operands[1], compiled) if len(inst.operands) > 1 else 0
    imm = 0
    for operand in inst.operands:
        imm = _immediate(operand)
        if imm:
            break
    custom_index = 0
    if inst.opcode is Opcode.CUSTOM:
        if inst.custom_op not in custom_names:
            custom_names.append(inst.custom_op)
        custom_index = custom_names.index(inst.custom_op) & 0xF

    word = (
        (opcode_number << 26)
        | ((dest & 0x3F) << 20)
        | ((src1 & 0x3F) << 14)
        | ((src2 & 0x3F) << 8)
        | ((custom_index & 0xF) << 4)
        | ((imm >> 12) & 0xF)
    )
    return word & 0xFFFFFFFF


def decode_word(word: int) -> EncodedOp:
    """Unpack a 32-bit syllable."""
    return EncodedOp(
        opcode_number=(word >> 26) & 0x3F,
        dest=(word >> 20) & 0x3F,
        src1=(word >> 14) & 0x3F,
        src2=(word >> 8) & 0x3F,
        custom_index=(word >> 4) & 0xF,
        immediate=word & 0xF,
    )


def encode_module(compiled: CompiledModule) -> BinaryImage:
    """Encode a compiled module into a binary image."""
    image = BinaryImage(machine_name=compiled.machine.name)
    for function in compiled:
        words: List[int] = []
        bundles: List[Tuple[int, int]] = []
        for block in function.blocks:
            for bundle in block.bundles:
                bundles.append((len(words), len(bundle.ops)))
                for op in bundle.ops:
                    words.append(encode_op(op, function, image.custom_op_names))
                if not bundle.ops:
                    words.append(NOP_WORD)
        image.words[function.name] = words
        image.bundle_table[function.name] = bundles
    return image


#: padding word emitted for empty bundles (bundle_table records them as
#: 0-op bundles, so the payload is never decoded as a real operation).
#: A fixed constant keeps binary images content-deterministic.
NOP_WORD = (OPCODE_NUMBERS[Opcode.MOV] & 0x3F) << 26


def render_assembly(compiled: CompiledModule) -> str:
    """Render a compiled module as human-readable VLIW assembly."""
    lines: List[str] = [f"; target: {compiled.machine.describe()}"]
    for function in compiled:
        lines.append("")
        lines.append(f".function {function.name}")
        if function.registers is not None and function.registers.spill_slots:
            lines.append(f"  .frame spill_slots={function.registers.spill_slots}")
        for block in function.blocks:
            lines.append(f"{block.name}:")
            for index, bundle in enumerate(block.bundles):
                if not bundle.ops:
                    lines.append("  { nop } ;;")
                    continue
                rendered = []
                for op in bundle.ops:
                    text = _render_op(op, function)
                    rendered.append(text)
                lines.append("  { " + " | ".join(rendered) + " } ;;")
    return "\n".join(lines)


def _render_op(op: MachineOp, function: CompiledFunction) -> str:
    inst = op.inst
    name = inst.custom_op if inst.opcode is Opcode.CUSTOM else inst.opcode.value
    parts = [name]
    if inst.dest is not None:
        parts.append(_operand_text(inst.dest, function) + " =")
    operand_text = ", ".join(_operand_text(o, function) for o in inst.operands)
    if operand_text:
        parts.append(operand_text)
    if inst.targets:
        parts.append("-> " + ", ".join(t.name for t in inst.targets))
    suffix = ""
    if op.is_spill:
        suffix = " ;spill"
    elif op.is_copy:
        suffix = " ;xcopy"
    return " ".join(parts) + suffix


def _operand_text(value, function: CompiledFunction) -> str:
    if isinstance(value, VirtualRegister):
        if function.registers is not None:
            return function.registers.location_of(value.id)
        return str(value)
    if isinstance(value, Constant):
        return str(value.value)
    if isinstance(value, GlobalVariable):
        return f"@{value.name}"
    return str(value)
