"""The code-generation driver: IR module -> compiled (scheduled) module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.encoding import CodeSizeReport, code_size
from ..arch.machine import MachineDescription
from ..ir import Function, Module, topological_block_order
from .mcode import CompiledFunction, CompiledModule
from .regalloc import allocate_registers
from .scheduler import ScheduleStatistics, schedule_block


@dataclass
class CompileReport:
    """Aggregate compilation statistics for one module on one machine."""

    machine: str
    functions: int = 0
    schedule: ScheduleStatistics = field(default_factory=ScheduleStatistics)
    spilled_registers: int = 0
    max_pressure: int = 0
    code: Optional[CodeSizeReport] = None
    #: per-stage cache/timing records (``repro.pipeline.StageRecord``)
    #: filled in by the staged compile pipeline; empty for direct
    #: ``compile_module`` calls.
    stages: List = field(default_factory=list)


def compile_function(function: Function, machine: MachineDescription,
                     report: Optional[CompileReport] = None) -> CompiledFunction:
    """Schedule and allocate one function for ``machine``.

    When ``report`` is given, the function's scheduling statistics,
    spill counts and register pressure are accumulated into it.
    """
    assignment, spill_plan = allocate_registers(function, machine)
    compiled = CompiledFunction(name=function.name, machine=machine,
                                source=function, registers=assignment)
    for block in topological_block_order(function):
        scheduled, stats = schedule_block(block, machine, spill_plan)
        compiled.blocks.append(scheduled)
        if report is not None:
            report.schedule.merge(stats)
    if report is not None:
        report.functions += 1
        report.spilled_registers += len(assignment.spilled)
        report.max_pressure = max(report.max_pressure, assignment.max_pressure)
    return compiled


def compile_module(module: Module, machine: MachineDescription
                   ) -> tuple[CompiledModule, CompileReport]:
    """Compile every function in ``module`` for ``machine``."""
    compiled = CompiledModule(machine=machine, source=module)
    report = CompileReport(machine=machine.name)
    for function in module.functions.values():
        compiled.add(compile_function(function, machine, report))
    report.code = code_size(machine, compiled.bundle_op_counts())
    return compiled, report
