"""The code-generation driver: IR module -> compiled (scheduled) module."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.encoding import CodeSizeReport, code_size
from ..arch.machine import MachineDescription
from ..ir import Function, Module, topological_block_order
from .mcode import CompiledFunction, CompiledModule
from .regalloc import allocate_registers
from .scheduler import ScheduleStatistics, schedule_block


@dataclass
class CompileReport:
    """Aggregate compilation statistics for one module on one machine."""

    machine: str
    functions: int = 0
    schedule: ScheduleStatistics = field(default_factory=ScheduleStatistics)
    spilled_registers: int = 0
    max_pressure: int = 0
    code: Optional[CodeSizeReport] = None


def compile_function(function: Function, machine: MachineDescription) -> CompiledFunction:
    """Schedule and allocate one function for ``machine``."""
    assignment, spill_plan = allocate_registers(function, machine)
    compiled = CompiledFunction(name=function.name, machine=machine,
                                source=function, registers=assignment)
    for block in topological_block_order(function):
        scheduled, _stats = schedule_block(block, machine, spill_plan)
        compiled.blocks.append(scheduled)
    return compiled


def compile_module(module: Module, machine: MachineDescription
                   ) -> tuple[CompiledModule, CompileReport]:
    """Compile every function in ``module`` for ``machine``."""
    compiled = CompiledModule(machine=machine, source=module)
    report = CompileReport(machine=machine.name)
    for function in module.functions.values():
        assignment, spill_plan = allocate_registers(function, machine)
        cf = CompiledFunction(name=function.name, machine=machine,
                              source=function, registers=assignment)
        for block in topological_block_order(function):
            scheduled, stats = schedule_block(block, machine, spill_plan)
            cf.blocks.append(scheduled)
            report.schedule.merge(stats)
        compiled.add(cf)
        report.functions += 1
        report.spilled_registers += len(assignment.spilled)
        report.max_pressure = max(report.max_pressure, assignment.max_pressure)
    report.code = code_size(machine, compiled.bundle_op_counts())
    return compiled, report
