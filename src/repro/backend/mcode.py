"""Machine-level code containers produced by the back end.

The back end lowers each IR function into :class:`CompiledFunction`:
basic blocks of VLIW *bundles* (long instructions), each bundle holding up
to ``issue_width`` :class:`MachineOp` syllables.  The cycle-accurate
simulator executes this representation directly; the assembler renders it
as text or encodes it into 32-bit syllable words.

Values are named by virtual register; the register allocator's assignment
(physical register or spill slot) is recorded on the side, and spill
traffic appears as explicit spill/reload MachineOps in the bundles so that
both the timing and the code-size models see it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.machine import MachineDescription
from ..arch.operations import OperationClass
from ..ir import Function, Instruction, Module, Opcode


@dataclass
class MachineOp:
    """One operation syllable: an IR instruction placed on a functional unit."""

    inst: Instruction
    op_class: OperationClass
    latency: int
    cluster: int = 0
    #: spill/reload operations synthesised by the register allocator carry
    #: the virtual register they traffic and have ``inst`` set to a LOAD or
    #: STORE the simulator executes against the spill slot.
    is_spill: bool = False
    #: inter-cluster copy operations synthesised by the cluster assigner.
    is_copy: bool = False

    @property
    def opcode(self) -> Opcode:
        return self.inst.opcode

    def __str__(self) -> str:
        tag = ""
        if self.is_spill:
            tag = " ;spill"
        elif self.is_copy:
            tag = " ;xcopy"
        return f"[{self.op_class.value}.c{self.cluster}] {self.inst}{tag}"


@dataclass
class Bundle:
    """One VLIW long instruction: operations issued in the same cycle."""

    ops: List[MachineOp] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __str__(self) -> str:
        if not self.ops:
            return "  { nop }"
        body = "\n".join(f"    {op}" for op in self.ops)
        return "  {\n" + body + "\n  }"


@dataclass
class ScheduledBlock:
    """A basic block after scheduling: an ordered list of bundles."""

    name: str
    bundles: List[Bundle] = field(default_factory=list)
    #: the IR block's (possibly profiled) execution frequency.
    frequency: float = 1.0

    @property
    def cycles(self) -> int:
        """Static schedule length in cycles (one bundle per cycle)."""
        return len(self.bundles)

    @property
    def operation_count(self) -> int:
        return sum(len(b) for b in self.bundles)

    def op_counts_per_bundle(self) -> List[int]:
        return [len(b) for b in self.bundles]

    def __str__(self) -> str:
        lines = [f"{self.name}:"]
        lines.extend(str(b) for b in self.bundles)
        return "\n".join(lines)


@dataclass
class RegisterAssignment:
    """Where each virtual register lives: a physical register or a spill slot."""

    physical: Dict[int, int] = field(default_factory=dict)
    spilled: Dict[int, int] = field(default_factory=dict)   # vreg id -> slot index
    spill_slots: int = 0
    max_pressure: int = 0
    spill_loads: int = 0
    spill_stores: int = 0

    def location_of(self, vreg_id: int) -> str:
        if vreg_id in self.physical:
            return f"r{self.physical[vreg_id]}"
        if vreg_id in self.spilled:
            return f"[sp+{4 * self.spilled[vreg_id]}]"
        return "?"


@dataclass
class CompiledFunction:
    """A fully scheduled function for a specific machine."""

    name: str
    machine: MachineDescription
    blocks: List[ScheduledBlock] = field(default_factory=list)
    source: Optional[Function] = None
    registers: Optional[RegisterAssignment] = None

    def block(self, name: str) -> ScheduledBlock:
        for blk in self.blocks:
            if blk.name == name:
                return blk
        raise KeyError(f"no scheduled block {name} in {self.name}")

    @property
    def static_cycles(self) -> int:
        """Schedule length summed over all blocks (not execution time)."""
        return sum(b.cycles for b in self.blocks)

    @property
    def operation_count(self) -> int:
        return sum(b.operation_count for b in self.blocks)

    def bundle_op_counts(self) -> List[int]:
        counts: List[int] = []
        for block in self.blocks:
            counts.extend(block.op_counts_per_bundle())
        return counts

    @property
    def average_ilp(self) -> float:
        """Operations per non-empty bundle (static ILP of the schedule)."""
        counts = [c for c in self.bundle_op_counts() if c > 0]
        if not counts:
            return 0.0
        return sum(counts) / len(counts)

    def __str__(self) -> str:
        lines = [f"; function {self.name} scheduled for {self.machine.name}"]
        lines.extend(str(b) for b in self.blocks)
        return "\n".join(lines)


@dataclass
class CompiledModule:
    """All compiled functions of a module, for one machine."""

    machine: MachineDescription
    functions: Dict[str, CompiledFunction] = field(default_factory=dict)
    source: Optional[Module] = None

    def add(self, function: CompiledFunction) -> None:
        self.functions[function.name] = function

    def get(self, name: str) -> CompiledFunction:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no compiled function {name}") from None

    def bundle_op_counts(self) -> List[int]:
        counts: List[int] = []
        for function in self.functions.values():
            counts.extend(function.bundle_op_counts())
        return counts

    @property
    def operation_count(self) -> int:
        return sum(f.operation_count for f in self.functions.values())

    def __iter__(self):
        return iter(self.functions.values())
