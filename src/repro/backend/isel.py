"""Instruction selection: lowering IR instructions to machine operations.

The base ISA of the VLIW family is deliberately close to the IR, so most
instructions lower one-to-one; the selector's real jobs are (a) checking
that the target machine can actually execute what the program needs
(machines without an FPU or divider reject programs that use them, which
the design-space explorer relies on to prune infeasible points), (b)
attaching latencies and unit classes from the machine description tables,
and (c) resolving custom operations against the machine's extension list.
"""

from __future__ import annotations

from typing import List

from ..arch.machine import MachineDescription
from ..arch.operations import OperationClass, classify
from ..ir import BasicBlock, Function, Instruction, Opcode
from .mcode import MachineOp


class SelectionError(Exception):
    """Raised when a program cannot be mapped onto the target machine."""


def select_instruction(inst: Instruction, machine: MachineDescription) -> MachineOp:
    """Lower one IR instruction to a :class:`MachineOp` for ``machine``."""
    if inst.opcode is Opcode.CUSTOM:
        if not machine.has_custom_op(inst.custom_op):
            raise SelectionError(
                f"machine {machine.name} does not implement custom op "
                f"{inst.custom_op}"
            )
        return MachineOp(
            inst=inst,
            op_class=OperationClass.CUSTOM,
            latency=machine.custom_latency(inst.custom_op),
        )

    op_class = classify(inst.opcode)
    if not machine.supports(op_class):
        raise SelectionError(
            f"machine {machine.name} has no functional unit for {op_class} "
            f"(needed by '{inst.opcode.value}')"
        )
    return MachineOp(inst=inst, op_class=op_class, latency=machine.latency(op_class))


def select_block(block: BasicBlock, machine: MachineDescription) -> List[MachineOp]:
    """Lower every instruction of a basic block (terminator included)."""
    return [select_instruction(inst, machine) for inst in block.instructions]


def validate_function(function: Function, machine: MachineDescription) -> List[str]:
    """Return a list of reasons the function cannot run on ``machine``."""
    problems: List[str] = []
    for inst in function.instructions():
        try:
            select_instruction(inst, machine)
        except SelectionError as exc:
            problems.append(str(exc))
    return problems
