"""Evaluation of one machine against a weighted *application* mix.

:class:`AppEvaluator` is the application-level sibling of
:class:`~repro.dse.objectives.Evaluator`: where the kernel evaluator
scores a machine by weighted kernel cycles, this one runs (or, at trace
fidelity, analytically re-aggregates) whole dataflow applications
window by window through :class:`~repro.app.AppRunner` and reduces them
to *real-time* figures of merit — deadline-miss rate, p50/p95/p99
window latency, jitter, and energy per window — weighted across the
mix.  It deliberately exposes the same surface the rest of the DSE
stack already consumes (``mix``/``size``/``opt_level``/``seed``/
``engine``/``fidelity``/``evaluate``/``with_fidelity``), so
:class:`~repro.dse.Explorer`, :class:`~repro.exec.batch.BatchEvaluator`
memoization, service sharding and ``screen_then_rescore`` all work over
applications unchanged.

ISA customization composes too: a positive ``custom_area_budget``
customizes the machine against every node module of every application
(weighted by the app's mix weight) before any window runs, exactly
mirroring the kernel evaluator's private-library discipline.

One deliberate mapping: the ``"cycle"`` *engine* selector runs node
windows on the threaded-code engine with statically reduced timing (the
cycle-accurate simulator models caches per run, which the per-window
loop does not need for screening); ``fidelity="cycle"`` vs ``"trace"``
keeps its usual execute-every-window vs price-once meaning.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..app.runner import AppReport, AppRunner
from ..app.spec import ApplicationSpec
from ..arch.machine import MachineDescription
from ..core.customizer import IsaCustomizer
from ..core.identification import EnumerationConfig
from ..core.library import ExtensionLibrary
from ..core.selection import SelectionConfig
from ..exec.registry import validate_engine
from ..pipeline import CompilePipeline
from .objectives import Evaluation, KernelMeasurement


class ApplicationMix:
    """A named, weighted set of applications (the product's workload)."""

    def __init__(self, name: str,
                 apps: Sequence[Tuple[ApplicationSpec, float]]) -> None:
        if not apps:
            raise ValueError("an application mix needs at least one app")
        self.name = name
        self._apps: List[Tuple[ApplicationSpec, float]] = []
        seen = set()
        for spec, weight in apps:
            if spec.name in seen:
                raise ValueError(
                    f"duplicate application '{spec.name}' in mix '{name}'")
            if weight <= 0:
                raise ValueError("application weights must be positive")
            seen.add(spec.name)
            self._apps.append((spec, float(weight)))

    def applications(self) -> List[Tuple[ApplicationSpec, float]]:
        return list(self._apps)

    @property
    def weights(self) -> Dict[str, float]:
        """``{application name: weight}`` — the surface
        :class:`~repro.exec.batch.EvaluatorSpec` reads off any mix."""
        return {spec.name: weight for spec, weight in self._apps}

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "apps": [{"spec": spec.to_dict(), "weight": weight}
                     for spec, weight in self._apps],
        }

    @classmethod
    def from_dict(cls, data) -> "ApplicationMix":
        return cls(str(data["name"]), [
            (ApplicationSpec.from_dict(entry["spec"]), float(entry["weight"]))
            for entry in data["apps"]
        ])

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ApplicationMix":
        return cls.from_dict(json.loads(text))

    @classmethod
    def single(cls, spec: ApplicationSpec) -> "ApplicationMix":
        """A one-application mix named after the application."""
        return cls(spec.name, [(spec, 1.0)])


@dataclass
class AppEvaluation(Evaluation):
    """An :class:`Evaluation` extended with weighted real-time metrics.

    ``measurements`` holds one row per application (cycles = mean cycles
    per window), so every inherited metric — weighted time, energy,
    area, performance ratios — keeps working; ``app_rows`` carries the
    per-application real-time detail as plain dicts (picklable through
    the evaluation memo).
    """

    app_rows: List[Dict[str, object]] = field(default_factory=list)

    def _weighted(self, key: str) -> float:
        total = sum(row["weight"] for row in self.app_rows)
        if total <= 0:
            return 0.0
        return sum(row[key] * row["weight"] for row in self.app_rows) / total

    @property
    def deadline_miss_rate(self) -> float:
        return self._weighted("miss_rate")

    @property
    def p50_latency_us(self) -> float:
        return self._weighted("p50_us")

    @property
    def p95_latency_us(self) -> float:
        return self._weighted("p95_us")

    @property
    def p99_latency_us(self) -> float:
        return self._weighted("p99_us")

    @property
    def jitter_us(self) -> float:
        return self._weighted("jitter_us")

    @property
    def energy_per_window_uj(self) -> float:
        return self._weighted("energy_per_window_uj")

    def summary_row(self) -> Dict[str, object]:
        row = super().summary_row()
        row.update({
            "miss_rate": round(self.deadline_miss_rate, 4),
            "p50_us": round(self.p50_latency_us, 2),
            "p99_us": round(self.p99_latency_us, 2),
            "jitter_us": round(self.jitter_us, 2),
            "energy_per_window_uj": round(self.energy_per_window_uj, 4),
        })
        return row


class AppEvaluator:
    """Compiles and measures application mixes on candidate machines."""

    def __init__(self, mix: ApplicationMix, size: Optional[int] = None,
                 opt_level: int = 2, seed: int = 1234,
                 engine: str = "compiled", fidelity: str = "cycle",
                 pipeline: Optional[CompilePipeline] = None) -> None:
        validate_engine(engine, "evaluation")
        validate_engine(fidelity, "fidelity")
        self.mix = mix
        #: accepted for recipe compatibility with the kernel evaluator;
        #: applications carry their own window sizes and stream seeds.
        self.size = size
        self.seed = seed
        self.opt_level = opt_level
        self.engine = engine
        self.fidelity = fidelity
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            from ..api.session import default_pipeline

            self.pipeline = default_pipeline()
        # Pre-compile every node's machine-independent IR once.
        from ..gen.generator import generate_kernel

        self._modules: Dict[Tuple[str, str], object] = {}
        for spec, _weight in mix.applications():
            for node in spec.nodes:
                kernel = generate_kernel(node.spec).kernel
                module, _records = self.pipeline.front(
                    kernel.source, kernel.name, opt_level=self.opt_level)
                self._modules[(spec.name, node.name)] = module

    @property
    def application_json(self) -> str:
        """Canonical mix serialization — the recipe field that makes
        evaluation cache keys content-addressed across processes."""
        return self.mix.to_json()

    @property
    def exec_engine(self) -> str:
        """The functional engine node windows actually execute on."""
        return "compiled" if self.engine == "cycle" else self.engine

    def with_fidelity(self, fidelity: str) -> "AppEvaluator":
        """This evaluator's recipe at another fidelity (shared pipeline)."""
        if fidelity == self.fidelity:
            return self
        return AppEvaluator(self.mix, size=self.size,
                            opt_level=self.opt_level, seed=self.seed,
                            engine=self.engine, fidelity=fidelity,
                            pipeline=self.pipeline)

    # ------------------------------------------------------------------
    def evaluate(self, machine: MachineDescription,
                 custom_area_budget: float = 0.0) -> AppEvaluation:
        """Measure ``machine`` on the mix; optionally customize its ISA."""
        evaluation = AppEvaluation(machine=machine, fidelity=self.fidelity)
        library = ExtensionLibrary()
        working_machine = machine

        modules = {key: module.clone()
                   for key, module in self._modules.items()}

        if custom_area_budget > 0.0:
            customizer = IsaCustomizer(
                machine,
                enumeration=EnumerationConfig(max_outputs=1),
                selection_config=SelectionConfig(
                    area_budget_kgates=custom_area_budget
                ),
                library=library,
            )
            weighted = [(modules[(spec.name, node.name)], weight)
                        for spec, weight in self.mix.applications()
                        for node in spec.nodes]
            result = customizer.customize_for_area(
                weighted, name=f"{machine.name}+x{int(custom_area_budget)}"
            )
            working_machine = result.machine
            evaluation.machine = working_machine
            evaluation.customized = True
            evaluation.custom_ops = result.report.operations_selected

        from ..core.library import global_extension_library

        global_lib = global_extension_library()
        added = []
        for entry in library:
            if entry.name not in global_lib:
                global_lib.register(entry.pattern, entry.operation)
                added.append(entry.name)

        try:
            for spec, weight in self.mix.applications():
                try:
                    runner = AppRunner(
                        spec, working_machine, engine=self.exec_engine,
                        opt_level=self.opt_level, fidelity=self.fidelity,
                        pipeline=self.pipeline,
                        modules={node.name: modules[(spec.name, node.name)]
                                 for node in spec.nodes})
                    report = runner.run()
                    evaluation.measurements.append(
                        self._measurement(spec, weight, report, runner))
                    row = report.summary_row()
                    row["weight"] = weight
                    evaluation.app_rows.append(row)
                except Exception:  # noqa: BLE001 - infeasible point
                    evaluation.measurements.append(KernelMeasurement(
                        kernel=spec.name, weight=weight, cycles=0,
                        correct=False, energy_uj=0.0, code_bytes=0, ipc=0.0,
                    ))
                    evaluation.app_rows.append({
                        "application": spec.name, "weight": weight,
                        "correct": False, "miss_rate": 1.0, "p50_us": 0.0,
                        "p95_us": 0.0, "p99_us": 0.0, "jitter_us": 0.0,
                        "energy_per_window_uj": 0.0,
                    })
        finally:
            for name in added:
                global_lib.remove(name)

        return evaluation

    @staticmethod
    def _measurement(spec: ApplicationSpec, weight: float,
                     report: AppReport, runner: AppRunner
                     ) -> KernelMeasurement:
        code_bytes = runner.total_code_bytes
        return KernelMeasurement(
            kernel=spec.name,
            weight=weight,
            cycles=round(report.cycles_per_window),
            correct=report.correct,
            energy_uj=report.energy_per_window_uj,
            code_bytes=code_bytes,
            ipc=0.0,
        )
