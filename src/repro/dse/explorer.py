"""Design-space exploration: fitting an architecture to an application.

The explorer evaluates design points against a workload mix and returns
the evaluations, the Pareto front over (time, area), and the best point
under a chosen scalar objective.  Three search strategies are provided:

* exhaustive — enumerate the whole (small) space,
* greedy — coordinate ascent from a starting point, one axis at a time,
* annealing — simulated annealing over the axes with a deterministic RNG.

Exploration re-runs the full toolchain (compile, optionally customize,
schedule, simulate) for every point, which is exactly the "explore a
design space of architectures to fit one to a given application" loop the
paper describes the table-driven toolchain enabling.
"""

from __future__ import annotations

import dataclasses
import json
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .objectives import Evaluation, Evaluator
from .pareto import knee_point, pareto_front
from .space import DesignPoint, DesignSpace


def _app_metric(evaluation: Evaluation, attr: str, objective: str) -> float:
    """Fetch a real-time metric; only application evaluations carry them."""
    value = getattr(evaluation, attr, None)
    if value is None:
        raise ValueError(
            f"objective '{objective}' needs real-time application metrics; "
            f"explore over an ApplicationMix (repro.dse.AppEvaluator), not "
            f"a kernel mix")
    return value


#: scalar objectives: map an Evaluation to a figure of merit (higher = better).
#: The real-time objectives need an :class:`~repro.dse.app.AppEvaluation`
#: (explorations over an application mix).  ``deadline_miss_rate``
#: breaks ties among deadline-meeting machines by energy per window —
#: "meet every deadline at least energy" — which the miss-rate term
#: dominates by construction (miss-rate granularity is 1/windows,
#: many orders above the scaled energy term).
OBJECTIVES: Dict[str, Callable[[Evaluation], float]] = {
    "performance": lambda e: e.performance,
    "perf_per_area": lambda e: e.perf_per_area,
    "perf_per_watt": lambda e: e.perf_per_watt,
    "deadline_miss_rate": lambda e: -(
        _app_metric(e, "deadline_miss_rate", "deadline_miss_rate")
        + 1e-9 * _app_metric(e, "energy_per_window_uj", "deadline_miss_rate")),
    "p99_latency": lambda e: -_app_metric(e, "p99_latency_us", "p99_latency"),
    "energy_per_window": lambda e: -_app_metric(
        e, "energy_per_window_uj", "energy_per_window"),
}

#: version of ExplorationResult's exported dict/JSON form.
RESULT_SCHEMA_VERSION = 1


@dataclass
class ExplorationResult:
    """Everything an exploration run produced."""

    evaluations: List[Evaluation] = field(default_factory=list)
    best: Optional[Evaluation] = None
    objective: str = "perf_per_area"
    points_evaluated: int = 0
    #: timing-model fidelity the run used: "cycle", "trace", or
    #: "trace+rescore" (screened at trace fidelity, Pareto frontier
    #: re-scored at cycle fidelity — per-row fidelity is in the rows).
    fidelity: str = "cycle"
    #: rescoring accounting when fidelity == "trace+rescore": the number
    #: of points re-scored at cycle fidelity and the rescoring batch's
    #: cache counters (None otherwise).
    rescore: Optional[Dict[str, object]] = None

    def feasible(self) -> List[Evaluation]:
        return [e for e in self.evaluations if e.feasible]

    def pareto(self) -> List[Evaluation]:
        """Pareto front over (execution time, core area)."""
        return pareto_front(
            self.feasible(),
            key=lambda e: (e.weighted_time_us, e.area_kgates),
        )

    def knee(self) -> Optional[Evaluation]:
        return knee_point(
            self.feasible(),
            key=lambda e: (e.weighted_time_us, e.area_kgates),
        )

    def table(self) -> List[Dict[str, object]]:
        rows = [e.summary_row() for e in self.evaluations]
        rows.sort(key=lambda r: (-int(r["feasible"]), r["time_us"]))
        return rows

    def to_rows(self) -> List[Dict[str, object]]:
        """Rows suitable for printing or JSON export (alias of table)."""
        return self.table()

    def to_dict(self) -> Dict[str, object]:
        """Schema-versioned, JSON-representable form of the whole run."""
        knee = self.knee()
        return {
            "kind": "exploration_result",
            "schema_version": RESULT_SCHEMA_VERSION,
            "objective": self.objective,
            "fidelity": self.fidelity,
            "rescore": self.rescore,
            "points_evaluated": self.points_evaluated,
            "best": self.best.summary_row() if self.best else None,
            "knee": knee.summary_row() if knee else None,
            "pareto": [e.machine.name for e in
                       sorted(self.pareto(), key=lambda e: e.area_kgates)],
            "rows": self.to_rows(),
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)


class Explorer:
    """Searches a :class:`DesignSpace` for the best fit to a workload mix."""

    def __init__(self, evaluator: Evaluator, objective: str = "perf_per_area",
                 batch: Optional["BatchEvaluator"] = None,
                 seed: int = 7) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective '{objective}'; options: {', '.join(OBJECTIVES)}"
            )
        from ..exec.batch import BatchEvaluator

        self.evaluator = evaluator
        self.objective = objective
        self._objective_fn = OBJECTIVES[objective]
        #: default seed for the stochastic strategies: one explicit place
        #: to pin so repeated sweeps are bit-reproducible end to end.
        self.seed = seed
        #: all evaluation flows through the batch layer (memoized by the
        #: design point's cache key; optionally parallel and disk-backed).
        self.batch = batch if batch is not None else BatchEvaluator(evaluator)

    # ------------------------------------------------------------------
    def _new_result(self) -> ExplorationResult:
        return ExplorationResult(
            objective=self.objective,
            fidelity=getattr(self.evaluator, "fidelity", "cycle"))

    def _evaluate(self, point: DesignPoint) -> Evaluation:
        return self.batch.evaluate(point)

    def _score(self, evaluation: Evaluation) -> float:
        if not evaluation.feasible:
            return float("-inf")
        return self._objective_fn(evaluation)

    # ------------------------------------------------------------------
    # Strategies.
    # ------------------------------------------------------------------
    def exhaustive(self, space: DesignSpace) -> ExplorationResult:
        """Evaluate every point of ``space`` (in one batch)."""
        result = self._new_result()
        points = list(space.points())
        for evaluation in self.batch.evaluate_many(points):
            result.evaluations.append(evaluation)
            result.points_evaluated += 1
            if result.best is None or self._score(evaluation) > self._score(result.best):
                result.best = evaluation
        return result

    def greedy(self, space: DesignSpace,
               start: Optional[DesignPoint] = None,
               max_rounds: int = 4) -> ExplorationResult:
        """Coordinate ascent: improve one axis at a time until no axis helps."""
        axes: Dict[str, Sequence] = {
            "issue_width": space.issue_widths,
            "registers": space.register_counts,
            "clusters": space.cluster_counts,
            "mul_units": space.mul_unit_counts,
            "mem_units": space.mem_unit_counts,
            "custom_area_budget": space.custom_budgets,
        }
        current = start or DesignPoint(
            issue_width=min(space.issue_widths),
            registers=min(space.register_counts),
            clusters=min(space.cluster_counts),
            mul_units=min(space.mul_unit_counts),
            mem_units=min(space.mem_unit_counts),
            custom_area_budget=min(space.custom_budgets),
        )
        result = self._new_result()
        seen = {current.cache_key()}
        best_eval = self._evaluate(current)
        result.evaluations.append(best_eval)
        result.points_evaluated += 1

        for _ in range(max_rounds):
            improved = False
            for axis, options in axes.items():
                for option in options:
                    if getattr(current, axis) == option:
                        continue
                    candidate = dataclasses.replace(current, **{axis: option})
                    if candidate.issue_width % candidate.clusters != 0:
                        continue
                    evaluation = self._evaluate(candidate)
                    if candidate.cache_key() not in seen:
                        seen.add(candidate.cache_key())
                        result.evaluations.append(evaluation)
                        result.points_evaluated += 1
                    if self._score(evaluation) > self._score(best_eval):
                        best_eval = evaluation
                        current = candidate
                        improved = True
            if not improved:
                break

        result.best = best_eval
        return result

    def annealing(self, space: DesignSpace, iterations: int = 40,
                  seed: Optional[int] = None,
                  initial_temperature: float = 1.0,
                  rng: Optional[random.Random] = None) -> ExplorationResult:
        """Simulated annealing with a deterministic RNG.

        Candidate selection does not depend on evaluation outcomes, so the
        whole candidate sequence is drawn up front and evaluated as one
        batch; the annealing walk is then replayed over the prefetched
        evaluations.  The random source is explicit: pass ``rng`` to share
        a generator across calls, or ``seed`` to pin this call; otherwise
        the explorer's ``seed`` is used, so repeated runs of the same
        explorer configuration are bit-reproducible.
        """
        if rng is None:
            rng = random.Random(self.seed if seed is None else seed)
        points = list(space.points())
        if not points:
            raise ValueError("design space is empty")
        current = rng.choice(points)
        candidates = [rng.choice(points) for _ in range(iterations)]
        prefetched = self.batch.evaluate_many([current] + candidates)
        current_eval = prefetched[0]
        best_eval = current_eval

        result = self._new_result()
        seen = {current.cache_key()}
        result.evaluations.append(current_eval)
        result.points_evaluated += 1

        for step, (candidate, evaluation) in enumerate(
                zip(candidates, prefetched[1:])):
            temperature = initial_temperature * (1.0 - step / max(1, iterations))
            if candidate.cache_key() not in seen:
                seen.add(candidate.cache_key())
                result.evaluations.append(evaluation)
                result.points_evaluated += 1
            delta = self._score(evaluation) - self._score(current_eval)
            accept = delta > 0
            if not accept and temperature > 0 and math.isfinite(delta):
                accept = rng.random() < math.exp(delta / max(temperature, 1e-6))
            if accept:
                current, current_eval = candidate, evaluation
            if self._score(evaluation) > self._score(best_eval):
                best_eval = evaluation

        result.best = best_eval
        return result

    # ------------------------------------------------------------------
    # Screen-then-rescore: trace-fidelity sweep, cycle-fidelity frontier.
    # ------------------------------------------------------------------
    def screen_then_rescore(self, space: DesignSpace,
                            strategy: str = "exhaustive",
                            **strategy_kwargs) -> ExplorationResult:
        """Screen ``space`` at trace fidelity, re-score its Pareto frontier
        at cycle fidelity.

        The named ``strategy`` runs with a trace-fidelity evaluator (the
        explorer's own when it already is one), then every evaluation on
        the resulting (time, area) Pareto frontier — plus the screening
        winner, which objectives like perf-per-watt may place off that
        frontier — is re-measured by the cycle simulator and substituted
        into the result; ``best`` is recomputed over the re-scored set.
        Each row's ``fidelity`` field records which model produced its
        numbers, and ``result.rescore`` records how much cycle-fidelity
        work the rescoring pass did.
        """
        from ..exec.batch import BatchEvaluator

        if strategy not in ("exhaustive", "greedy", "annealing"):
            raise ValueError(
                f"unknown strategy '{strategy}'; options: exhaustive, "
                f"greedy, annealing")

        def _sibling(fidelity: str) -> "Explorer":
            if getattr(self.evaluator, "fidelity", "cycle") == fidelity:
                return self
            evaluator = self.evaluator.with_fidelity(fidelity)
            batch = BatchEvaluator(evaluator, workers=self.batch.workers,
                                   cache_dir=self.batch.cache_dir,
                                   store=self.batch.store)
            return Explorer(evaluator, objective=self.objective, batch=batch,
                            seed=self.seed)

        screener = _sibling("trace")
        result = getattr(screener, strategy)(space, **strategy_kwargs)

        candidates = result.pareto()
        if result.best is not None:
            candidates = candidates + [result.best]
        points, seen = [], set()
        for evaluation in candidates:
            point = getattr(evaluation, "point", None)
            if point is not None and point.cache_key() not in seen:
                seen.add(point.cache_key())
                points.append(point)
        result.fidelity = "trace+rescore"
        if not points:
            return result

        # The rescoring pass always gets a fresh BatchEvaluator over the
        # same store: the memo is shared, but its stats window covers
        # exactly the rescoring work (reusing self.batch would fold any
        # earlier sweeps into the accounting).
        rescore_batch = BatchEvaluator(self.evaluator.with_fidelity("cycle"),
                                       workers=self.batch.workers,
                                       cache_dir=self.batch.cache_dir,
                                       store=self.batch.store)
        rescored = rescore_batch.evaluate_many(points)
        by_key = {point.cache_key(): evaluation
                  for point, evaluation in zip(points, rescored)}
        result.evaluations = [
            by_key.get(e.point.cache_key(), e)
            if getattr(e, "point", None) is not None else e
            for e in result.evaluations
        ]
        result.best = max(rescored, key=self._score)
        result.rescore = {"points": len(points),
                          "batch": rescore_batch.stats.as_dict()}
        return result
