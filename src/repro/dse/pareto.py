"""Pareto-front utilities for multi-objective architecture selection."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True if objective vector ``a`` dominates ``b`` (all <=, one <).

    Objectives are costs: smaller is better for every component.
    """
    if len(a) != len(b):
        raise ValueError("objective vectors must have the same length")
    at_least_one_strict = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            at_least_one_strict = True
    return at_least_one_strict


def pareto_front(items: Sequence, key: Callable[[object], Sequence[float]]) -> List:
    """Return the non-dominated subset of ``items`` under cost vectors ``key``."""
    front: List = []
    vectors = [(item, tuple(key(item))) for item in items]
    for item, vector in vectors:
        dominated = False
        for _, other in vectors:
            if other is vector:
                continue
            if dominates(other, vector):
                dominated = True
                break
        if not dominated:
            front.append(item)
    return front


def normalize(values: Sequence[float]) -> List[float]:
    """Scale a list of values to [0, 1] (constant lists map to zeros)."""
    low = min(values)
    high = max(values)
    if high == low:
        return [0.0 for _ in values]
    return [(v - low) / (high - low) for v in values]


def knee_point(items: Sequence, key: Callable[[object], Sequence[float]]):
    """Return the Pareto point closest to the normalized ideal corner."""
    front = pareto_front(items, key)
    if not front:
        return None
    vectors = [key(item) for item in front]
    dims = len(vectors[0])
    columns = [normalize([v[d] for v in vectors]) for d in range(dims)]
    best_index = 0
    best_distance = float("inf")
    for i in range(len(front)):
        distance = sum(columns[d][i] ** 2 for d in range(dims)) ** 0.5
        if distance < best_distance:
            best_distance = distance
            best_index = i
    return front[best_index]
