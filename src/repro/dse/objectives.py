"""Evaluation of one machine against one workload mix.

The evaluator compiles each kernel of a weighted mix for the candidate
machine (optionally customizing the ISA first, with a private extension
library so candidate machines do not contaminate each other), runs the
cycle simulator, and reduces the measurements to the objective metrics
the paper's argument uses: execution time, silicon area, energy, code
size, and their ratios.

Two measurement engines are available (``engine=``):

* ``"cycle"`` (default) — the cycle-accurate simulator executes the
  scheduled code directly: exact timing including cache behaviour.
* ``"compiled"`` — the threaded-code engine
  (:class:`repro.exec.CompiledSimulator`) executes the kernel for the
  value and dynamic profile, and cycles are reduced *statically* from the
  schedule: measured block visit counts times each block's schedule
  length, plus call and taken-branch penalties.  This matches the cycle
  simulator except for cache-stall modelling (no i/d-cache stalls and no
  cache access energy) and is several times faster — the screening mode
  for large design-space sweeps.
* ``"native"`` — same static timing reduction, but the kernel executes
  on the generated-C engine (:class:`repro.exec.NativeSimulator`, ``.so``
  artifacts shared through the pipeline store); degrades to
  ``"compiled"`` with one warning when no C compiler is available.

Orthogonally, ``fidelity=`` selects the timing model itself:

* ``"cycle"`` (default) — per-point execution with whichever engine is
  selected above;
* ``"trace"`` — profile-once/estimate-many: each kernel is executed
  exactly once per (module, arguments) pair (the pipeline's ``trace``
  stage) and every design point is priced analytically by the
  :class:`repro.model.RetimingModel`, including modeled cache stalls and
  cache energy.  No per-point simulation at all — the screening mode for
  N×M sweeps, locked to the cycle simulator by the differential harness
  in ``tests/test_trace_model.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.area import estimate_area
from ..arch.machine import MachineDescription
from ..core.customizer import IsaCustomizer
from ..core.identification import EnumerationConfig
from ..core.library import ExtensionLibrary
from ..core.selection import SelectionConfig
from ..backend.mcode import CompiledModule
from ..exec.registry import EVALUATION_ENGINES, validate_engine
from ..pipeline import CompilePipeline
from ..sim.cycle import CycleSimulator
from ..sim.functional import ExecutionProfile
from ..workloads.kernels import Kernel, copy_run_args
from ..workloads.suite import WorkloadMix


@dataclass
class KernelMeasurement:
    """Cycle/energy/code measurements of one kernel on one machine."""

    kernel: str
    weight: float
    cycles: int
    correct: bool
    energy_uj: float
    code_bytes: int
    ipc: float


@dataclass
class Evaluation:
    """Aggregate evaluation of one machine over a workload mix."""

    machine: MachineDescription
    measurements: List[KernelMeasurement] = field(default_factory=list)
    customized: bool = False
    custom_ops: int = 0
    #: which timing model produced these numbers ("cycle" or "trace").
    fidelity: str = "cycle"
    #: the design point this evaluation was requested for, when it came
    #: through the batch layer (lets re-scoring map back to points).
    point: Optional[object] = None

    @property
    def feasible(self) -> bool:
        return bool(self.measurements) and all(m.correct for m in self.measurements)

    @property
    def weighted_cycles(self) -> float:
        return sum(m.cycles * m.weight for m in self.measurements)

    @property
    def weighted_time_us(self) -> float:
        return self.weighted_cycles * self.machine.clock_ns / 1000.0

    @property
    def weighted_energy_uj(self) -> float:
        return sum(m.energy_uj * m.weight for m in self.measurements)

    @property
    def total_code_bytes(self) -> int:
        return sum(m.code_bytes for m in self.measurements)

    @property
    def area_kgates(self) -> float:
        return estimate_area(self.machine).core

    @property
    def performance(self) -> float:
        """Throughput-style metric: 1e6 / weighted execution time (us)."""
        time = self.weighted_time_us
        return 0.0 if time <= 0 else 1e6 / time

    @property
    def perf_per_area(self) -> float:
        area = self.area_kgates
        return 0.0 if area <= 0 else self.performance / area

    @property
    def perf_per_watt(self) -> float:
        energy = self.weighted_energy_uj
        return 0.0 if energy <= 0 else self.performance / energy

    def summary_row(self) -> Dict[str, object]:
        return {
            "machine": self.machine.name,
            "fidelity": self.fidelity,
            "feasible": self.feasible,
            "custom_ops": self.custom_ops,
            "cycles": round(self.weighted_cycles),
            "time_us": round(self.weighted_time_us, 2),
            "area_kgates": round(self.area_kgates, 1),
            "energy_uj": round(self.weighted_energy_uj, 2),
            "code_bytes": self.total_code_bytes,
            "perf": round(self.performance, 3),
            "perf_per_area": round(self.perf_per_area, 5),
        }


class Evaluator:
    """Compiles and measures workload mixes on candidate machines."""

    def __init__(self, mix: WorkloadMix, size: Optional[int] = None,
                 opt_level: int = 3, seed: int = 1234,
                 engine: str = "cycle",
                 fidelity: str = "cycle",
                 pipeline: Optional[CompilePipeline] = None) -> None:
        validate_engine(engine, "evaluation")
        validate_engine(fidelity, "fidelity")
        self.mix = mix
        self.size = size
        self.opt_level = opt_level
        self.seed = seed
        self.engine = engine
        self.fidelity = fidelity
        #: staged compile pipeline shared across design points (and, via
        #: the default session, across evaluators): the machine-
        #: independent front half runs once per kernel, and scheduled
        #: code is reused between machines with equal backend axes.
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            from ..api.session import default_pipeline

            self.pipeline = default_pipeline()
        # Pre-compile the machine-independent IR once per kernel.
        self._modules = {}
        for kernel, weight in mix.kernels():
            module, _records = self.pipeline.front(
                kernel.source, kernel.name, opt_level=self.opt_level)
            self._modules[kernel.name] = module
        # One retiming model per evaluator: d-cache replays are memoized
        # in the pipeline's artifact store, shared across design points.
        from ..model.retime import RetimingModel

        self._retimer = RetimingModel(store=self.pipeline.store)

    def with_fidelity(self, fidelity: str) -> "Evaluator":
        """This evaluator's recipe at another fidelity (shared pipeline)."""
        if fidelity == self.fidelity:
            return self
        return Evaluator(self.mix, size=self.size, opt_level=self.opt_level,
                         seed=self.seed, engine=self.engine,
                         fidelity=fidelity, pipeline=self.pipeline)

    def evaluate(self, machine: MachineDescription,
                 custom_area_budget: float = 0.0) -> Evaluation:
        """Measure ``machine`` on the mix; optionally customize its ISA first."""
        evaluation = Evaluation(machine=machine, fidelity=self.fidelity)
        library = ExtensionLibrary()
        working_machine = machine

        modules = {name: module.clone() for name, module in self._modules.items()}

        if custom_area_budget > 0.0:
            customizer = IsaCustomizer(
                machine,
                enumeration=EnumerationConfig(max_outputs=1),
                selection_config=SelectionConfig(
                    area_budget_kgates=custom_area_budget
                ),
                library=library,
            )
            weighted = [(modules[kernel.name], weight)
                        for kernel, weight in self.mix.kernels()]
            result = customizer.customize_for_area(
                weighted, name=f"{machine.name}+x{int(custom_area_budget)}"
            )
            working_machine = result.machine
            evaluation.machine = working_machine
            evaluation.customized = True
            evaluation.custom_ops = result.report.operations_selected

        # The cycle simulator resolves custom ops through the global library;
        # temporarily install this evaluation's private library entries.
        from ..core.library import global_extension_library

        global_lib = global_extension_library()
        added = []
        for entry in library:
            if entry.name not in global_lib:
                global_lib.register(entry.pattern, entry.operation)
                added.append(entry.name)

        try:
            for kernel, weight in self.mix.kernels():
                module = modules[kernel.name]
                args = kernel.arguments(self.size, seed=self.seed)
                expected = kernel.expected(args)
                try:
                    compiled, report = self.pipeline.backend(module, working_machine)
                    run_args = copy_run_args(args)
                    code_bytes = (report.code.bytes_effective
                                  if report.code is not None else 0)
                    if self.fidelity == "trace":
                        measurement = self._measure_trace(
                            kernel, weight, module, compiled, working_machine,
                            args, expected, code_bytes)
                    elif self.engine in ("compiled", "native"):
                        measurement = self._measure_compiled(
                            kernel, weight, module, compiled, working_machine,
                            run_args, expected, code_bytes)
                    else:
                        simulator = CycleSimulator(compiled)
                        result = simulator.run(kernel.entry, *run_args)
                        measurement = KernelMeasurement(
                            kernel=kernel.name,
                            weight=weight,
                            cycles=result.cycles,
                            correct=(result.value == expected),
                            energy_uj=result.energy_uj,
                            code_bytes=code_bytes,
                            ipc=result.stats.ipc,
                        )
                    evaluation.measurements.append(measurement)
                except Exception:  # noqa: BLE001 - infeasible point
                    evaluation.measurements.append(KernelMeasurement(
                        kernel=kernel.name, weight=weight, cycles=0,
                        correct=False, energy_uj=0.0, code_bytes=0, ipc=0.0,
                    ))
        finally:
            for name in added:
                global_lib.remove(name)

        return evaluation

    # ------------------------------------------------------------------
    # Trace fidelity: profile once, retime analytically per machine.
    # ------------------------------------------------------------------
    def _measure_trace(self, kernel: Kernel, weight: float, module,
                       compiled: CompiledModule, machine: MachineDescription,
                       args: tuple, expected, code_bytes: int
                       ) -> KernelMeasurement:
        trace, _record = self.pipeline.trace(module, kernel.entry, args)
        estimate = self._retimer.price(compiled, machine, trace)
        return KernelMeasurement(
            kernel=kernel.name, weight=weight, cycles=estimate.cycles,
            correct=(trace.value == expected),
            energy_uj=estimate.energy_uj, code_bytes=code_bytes,
            ipc=estimate.stats.ipc,
        )

    # ------------------------------------------------------------------
    # Functional screening engines: fast execution + static timing.
    # ------------------------------------------------------------------
    def _measure_compiled(self, kernel: Kernel, weight: float, module,
                          compiled: CompiledModule, machine: MachineDescription,
                          run_args: tuple, expected, code_bytes: int
                          ) -> KernelMeasurement:
        from ..exec.engine import make_functional_simulator

        simulator = make_functional_simulator(
            module, engine=self.engine, store=self.pipeline.store)
        value = simulator.run(kernel.entry, *run_args)
        cycles, energy_uj, ipc = reduce_schedule_timing(
            compiled, machine, simulator.profile)
        return KernelMeasurement(
            kernel=kernel.name, weight=weight, cycles=cycles,
            correct=(value == expected), energy_uj=energy_uj,
            code_bytes=code_bytes, ipc=ipc,
        )


def reduce_schedule_timing(compiled: CompiledModule,
                           machine: MachineDescription,
                           profile: ExecutionProfile
                           ) -> Tuple[int, float, float]:
    """Reduce a dynamic profile over a static schedule to (cycles, uJ, ipc).

    Mirrors the cycle simulator's accounting exactly except for the cache
    models (deliberately off: the compiled engine records no address
    stream).  One code path with trace fidelity: this is the
    :class:`repro.model.RetimingModel` with cache modelling disabled.
    """
    from ..model.retime import RetimingModel

    estimate = RetimingModel(model_caches=False).price(
        compiled, machine, profile)
    return estimate.stats.cycles, estimate.energy_uj, estimate.stats.ipc
