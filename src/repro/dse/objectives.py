"""Evaluation of one machine against one workload mix.

The evaluator compiles each kernel of a weighted mix for the candidate
machine (optionally customizing the ISA first, with a private extension
library so candidate machines do not contaminate each other), runs the
cycle simulator, and reduces the measurements to the objective metrics
the paper's argument uses: execution time, silicon area, energy, code
size, and their ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.area import estimate_area
from ..arch.machine import MachineDescription
from ..backend.codegen import compile_module
from ..core.customizer import IsaCustomizer
from ..core.identification import EnumerationConfig
from ..core.library import ExtensionLibrary
from ..core.selection import SelectionConfig
from ..opt import optimize
from ..sim.cycle import CycleSimulator
from ..workloads.kernels import Kernel
from ..workloads.suite import WorkloadMix, compile_kernel


@dataclass
class KernelMeasurement:
    """Cycle/energy/code measurements of one kernel on one machine."""

    kernel: str
    weight: float
    cycles: int
    correct: bool
    energy_uj: float
    code_bytes: int
    ipc: float


@dataclass
class Evaluation:
    """Aggregate evaluation of one machine over a workload mix."""

    machine: MachineDescription
    measurements: List[KernelMeasurement] = field(default_factory=list)
    customized: bool = False
    custom_ops: int = 0

    @property
    def feasible(self) -> bool:
        return bool(self.measurements) and all(m.correct for m in self.measurements)

    @property
    def weighted_cycles(self) -> float:
        return sum(m.cycles * m.weight for m in self.measurements)

    @property
    def weighted_time_us(self) -> float:
        return self.weighted_cycles * self.machine.clock_ns / 1000.0

    @property
    def weighted_energy_uj(self) -> float:
        return sum(m.energy_uj * m.weight for m in self.measurements)

    @property
    def total_code_bytes(self) -> int:
        return sum(m.code_bytes for m in self.measurements)

    @property
    def area_kgates(self) -> float:
        return estimate_area(self.machine).core

    @property
    def performance(self) -> float:
        """Throughput-style metric: 1e6 / weighted execution time (us)."""
        time = self.weighted_time_us
        return 0.0 if time <= 0 else 1e6 / time

    @property
    def perf_per_area(self) -> float:
        area = self.area_kgates
        return 0.0 if area <= 0 else self.performance / area

    @property
    def perf_per_watt(self) -> float:
        energy = self.weighted_energy_uj
        return 0.0 if energy <= 0 else self.performance / energy

    def summary_row(self) -> Dict[str, object]:
        return {
            "machine": self.machine.name,
            "feasible": self.feasible,
            "custom_ops": self.custom_ops,
            "cycles": round(self.weighted_cycles),
            "time_us": round(self.weighted_time_us, 2),
            "area_kgates": round(self.area_kgates, 1),
            "energy_uj": round(self.weighted_energy_uj, 2),
            "code_bytes": self.total_code_bytes,
            "perf": round(self.performance, 3),
            "perf_per_area": round(self.perf_per_area, 5),
        }


class Evaluator:
    """Compiles and measures workload mixes on candidate machines."""

    def __init__(self, mix: WorkloadMix, size: Optional[int] = None,
                 opt_level: int = 3, seed: int = 1234) -> None:
        self.mix = mix
        self.size = size
        self.opt_level = opt_level
        self.seed = seed
        # Pre-compile the machine-independent IR once per kernel.
        self._modules = {}
        for kernel, weight in mix.kernels():
            module = compile_kernel(kernel.name)
            optimize(module, level=self.opt_level)
            self._modules[kernel.name] = module

    def evaluate(self, machine: MachineDescription,
                 custom_area_budget: float = 0.0) -> Evaluation:
        """Measure ``machine`` on the mix; optionally customize its ISA first."""
        evaluation = Evaluation(machine=machine)
        library = ExtensionLibrary()
        working_machine = machine

        modules = {name: module.clone() for name, module in self._modules.items()}

        if custom_area_budget > 0.0:
            customizer = IsaCustomizer(
                machine,
                enumeration=EnumerationConfig(max_outputs=1),
                selection_config=SelectionConfig(
                    area_budget_kgates=custom_area_budget
                ),
                library=library,
            )
            weighted = [(modules[kernel.name], weight)
                        for kernel, weight in self.mix.kernels()]
            result = customizer.customize_for_area(
                weighted, name=f"{machine.name}+x{int(custom_area_budget)}"
            )
            working_machine = result.machine
            evaluation.machine = working_machine
            evaluation.customized = True
            evaluation.custom_ops = result.report.operations_selected

        # The cycle simulator resolves custom ops through the global library;
        # temporarily install this evaluation's private library entries.
        from ..core.library import global_extension_library

        global_lib = global_extension_library()
        added = []
        for entry in library:
            if entry.name not in global_lib:
                global_lib.register(entry.pattern, entry.operation)
                added.append(entry.name)

        try:
            for kernel, weight in self.mix.kernels():
                module = modules[kernel.name]
                args = kernel.arguments(self.size, seed=self.seed)
                expected = kernel.expected(args)
                try:
                    compiled, report = compile_module(module, working_machine)
                    simulator = CycleSimulator(compiled)
                    run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
                    result = simulator.run(kernel.entry, *run_args)
                    evaluation.measurements.append(KernelMeasurement(
                        kernel=kernel.name,
                        weight=weight,
                        cycles=result.cycles,
                        correct=(result.value == expected),
                        energy_uj=result.energy_uj,
                        code_bytes=(report.code.bytes_effective
                                    if report.code is not None else 0),
                        ipc=result.stats.ipc,
                    ))
                except Exception:  # noqa: BLE001 - infeasible point
                    evaluation.measurements.append(KernelMeasurement(
                        kernel=kernel.name, weight=weight, cycles=0,
                        correct=False, energy_uj=0.0, code_bytes=0, ipc=0.0,
                    ))
        finally:
            for name in added:
                global_lib.remove(name)

        return evaluation
