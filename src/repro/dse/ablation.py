"""Per-axis ablation of the visible-customization axes (experiment E8).

Starting from a reference machine, each §1.2 axis is varied in isolation
and the workload mix re-measured, quantifying how much each kind of
architecturally visible change contributes on its own: issue width,
register count, clustering, specialised-unit mix, operation latencies,
instruction compression, and application-specific custom operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..arch.machine import MachineDescription
from ..arch.operations import OperationClass
from .objectives import Evaluation, Evaluator


@dataclass
class AblationRow:
    """One ablation measurement relative to the reference machine."""

    axis: str
    variant: str
    evaluation: Evaluation
    reference_cycles: float

    @property
    def speedup(self) -> float:
        cycles = self.evaluation.weighted_cycles
        if cycles <= 0:
            return 0.0
        return self.reference_cycles / cycles

    @property
    def area_ratio(self) -> float:
        return 0.0 if self.evaluation.area_kgates <= 0 else self.evaluation.area_kgates

    def as_dict(self) -> Dict[str, object]:
        return {
            "axis": self.axis,
            "variant": self.variant,
            "feasible": self.evaluation.feasible,
            "cycles": round(self.evaluation.weighted_cycles),
            "speedup_vs_ref": round(self.speedup, 3),
            "area_kgates": round(self.evaluation.area_kgates, 1),
            "code_bytes": self.evaluation.total_code_bytes,
        }


def run_ablation(evaluator: Evaluator, reference: MachineDescription,
                 custom_budget: float = 40.0) -> List[AblationRow]:
    """Vary each visible-customization axis in isolation from ``reference``."""
    rows: List[AblationRow] = []
    reference_eval = evaluator.evaluate(reference)
    reference_cycles = reference_eval.weighted_cycles
    rows.append(AblationRow("reference", reference.name, reference_eval,
                            reference_cycles))

    def add(axis: str, variant: str, machine: MachineDescription,
            budget: float = 0.0) -> None:
        evaluation = evaluator.evaluate(machine, custom_area_budget=budget)
        rows.append(AblationRow(axis, variant, evaluation, reference_cycles))

    # Issue width (multiple visible ALUs).
    for width in (1, 2, 8):
        if width == reference.issue_width:
            continue
        machine = reference.clone(f"{reference.name}-w{width}")
        machine.issue_width = width
        machine.functional_units = []
        machine.__post_init__()
        add("issue_width", f"{width}-issue", machine)

    # Register count.
    for registers in (16, 32, 128):
        if registers == reference.registers_per_cluster:
            continue
        machine = reference.clone(f"{reference.name}-r{registers}")
        machine.registers_per_cluster = registers
        add("registers", f"{registers} regs", machine)

    # Register clusters.
    if reference.issue_width % 2 == 0:
        machine = reference.clone(f"{reference.name}-2cl")
        machine.num_clusters = 2
        machine.registers_per_cluster = max(8, reference.registers_per_cluster // 2)
        add("clusters", "2 clusters", machine)

    # Specialised units: extra multiplier, extra memory port.
    machine = reference.clone(f"{reference.name}-2mul")
    machine.functional_units = [
        FunctionalUnitCopy(fu) for fu in reference.functional_units
    ]
    for fu in machine.functional_units:
        if OperationClass.IMUL in fu.classes:
            fu.count += 1
    add("fu_mix", "extra multiplier", machine)

    machine = reference.clone(f"{reference.name}-2mem")
    machine.functional_units = [
        FunctionalUnitCopy(fu) for fu in reference.functional_units
    ]
    for fu in machine.functional_units:
        if OperationClass.MEM in fu.classes:
            fu.count += 1
    add("fu_mix", "extra memory port", machine)

    # Latencies: slower multiplier / faster memory.
    machine = reference.clone(f"{reference.name}-slowmul")
    machine.latency_overrides = dict(machine.latency_overrides)
    machine.latency_overrides[OperationClass.IMUL] = 4
    add("latency", "4-cycle multiply", machine)

    machine = reference.clone(f"{reference.name}-fastmem")
    machine.latency_overrides = dict(machine.latency_overrides)
    machine.latency_overrides[OperationClass.MEM] = 1
    add("latency", "1-cycle load", machine)

    # Instruction compression.
    machine = reference.clone(f"{reference.name}-nocompress")
    machine.compressed_encoding = not reference.compressed_encoding
    variant = "no compression" if reference.compressed_encoding else "compression"
    add("encoding", variant, machine)

    # Custom operations.
    add("custom_ops", f"ISE budget {custom_budget:.0f} kgates",
        reference.clone(f"{reference.name}-ise"), budget=custom_budget)

    return rows


def FunctionalUnitCopy(fu):
    """Deep-copy one functional unit (dataclass copy with fresh identity)."""
    from ..arch.machine import FunctionalUnit

    return FunctionalUnit(fu.name, frozenset(fu.classes), fu.count)
