"""Design-space exploration: custom-fit processors for an application area."""

from .space import DesignPoint, DesignSpace
from .objectives import Evaluation, Evaluator, KernelMeasurement
from .pareto import dominates, knee_point, normalize, pareto_front
from .explorer import OBJECTIVES, ExplorationResult, Explorer
from .app import AppEvaluation, AppEvaluator, ApplicationMix
from .ablation import AblationRow, run_ablation

__all__ = [
    "DesignPoint", "DesignSpace",
    "Evaluation", "Evaluator", "KernelMeasurement",
    "dominates", "knee_point", "normalize", "pareto_front",
    "OBJECTIVES", "ExplorationResult", "Explorer",
    "AppEvaluation", "AppEvaluator", "ApplicationMix",
    "AblationRow", "run_ablation",
]
