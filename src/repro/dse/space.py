"""The architectural design space ("Custom-Fit Processors").

A :class:`DesignSpace` enumerates machine descriptions over the visible
customization axes of paper §1.2: issue width, register-file size,
clustering, functional-unit mix (specialised ALUs), operation latencies,
instruction compression and the presence of an application-specific
custom-operation budget.  The explorer evaluates points of this space
against a workload and picks the member that fits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..arch.machine import FunctionalUnit, MachineDescription
from ..arch.operations import OperationClass
from ..arch.presets import vliw


@dataclass
class DesignPoint:
    """One concrete assignment of the design-space axes."""

    issue_width: int = 4
    registers: int = 64
    clusters: int = 1
    mul_units: int = 1
    mem_units: int = 1
    has_fpu: bool = False
    mul_latency: int = 2
    mem_latency: int = 2
    compressed_encoding: bool = True
    custom_area_budget: float = 0.0   # 0 disables ISA customization

    def name(self) -> str:
        parts = [f"w{self.issue_width}", f"r{self.registers}", f"c{self.clusters}",
                 f"m{self.mul_units}", f"ls{self.mem_units}"]
        if self.has_fpu:
            parts.append("fpu")
        if self.custom_area_budget > 0:
            parts.append(f"x{int(self.custom_area_budget)}")
        return "-".join(parts)

    def cache_key(self) -> str:
        """Canonical key covering *every* axis.

        Unlike :meth:`name` (a display label that omits latencies and the
        encoding choice), this key distinguishes any two points that could
        evaluate differently; the explorer and the batch evaluator dedupe
        and memoize by it.
        """
        return (f"{self.name()}|lat{self.mul_latency}.{self.mem_latency}"
                f"|enc{int(self.compressed_encoding)}"
                f"|x{self.custom_area_budget:g}")

    def to_machine(self) -> MachineDescription:
        """Instantiate the machine description for this point."""
        units = [
            FunctionalUnit("ialu", frozenset({OperationClass.IALU}),
                           count=self.issue_width),
            FunctionalUnit("imul", frozenset({OperationClass.IMUL}),
                           count=max(1, self.mul_units)),
            FunctionalUnit("mem", frozenset({OperationClass.MEM}),
                           count=max(1, self.mem_units)),
            FunctionalUnit("br", frozenset({OperationClass.BRANCH}), count=1),
            FunctionalUnit("idiv", frozenset({OperationClass.IDIV}), count=1),
        ]
        if self.has_fpu:
            units.append(FunctionalUnit(
                "fpu", frozenset({OperationClass.FPU, OperationClass.FDIV}), count=1
            ))
        base = vliw(self.issue_width, name=self.name(),
                    registers=self.registers, clusters=self.clusters,
                    compressed=self.compressed_encoding)
        machine = MachineDescription(
            name=self.name(),
            issue_width=self.issue_width,
            num_clusters=self.clusters,
            registers_per_cluster=max(8, self.registers // self.clusters),
            functional_units=units,
            latency_overrides={
                OperationClass.IMUL: self.mul_latency,
                OperationClass.MEM: self.mem_latency,
            },
            branch_penalty=base.branch_penalty,
            icache=base.icache,
            dcache=base.dcache,
            compressed_encoding=self.compressed_encoding,
            clock_ns=base.clock_ns,
            notes=f"design point {self.name()}",
        )
        return machine


@dataclass
class DesignSpace:
    """Cartesian product of per-axis choices."""

    issue_widths: Sequence[int] = (1, 2, 4, 8)
    register_counts: Sequence[int] = (32, 64)
    cluster_counts: Sequence[int] = (1, 2)
    mul_unit_counts: Sequence[int] = (1, 2)
    mem_unit_counts: Sequence[int] = (1, 2)
    fpu_options: Sequence[bool] = (False,)
    mul_latencies: Sequence[int] = (2,)
    mem_latencies: Sequence[int] = (2,)
    compression_options: Sequence[bool] = (True,)
    custom_budgets: Sequence[float] = (0.0,)

    def points(self) -> Iterator[DesignPoint]:
        """Yield every feasible design point."""
        for combo in itertools.product(
            self.issue_widths, self.register_counts, self.cluster_counts,
            self.mul_unit_counts, self.mem_unit_counts, self.fpu_options,
            self.mul_latencies, self.mem_latencies, self.compression_options,
            self.custom_budgets,
        ):
            (width, regs, clusters, muls, mems, fpu, mul_lat, mem_lat,
             compressed, budget) = combo
            if width % clusters != 0:
                continue
            if muls > width or mems > width:
                continue
            yield DesignPoint(
                issue_width=width, registers=regs, clusters=clusters,
                mul_units=muls, mem_units=mems, has_fpu=fpu,
                mul_latency=mul_lat, mem_latency=mem_lat,
                compressed_encoding=compressed, custom_area_budget=budget,
            )

    def size(self) -> int:
        return sum(1 for _ in self.points())

    @staticmethod
    def small() -> "DesignSpace":
        """A small space that explores quickly (used by tests/examples)."""
        return DesignSpace(
            issue_widths=(1, 2, 4),
            register_counts=(32, 64),
            cluster_counts=(1,),
            mul_unit_counts=(1, 2),
            mem_unit_counts=(1, 2),
        )
