"""The content-addressed artifact store shared by all pipeline stages.

An :class:`ArtifactStore` maps ``(stage, key)`` to a
:class:`StageArtifact` through two layers:

* an in-memory LRU (always on; ``capacity`` bounds the entry count), and
* an optional on-disk pickle layer (``cache_dir``), used only for lookups
  and puts that ask for persistence — live IR graphs stay in memory, while
  plain-data artifacts such as design-point evaluations survive across
  processes.  Disk I/O is best effort: a corrupt or unpicklable entry is
  simply a miss.

Cache statistics live in the store's :class:`~repro.obs.MetricsRegistry`
as ``store_*{stage=...}`` counters; :class:`StageStats` (defined in
:mod:`repro.obs.metrics`, re-exported here) is a per-stage *view* over
them keeping the historical mutable-attribute surface.  The compile
pipeline surfaces these in ``CompileReport``, the benchmarks print them
as hit-rate tables, and ``python -m repro stats`` exports the same
numbers as Prometheus text — one source of truth.
"""

from __future__ import annotations

import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Protocol, runtime_checkable

from ..obs.metrics import MetricsRegistry, StageStats


@dataclass
class StageArtifact:
    """One cached stage output.

    ``payload`` is the stage's pristine result object — stages hand
    callers a *replica* (clone/rebind/fresh container) of it, never the
    payload itself, so caller-side mutation of the artifact's structure
    can never poison the store (replicas may still share sub-objects the
    stage declares immutable, e.g. scheduled blocks).  ``seconds`` is
    the wall-clock cost of the build that produced it, which lets hits
    report how much work they avoided.
    """

    stage: str
    key: str
    payload: object
    seconds: float = 0.0
    #: which layer satisfied this lookup: "memory", "disk" or "built".
    #: Memory hits return a per-call copy of the record (sharing the
    #: payload), so the field is provenance for the caller that received
    #: it, never shared mutable state.
    source: str = "built"


@runtime_checkable
class SupportsArtifactStore(Protocol):
    """The ``(stage, key)`` store protocol the pipeline layers code to.

    Anything honouring it — the in-process :class:`ArtifactStore`, the
    cross-process :class:`repro.service.DiskArtifactStore` — can back a
    :class:`~repro.pipeline.compile.CompilePipeline`, a
    :class:`~repro.exec.batch.BatchEvaluator`, or a
    :class:`~repro.api.Session`.
    """

    def get(self, stage: str, key: str,
            persist: bool = False) -> Optional["StageArtifact"]:
        """The artifact for ``(stage, key)``, or None on a miss."""

    def put(self, stage: str, key: str, payload: object,
            seconds: float = 0.0, persist: bool = False) -> "StageArtifact":
        """Insert a freshly built payload; returns its artifact record."""

    def stats(self, stage: str) -> StageStats:
        """Counters for ``stage`` (created on first use)."""

    def stats_dict(self) -> Dict[str, Dict[str, object]]:
        """All per-stage counters, for reports and benchmarks."""


class ArtifactStore:
    """Two-layer (memory LRU + optional disk) content-addressed store."""

    def __init__(self, capacity: Optional[int] = 1024,
                 cache_dir: Optional[str] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.capacity = capacity
        self.cache_dir = cache_dir
        if cache_dir is not None:
            os.makedirs(cache_dir, exist_ok=True)
        #: where the counters actually live (``store_*{stage=...}``).
        self.registry = registry if registry is not None else MetricsRegistry()
        self._entries: "OrderedDict[tuple, StageArtifact]" = OrderedDict()
        self._stats: Dict[str, StageStats] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Statistics.
    # ------------------------------------------------------------------
    def _stage_stats(self, stage: str) -> StageStats:
        # Lock-free view lookup; callers may already hold self._lock.
        stats = self._stats.get(stage)
        if stats is None:
            stats = self._stats[stage] = StageStats(self.registry, stage)
        return stats

    def stats(self, stage: str) -> StageStats:
        """Counters for ``stage`` (created on first use)."""
        with self._lock:
            return self._stage_stats(stage)

    def stats_dict(self) -> Dict[str, Dict[str, object]]:
        """All per-stage counters, for reports and benchmarks."""
        with self._lock:
            return {stage: stats.as_dict()
                    for stage, stats in sorted(self._stats.items())}

    def metrics(self) -> Dict[str, object]:
        """A registry snapshot (the same numbers, typed and labeled)."""
        return self.registry.snapshot()

    # ------------------------------------------------------------------
    # Lookup / insert.
    # ------------------------------------------------------------------
    def get(self, stage: str, key: str,
            persist: bool = False) -> Optional[StageArtifact]:
        """Return the artifact for ``(stage, key)`` or None on a miss.

        ``persist`` enables the disk layer for this lookup; a disk hit is
        promoted into the memory layer.
        """
        stats = self.stats(stage)
        with self._lock:
            artifact = self._entries.get((stage, key))
            if artifact is not None:
                stats.hits += 1
                stats.seconds_saved += artifact.seconds
                self._entries.move_to_end((stage, key))
                return replace(artifact, source="memory")
        if persist:
            artifact = self._load_disk(stage, key)
            if artifact is not None:
                # ``artifact`` is this call's private object; the stored
                # copy is never mutated after insertion.
                artifact.source = "disk"
                with self._lock:
                    stats.disk_hits += 1
                    stats.seconds_saved += artifact.seconds
                    self._insert(stage, key, artifact, stats)
                return artifact
        with self._lock:
            stats.misses += 1
        return None

    def put(self, stage: str, key: str, payload: object,
            seconds: float = 0.0, persist: bool = False) -> StageArtifact:
        """Insert a freshly built payload; returns its artifact record."""
        artifact = StageArtifact(stage=stage, key=key, payload=payload,
                                 seconds=seconds, source="built")
        stats = self.stats(stage)
        with self._lock:
            stats.puts += 1
            stats.seconds_built += seconds
            self._insert(stage, key, artifact, stats)
        if persist:
            self._store_disk(stage, key, artifact)
        return artifact

    def _insert(self, stage: str, key: str, artifact: StageArtifact,
                stats: StageStats) -> None:
        # Caller holds the lock.
        self._entries[(stage, key)] = artifact
        self._entries.move_to_end((stage, key))
        if self.capacity is not None and len(self._entries) > self.capacity:
            (evicted_stage, _evicted_key), _artifact = \
                self._entries.popitem(last=False)
            self._stage_stats(evicted_stage).evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, stage_key: tuple) -> bool:
        return stage_key in self._entries

    def clear(self) -> None:
        """Drop the memory layer and zero counters (disk entries kept).

        Counters are zeroed *in place* so existing :class:`StageStats`
        views (e.g. a bound :class:`~repro.exec.cache.CodeCache`) keep
        pointing at live series.
        """
        with self._lock:
            self._entries.clear()
            self._stats.clear()
        self.registry.reset(prefix="store_")

    # ------------------------------------------------------------------
    # Disk layer (best effort).
    # ------------------------------------------------------------------
    def _disk_path(self, stage: str, key: str) -> Optional[str]:
        if self.cache_dir is None:
            return None
        return os.path.join(self.cache_dir, stage, f"{key}.pkl")

    def _load_disk(self, stage: str, key: str) -> Optional[StageArtifact]:
        path = self._disk_path(stage, key)
        if path is None or not os.path.exists(path):
            return None
        try:
            with open(path, "rb") as handle:
                payload, seconds = pickle.load(handle)
            return StageArtifact(stage=stage, key=key, payload=payload,
                                 seconds=seconds, source="disk")
        except Exception:  # noqa: BLE001 - a corrupt entry is a miss
            return None

    def _store_disk(self, stage: str, key: str,
                    artifact: StageArtifact) -> None:
        path = self._disk_path(stage, key)
        if path is None:
            return
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(tmp, "wb") as handle:
                pickle.dump((artifact.payload, artifact.seconds), handle)
            os.replace(tmp, path)
        except Exception:  # noqa: BLE001 - the disk layer is best effort
            if os.path.exists(tmp):
                os.remove(tmp)
