"""Content fingerprints for the staged compilation pipeline.

Every pipeline stage is keyed by a fingerprint of *exactly* the inputs
that can change its output, so artifacts are reused whenever those inputs
are unchanged — across toolchains, evaluators and processes sharing one
:class:`~repro.pipeline.store.ArtifactStore`.  The structural module
fingerprint is :func:`repro.exec.cache.module_fingerprint` (shared with
the threaded-code cache); this module adds the source-text and
machine-axis halves.

Machine-axis → stage dependency table
=====================================

The pipeline is split at the machine-independence boundary: the front
half (``frontend`` + ``optimize``) never reads the machine description,
and the back half (``backend`` + ``encode``) reads only a subset of its
axes.  The table below is the authoritative statement of which
:class:`~repro.arch.machine.MachineDescription` field invalidates which
stage; fields in the last row can differ between two design points while
the points share every compiled artifact wholesale.

======================== ==================== ==========================
MachineDescription axis   consumed by          invalidates stage
======================== ==================== ==========================
issue_width               scheduler, encoding  backend, encode
num_clusters              cluster assigner     backend, encode
registers_per_cluster     register allocator   backend, encode
functional_units          isel, scheduler      backend, encode
latency_overrides         isel, scheduler      backend, encode
intercluster_latency      cluster assigner     backend, encode
custom_ops (name/arity/   isel, encoding       backend, encode
latency)
syllable_bits             code-size model      backend, encode
compressed_encoding       code-size model      backend, encode
name, notes               reports only         none (rebound on reuse)
clock_ns                  timing models        none
branch_penalty            timing models        none
icache, dcache            cache simulators     none
custom op area_kgates,    area/energy models   none
fused_ops
======================== ==================== ==========================

"Rebound on reuse" means a cached back-half artifact compiled for machine
A is handed to a request for machine B (equal backend axes) as a shallow
copy whose ``machine`` reference — the one the simulators read clock,
branch-penalty and cache geometry from — is B, so timing and energy are
always computed from the requesting machine.
"""

from __future__ import annotations

import hashlib

from ..arch.machine import MachineDescription

#: bump when any stage's output format or semantics change incompatibly.
PIPELINE_SCHEMA = 1

#: bump when the KernelTrace format or capture semantics change
#: incompatibly (part of the trace stage's key, so persisted traces from
#: an older schema can never be served after a bump).
TRACE_SCHEMA = 1

#: bump when the native engine's rendered C / runtime contract changes
#: incompatibly (part of the native stage's key, so persisted shared
#: objects from an older schema can never be loaded after a bump).
NATIVE_SCHEMA = 1


def _digest(*parts: object) -> str:
    """SHA-256 hex digest over a canonical joining of ``parts``."""
    text = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def source_fingerprint(source: str, name: str = "module") -> str:
    """Key of the ``frontend`` stage: the C source text and module name."""
    return _digest("frontend", PIPELINE_SCHEMA, name, source)


def spec_fingerprint(family: str, canonical: str) -> str:
    """Content key of a synthetic :class:`~repro.gen.WorkloadSpec`.

    ``canonical`` is the spec's canonical serialized form (sorted-key
    JSON); the digest shares the pipeline schema version so regenerating
    a population after a semantics-changing pipeline bump produces fresh
    keys everywhere at once.
    """
    return _digest("workload-spec", PIPELINE_SCHEMA, family, canonical)


def opt_fingerprint(frontend_key: str, opt_level: int, unroll_factor: int) -> str:
    """Key of the ``optimize`` stage: front-end output + opt configuration."""
    return _digest("optimize", PIPELINE_SCHEMA, frontend_key, opt_level,
                   unroll_factor)


def machine_backend_fingerprint(machine: MachineDescription) -> str:
    """Hash of the machine axes the back half of the pipeline reads.

    Two machines with equal backend fingerprints compile any module to
    bit-identical scheduled code and binaries (see the axis table in the
    module docstring); everything else about them — name, clock, caches,
    branch penalty, energy/area parameters — may differ freely.
    """
    units = ";".join(
        f"{fu.name}:{','.join(sorted(c.value for c in fu.classes))}:{fu.count}"
        for fu in machine.functional_units
    )
    latencies = ";".join(
        f"{c.value}={machine.latency_overrides[c]}"
        for c in sorted(machine.latency_overrides, key=lambda c: c.value)
    )
    custom = ";".join(
        f"{op.name}:{op.num_inputs}:{op.num_outputs}:{op.latency}"
        for op in (machine.custom_ops[n] for n in sorted(machine.custom_ops))
    )
    return _digest(
        "machine", PIPELINE_SCHEMA,
        machine.issue_width, machine.num_clusters,
        machine.registers_per_cluster, units, latencies,
        machine.intercluster_latency, custom,
        machine.syllable_bits, machine.compressed_encoding,
    )


def backend_fingerprint(module_fp: str, machine: MachineDescription) -> str:
    """Key of the ``backend`` stage: structural IR hash × backend axes."""
    return _digest("backend", PIPELINE_SCHEMA, module_fp,
                   machine_backend_fingerprint(machine))


def trace_fingerprint(module_fp: str, entry: str, args_key: str) -> str:
    """Key of the ``trace`` stage: structural IR hash × entry × arguments.

    Entirely machine independent — one profiled run serves every design
    point of a sweep (the retiming model re-prices it per machine).
    """
    return _digest("trace", PIPELINE_SCHEMA, TRACE_SCHEMA, module_fp, entry,
                   args_key)


def encode_fingerprint(backend_key: str) -> str:
    """Key of the ``encode`` stage (fully determined by the backend key)."""
    return _digest("encode", PIPELINE_SCHEMA, backend_key)


def native_fingerprint(module_fp: str, abi_id: str) -> str:
    """Key of the ``native`` stage: structural IR hash × toolchain ABI.

    ``abi_id`` comes from :meth:`repro.exec.native.NativeToolchain.abi_id`
    and covers the compiler identity/version, flags, platform and the
    renderer schema, so a shared :class:`DiskArtifactStore` never serves a
    ``.so`` built by an incompatible toolchain.
    """
    return _digest("native", PIPELINE_SCHEMA, NATIVE_SCHEMA, module_fp,
                   abi_id)
