"""The stage abstraction of the staged compilation pipeline.

A :class:`Stage` is one cacheable unit of compilation work.  It declares

* a ``name`` (the namespace inside the :class:`ArtifactStore`),
* a :meth:`key` — the content fingerprint of exactly the inputs that can
  change its output,
* a :meth:`build` — the actual work, run only on a miss, and
* a :meth:`replicate` — how to turn the pristine stored payload into an
  object the caller may own and mutate (clone an IR module, rebind a
  compiled module to the requesting machine, ...).

:meth:`run` ties them together: fingerprint, look up, build on miss,
store the pristine payload, and hand back a replica plus a
:class:`StageRecord` describing what happened — records accumulate in
``CompileReport.stages`` so every build can show its per-stage timing and
cache behaviour.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Tuple

from ..obs import global_tracer
from .store import ArtifactStore


@dataclass
class StageRecord:
    """What one stage invocation did (surfaced in ``CompileReport``)."""

    stage: str
    key: str
    hit: bool
    #: build seconds on a miss; seconds *avoided* on a hit.
    seconds: float

    def describe(self) -> str:
        verb = "hit" if self.hit else "miss"
        return f"{self.stage}: {verb} {self.key[:12]} ({self.seconds * 1e3:.2f} ms)"


class Stage:
    """Base class for cacheable pipeline stages."""

    #: namespace inside the artifact store.
    name: str = "stage"
    #: whether this stage's payloads may use the store's disk layer
    #: (requires a picklable payload).
    persist: bool = False

    def key(self, *inputs) -> str:
        """Content fingerprint of ``inputs``; equal keys ⇒ equal outputs."""
        raise NotImplementedError

    def build(self, *inputs):
        """Produce the payload for ``inputs`` (cache miss path)."""
        raise NotImplementedError

    def replicate(self, payload, *inputs):
        """A caller-safe view of ``payload`` (default: the payload itself).

        Stages whose payloads are mutable (IR modules) or carry references
        that must be re-pointed at the caller's inputs (compiled code's
        machine) override this; it runs on hits *and* on the miss return
        path, so the stored pristine payload is never handed out.
        """
        return payload

    def run(self, store: ArtifactStore, *inputs) -> Tuple[object, StageRecord]:
        """Look up or build the artifact for ``inputs``."""
        with global_tracer().span(f"stage.{self.name}") as span:
            key = self.key(*inputs)
            artifact = store.get(self.name, key, persist=self.persist)
            if artifact is not None:
                span.note(key=key[:16], hit=True, source=artifact.source)
                return (self.replicate(artifact.payload, *inputs),
                        StageRecord(stage=self.name, key=key, hit=True,
                                    seconds=artifact.seconds))
            start = time.perf_counter()
            payload = self.build(*inputs)
            seconds = time.perf_counter() - start
            store.put(self.name, key, payload, seconds=seconds,
                      persist=self.persist)
            span.note(key=key[:16], hit=False)
            return (self.replicate(payload, *inputs),
                    StageRecord(stage=self.name, key=key, hit=False,
                                seconds=seconds))
