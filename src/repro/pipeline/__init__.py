"""Staged compilation with content-addressed artifact reuse.

The compile side of the mass-customization argument: deriving and
evaluating a new family member is cheap only if the toolchain never
redoes work whose inputs have not changed.  This package mirrors the
cache-first architecture of :mod:`repro.exec` for the compiler itself —
every stage of ``C → IR → scheduled code → binary`` is fingerprinted by
exactly the inputs that can change its output and memoized in a shared
:class:`ArtifactStore`, splitting at the machine-independence boundary so
design-space sweeps pay the front half once per kernel and share the back
half across design points with equal backend axes.
"""

from .compile import (
    BackendStage, CompilePipeline, EncodeStage, FrontendStage, NativeStage,
    OptimizeStage, TraceStage, global_compile_pipeline, rebind_compiled,
    reset_global_compile_pipeline,
)
from .fingerprints import (
    backend_fingerprint, encode_fingerprint, machine_backend_fingerprint,
    native_fingerprint, opt_fingerprint, source_fingerprint,
    trace_fingerprint,
)
from .stage import Stage, StageRecord
from .store import (
    ArtifactStore, StageArtifact, StageStats, SupportsArtifactStore,
)

__all__ = [
    "ArtifactStore", "StageArtifact", "StageStats", "SupportsArtifactStore",
    "Stage", "StageRecord",
    "CompilePipeline", "FrontendStage", "OptimizeStage", "BackendStage",
    "EncodeStage", "TraceStage", "NativeStage", "global_compile_pipeline",
    "reset_global_compile_pipeline", "rebind_compiled",
    "source_fingerprint", "opt_fingerprint", "machine_backend_fingerprint",
    "backend_fingerprint", "encode_fingerprint", "trace_fingerprint",
    "native_fingerprint",
]
