"""The staged C → IR → scheduled-code → binary compilation pipeline.

:class:`CompilePipeline` decomposes what used to be the ad-hoc
``Toolchain.frontend → optimize → compile_module → encode_module`` call
chain into four content-addressed stages sharing one
:class:`~repro.pipeline.store.ArtifactStore`:

* ``frontend``  — C source → raw IR, keyed by the source text;
* ``optimize``  — raw IR → optimized IR, keyed by the frontend key plus
  the optimization configuration;
* ``backend``   — optimized IR → scheduled code + compile report, keyed
  by the *structural* module fingerprint times the machine axes the back
  end actually reads (see :mod:`repro.pipeline.fingerprints`);
* ``encode``    — scheduled code → binary image, keyed by the backend key.

Two machine-independent side stages share the same store: ``trace``
(profile-once kernel traces for analytic retiming) and ``native``
(generated-C shared objects for the ``engine="native"`` execution tier,
keyed by module structure × compiler ABI).

The split sits exactly at the machine-independence boundary, so a
design-space sweep compiles C→optimized-IR once per kernel no matter how
many machines it visits, and design points that differ only in
timing/energy axes (clock, caches, branch penalty) share scheduled code
and binaries wholesale — the compiled artifacts are *rebound* to the
requesting machine on the way out, never rebuilt.
"""

from __future__ import annotations

import copy
import time
from typing import List, Optional, Tuple, Union

from ..arch.machine import MachineDescription
from ..backend.asm import BinaryImage, encode_module
from ..backend.codegen import CompileReport, compile_module
from ..backend.mcode import CompiledFunction, CompiledModule
from ..exec.cache import module_fingerprint
from ..frontend import compile_c
from ..ir import Module
from ..obs import global_tracer
from ..opt import optimize
from .fingerprints import (
    backend_fingerprint, encode_fingerprint, opt_fingerprint,
    source_fingerprint, trace_fingerprint,
)
from .stage import Stage, StageRecord
from .store import ArtifactStore


class FrontendStage(Stage):
    """C source text → raw (unoptimized) IR module."""

    name = "frontend"

    def key(self, source: str, module_name: str) -> str:
        return source_fingerprint(source, module_name)

    def build(self, source: str, module_name: str) -> Module:
        return compile_c(source, module_name=module_name)

    def replicate(self, payload: Module, *inputs) -> Module:
        # Callers optimize/customize modules in place; never leak the
        # pristine stored module.
        return payload.clone()


class OptimizeStage(Stage):
    """Raw IR + optimization configuration → optimized IR module."""

    name = "optimize"

    def key(self, module: Module, frontend_key: str, opt_level: int,
            unroll_factor: int) -> str:
        return opt_fingerprint(frontend_key, opt_level, unroll_factor)

    def build(self, module: Module, frontend_key: str, opt_level: int,
              unroll_factor: int) -> Module:
        # ``module`` is already this stage's private copy (the frontend
        # stage replicates on every return), so in-place optimization is
        # safe.
        optimize(module, level=opt_level, unroll_factor=unroll_factor)
        return module

    def replicate(self, payload: Module, *inputs) -> Module:
        return payload.clone()


class BackendStage(Stage):
    """Optimized IR × backend machine axes → scheduled code + report."""

    name = "backend"

    def key(self, module: Module, machine: MachineDescription) -> str:
        return backend_fingerprint(module_fingerprint(module), machine)

    def build(self, module: Module,
              machine: MachineDescription) -> Tuple[CompiledModule, CompileReport]:
        # Compile against a private snapshot: callers may rewrite their
        # module in place later (ISA customization), and the cached
        # compiled code must keep referencing the IR it was built from.
        snapshot = module.clone()
        return compile_module(snapshot, machine)

    def replicate(self, payload: Tuple[CompiledModule, CompileReport],
                  module: Module, machine: MachineDescription
                  ) -> Tuple[CompiledModule, CompileReport]:
        compiled, report = payload
        rebound = rebind_compiled(compiled, machine)
        out_report = copy.deepcopy(report)
        out_report.machine = machine.name
        out_report.stages = []
        return rebound, out_report


class EncodeStage(Stage):
    """Scheduled code → binary image (keyed by the backend key)."""

    name = "encode"

    def key(self, compiled: CompiledModule, backend_key: str) -> str:
        return encode_fingerprint(backend_key)

    def build(self, compiled: CompiledModule, backend_key: str) -> BinaryImage:
        return encode_module(compiled)

    def replicate(self, payload: BinaryImage, compiled: CompiledModule,
                  backend_key: str) -> BinaryImage:
        # Deep enough a copy that caller-side mutation of words/tables can
        # never reach the stored image.
        return BinaryImage(
            machine_name=compiled.machine.name,
            words={name: list(w) for name, w in payload.words.items()},
            bundle_table={name: list(b)
                          for name, b in payload.bundle_table.items()},
            custom_op_names=list(payload.custom_op_names),
        )


class NativeStage(Stage):
    """IR module × native toolchain ABI → shared-object bytes.

    The build artifact of the generated-C execution engine
    (:mod:`repro.exec.native`): the module is rendered to one C source
    file and compiled into a ``.so`` whose raw bytes are the payload —
    plain data, persisted, so a service's shared
    :class:`~repro.service.DiskArtifactStore` lets every worker reuse
    one compile.  Keyed by the structural module fingerprint times the
    toolchain's ABI digest (compiler identity/version/flags/platform and
    the renderer schema), so an incompatible compiler never serves a
    stale binary.

    Normally constructed *pre-rendered* by
    :meth:`repro.exec.native.NativeCodeCache.get_or_compile` (which owns
    render failures and quarantine); the standalone path renders on
    demand for direct pipeline use.
    """

    name = "native"
    persist = True

    def __init__(self, toolchain=None, rendered=None,
                 key: Optional[str] = None) -> None:
        self._toolchain = toolchain
        self._rendered = rendered
        self._key = key

    def _resolve(self, module: Module):
        from ..exec.native import global_native_toolchain
        from ..exec.nativegen import render_c_program

        if self._toolchain is None:
            self._toolchain = global_native_toolchain()
        if self._rendered is None:
            self._rendered = render_c_program(module)
        return self._toolchain, self._rendered

    def key(self, module: Module) -> str:
        if self._key is not None:
            return self._key
        from .fingerprints import native_fingerprint

        toolchain, _rendered = self._resolve(module)
        self._key = native_fingerprint(module_fingerprint(module),
                                       toolchain.abi_id())
        return self._key

    def build(self, module: Module) -> bytes:
        toolchain, rendered = self._resolve(module)
        return toolchain.compile(rendered.source)


class TraceStage(Stage):
    """Optimized IR × entry × arguments → machine-independent trace.

    The profile-once half of trace-fidelity evaluation: one run of the
    threaded-code engine under a recording memory, reduced to a
    serializable :class:`~repro.model.trace.KernelTrace`.  Keyed by the
    structural module fingerprint and the argument recipe — no machine
    axis, so the artifact is shared by every design point of a sweep.
    Persisted: traces are plain data and survive across processes.
    """

    name = "trace"
    persist = True

    def key(self, module: Module, entry: str, args, args_key: str) -> str:
        return trace_fingerprint(module_fingerprint(module), entry, args_key)

    def build(self, module: Module, entry: str, args, args_key: str):
        from ..model.trace import capture_trace

        return capture_trace(module, entry, args)

    # KernelTrace artifacts are treated as immutable; no replicate().


def rebind_compiled(compiled: CompiledModule,
                    machine: MachineDescription) -> CompiledModule:
    """``compiled`` with its machine reference replaced by ``machine``.

    Valid only when the two machines have equal backend fingerprints: the
    schedule, register assignment and code size are identical, and the
    simulators read the timing-only axes (clock, caches, branch penalty)
    from the rebound reference.  A fresh module/function container is
    always returned (so callers can add or drop functions without
    touching the cached artifact); blocks and register assignments are
    shared, not copied — they are immutable after scheduling.
    """
    rebound = CompiledModule(machine=machine, source=compiled.source)
    for function in compiled:
        rebound.add(CompiledFunction(
            name=function.name, machine=machine, blocks=function.blocks,
            source=function.source, registers=function.registers,
        ))
    return rebound


class CompilePipeline:
    """Content-addressed staged compilation over one artifact store."""

    def __init__(self, store: Optional[ArtifactStore] = None) -> None:
        self.store = store if store is not None else ArtifactStore()
        self.frontend_stage = FrontendStage()
        self.optimize_stage = OptimizeStage()
        self.backend_stage = BackendStage()
        self.encode_stage = EncodeStage()
        self.trace_stage = TraceStage()

    # ------------------------------------------------------------------
    # Front half (machine independent).
    # ------------------------------------------------------------------
    def frontend(self, source: str, name: str = "module"
                 ) -> Tuple[Module, StageRecord]:
        """C source → raw IR (cached by source text)."""
        return self.frontend_stage.run(self.store, source, name)

    def front(self, source: str, name: str = "module", opt_level: int = 2,
              unroll_factor: int = 4) -> Tuple[Module, List[StageRecord]]:
        """C source → optimized IR: the whole machine-independent half.

        An optimize-stage hit short-circuits the frontend stage entirely
        (its key is derivable from the source text alone), so a warm
        sweep consults exactly one stage per kernel.
        """
        stage = self.optimize_stage
        tracer = global_tracer()
        with tracer.span("pipeline.front", module=name, opt_level=opt_level):
            frontend_key = self.frontend_stage.key(source, name)
            opt_key = stage.key(None, frontend_key, opt_level, unroll_factor)
            # The short-circuit hit path bypasses Stage.run, so it opens
            # its own stage.optimize span to keep the trace uniform.
            with tracer.span("stage.optimize") as span:
                cached = self.store.get(stage.name, opt_key)
                if cached is not None:
                    span.note(key=opt_key[:16], hit=True,
                              source=cached.source)
                    record = StageRecord(stage=stage.name, key=opt_key,
                                         hit=True, seconds=cached.seconds)
                    return stage.replicate(cached.payload), [record]
                raw, front_record = self.frontend(source, name)
                start = time.perf_counter()
                module = stage.build(raw, frontend_key, opt_level,
                                     unroll_factor)
                seconds = time.perf_counter() - start
                self.store.put(stage.name, opt_key, module, seconds=seconds)
                span.note(key=opt_key[:16], hit=False)
            opt_record = StageRecord(stage=stage.name, key=opt_key, hit=False,
                                     seconds=seconds)
            return stage.replicate(module), [front_record, opt_record]

    def native(self, module: Module):
        """Load (or compile) ``module``'s native program via this store.

        Returns ``(program, record)``: the loaded
        :class:`~repro.exec.native.NativeProgram` — or ``None`` when the
        native engine cannot serve the module (no compiler, unsupported,
        quarantined) — plus the ``native`` stage's
        :class:`~repro.pipeline.stage.StageRecord` when the store was
        consulted (``None`` for in-memory cache hits and failures).
        Machine independent, like the front half: one ``.so`` serves
        every design point of a sweep.
        """
        from ..exec.native import global_native_cache

        cache = global_native_cache()
        program = cache.get_or_compile(module, store=self.store)
        return program, cache.last_record

    def trace(self, module: Module, entry: str, args):
        """Profile ``entry(args)`` once; returns ``(KernelTrace, record)``.

        Machine independent (front half of the boundary): the trace is
        keyed by module structure and the argument recipe only, so a
        design-space sweep profiles each kernel exactly once no matter
        how many machines it prices.
        """
        from ..model.trace import trace_args_key

        return self.trace_stage.run(self.store, module, entry, args,
                                    trace_args_key(args))

    # ------------------------------------------------------------------
    # Back half (machine dependent).
    # ------------------------------------------------------------------
    def backend(self, module: Module, machine: MachineDescription
                ) -> Tuple[CompiledModule, CompileReport]:
        """Optimized IR → scheduled code for ``machine`` (cached by the
        structural module fingerprint × the machine's backend axes)."""
        (compiled, report), record = self.backend_stage.run(
            self.store, module, machine)
        report.stages.append(record)
        return compiled, report

    def encode(self, compiled: CompiledModule, backend_key: str) -> BinaryImage:
        """Scheduled code → binary image, reusing the backend key."""
        image, _record = self.encode_stage.run(self.store, compiled,
                                               backend_key)
        return image

    def backend_key(self, module: Module, machine: MachineDescription) -> str:
        """The content key the backend stage would use for this pair."""
        return self.backend_stage.key(module, machine)

    # ------------------------------------------------------------------
    # Whole pipeline.
    # ------------------------------------------------------------------
    def build(self, source_or_module: Union[str, Module],
              machine: MachineDescription, name: str = "module",
              opt_level: int = 2, unroll_factor: int = 4
              ) -> Tuple[Module, CompiledModule, CompileReport, str]:
        """Source (or pre-optimized module) → scheduled code + report.

        Returns ``(module, compiled, report, backend_key)``;
        ``report.stages`` records every stage consulted, with hit/miss and
        timing, in pipeline order.
        """
        records: List[StageRecord] = []
        if isinstance(source_or_module, str):
            module, records = self.front(source_or_module, name,
                                         opt_level=opt_level,
                                         unroll_factor=unroll_factor)
        else:
            module = source_or_module
        compiled, report = self.backend(module, machine)
        report.stages = records + report.stages
        return module, compiled, report, report.stages[-1].key

    def stats(self):
        """Per-stage hit/miss/timing counters of the underlying store."""
        return self.store.stats_dict()


# ----------------------------------------------------------------------
# Deprecated process-global accessors.
#
# The process-wide pipeline now lives on the default service session
# (:mod:`repro.api.session`); these shims keep the old spelling working.
# ----------------------------------------------------------------------

def global_compile_pipeline() -> CompilePipeline:
    """Deprecated: the process-wide pipeline.

    Use ``repro.api.default_session().pipeline`` (or construct a private
    :class:`~repro.api.Session`) instead.  When ``REPRO_SERVICE_SOCKET``
    names a running service daemon, the returned pipeline compiles
    against the daemon's shared disk store, so legacy callers join the
    fleet-wide artifact cache.
    """
    import warnings

    warnings.warn(
        "global_compile_pipeline() is deprecated; use "
        "repro.api.default_session().pipeline or a private Session",
        DeprecationWarning, stacklevel=2)
    from ..service.client import service_backed_pipeline

    pipeline = service_backed_pipeline()
    if pipeline is not None:
        return pipeline
    from ..api.session import default_pipeline

    return default_pipeline()


def reset_global_compile_pipeline() -> None:
    """Deprecated: drop the default session (and with it, its pipeline).

    Use ``repro.api.reset_default_session()`` instead.  Also drops the
    cached service-backed pipeline, so the next shim call re-resolves
    ``REPRO_SERVICE_SOCKET``.
    """
    import warnings

    warnings.warn(
        "reset_global_compile_pipeline() is deprecated; use "
        "repro.api.reset_default_session()",
        DeprecationWarning, stacklevel=2)
    from ..api.session import reset_default_session
    from ..service.client import reset_service_pipeline

    reset_service_pipeline()
    reset_default_session()
