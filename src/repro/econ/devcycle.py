"""Product-development-cycle risk model (Barrier 5, §6).

Processor choices are bound ½–1½ years before first shipment, and the
software keeps changing in that window.  Customizing for the exact
application therefore risks customizing for the wrong thing; the paper's
answer (§6.1) is to tailor to an application *area* — keep the
customizations that the whole area shares, and keep enough general
horsepower for the parts that may change.

This module models that trade-off: given a probability that each kernel
of today's workload mix is still representative at shipment, it computes
the expected speedup of (a) a processor customized to the exact mix and
(b) a processor customized to the broader area, relative to the generic
baseline.  The crossover probability — below which area-tailoring wins —
is the quantitative form of §6.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class KernelOutcome:
    """Speedups one customization achieves on one kernel."""

    kernel: str
    #: speedup when the kernel is part of the customization target.
    speedup_if_targeted: float
    #: speedup when the kernel was *not* part of the target (generalization).
    speedup_if_untargeted: float = 1.0


@dataclass
class DevelopmentCycleModel:
    """Expected performance under workload uncertainty."""

    #: months between processor freeze and first shipment.
    freeze_to_ship_months: float = 12.0
    #: per-month probability that a given compute kernel is replaced.
    monthly_change_rate: float = 0.04

    def survival_probability(self) -> float:
        """Probability one kernel is unchanged at shipment."""
        return (1.0 - self.monthly_change_rate) ** self.freeze_to_ship_months

    def expected_speedup(self, outcomes: Sequence[KernelOutcome],
                         weights: Optional[Sequence[float]] = None,
                         survival: Optional[float] = None) -> float:
        """Expected weighted speedup across kernels under churn.

        A kernel that survives gets the targeted speedup; one that is
        replaced by a same-area variant gets the untargeted speedup (the
        customization generalizes only as far as the variant still matches
        the fused operations).
        """
        if not outcomes:
            return 1.0
        weights = list(weights) if weights is not None else [1.0] * len(outcomes)
        survival = self.survival_probability() if survival is None else survival
        total_weight = sum(weights)
        expected = 0.0
        for outcome, weight in zip(outcomes, weights):
            value = (survival * outcome.speedup_if_targeted
                     + (1.0 - survival) * outcome.speedup_if_untargeted)
            expected += weight * value
        return expected / total_weight

    def crossover_survival(self, exact: Sequence[KernelOutcome],
                           area: Sequence[KernelOutcome],
                           weights: Optional[Sequence[float]] = None,
                           resolution: int = 200) -> Optional[float]:
        """Survival probability below which area-tailoring beats exact-tailoring."""
        for step in range(resolution + 1):
            survival = step / resolution
            exact_speedup = self.expected_speedup(exact, weights, survival)
            area_speedup = self.expected_speedup(area, weights, survival)
            if area_speedup >= exact_speedup:
                # Area tailoring wins at and below this survival level; walk
                # up to find where exact tailoring takes over.
                continue
            return max(0.0, (step - 1) / resolution)
        return 1.0

    def months_for_survival(self, survival: float) -> float:
        """How long a freeze-to-ship window yields the given survival."""
        if not 0.0 < survival <= 1.0:
            raise ValueError("survival must be in (0, 1]")
        if self.monthly_change_rate <= 0:
            return float("inf")
        import math

        return math.log(survival) / math.log(1.0 - self.monthly_change_rate)
