"""Volume economics of customized vs. mass-market processors (Barrier 3).

Section 4 poses the product designer's choice: a simple customized
processor versus a larger mass-market part that enjoys huge volumes ("if
it had volume as small as the custom processor, the mass-market processor
might cost twice as much or more...  but with its much larger volume it
might cost less").  This module provides a first-order per-chip cost model
— die cost from area/yield on a learning curve, plus amortised NRE — so
that the crossover between the two options can be computed as a function
of the product's volume, with and without the system-on-chip integration
of §4.1 (modelled in :mod:`repro.econ.soc`).

Constants are representative of a late-1990s 0.25 µm process; as with the
area model only relative behaviour (who is cheaper, where the crossover
falls) is meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


@dataclass
class ProcessAssumptions:
    """Wafer-level process economics."""

    wafer_cost_usd: float = 3500.0
    wafer_diameter_mm: float = 200.0
    defect_density_per_cm2: float = 0.8
    #: silicon area per kgate, in mm^2 (standard-cell density, 0.25 µm).
    mm2_per_kgate: float = 0.035
    #: pad ring / analog / overhead area added to every die.
    fixed_die_overhead_mm2: float = 8.0
    #: learning-curve exponent: unit cost falls by this factor per doubling
    #: of cumulative volume (0.85 = 15% per doubling, the classic figure).
    learning_rate: float = 0.85
    #: volume at which the learning curve is anchored (cost = nominal).
    reference_volume: int = 100_000
    #: test + package cost per good die.
    package_test_usd: float = 4.0


@dataclass
class ChipProject:
    """One chip: its size, NRE and sales volume."""

    name: str
    core_kgates: float
    sram_kbytes: float = 16.0
    nre_usd: float = 2_000_000.0
    volume: int = 100_000
    #: cumulative industry volume for mass-market parts (drives learning).
    cumulative_volume: Optional[int] = None
    margin: float = 1.45   # vendor gross margin multiplier on cost.


#: kgate-equivalents per KB of on-chip SRAM (array + periphery).
SRAM_KGATES_PER_KB = 9.0


def die_area_mm2(project: ChipProject, process: ProcessAssumptions) -> float:
    """Die area from logic gates, SRAM and fixed overhead."""
    logic = project.core_kgates * process.mm2_per_kgate
    sram = project.sram_kbytes * SRAM_KGATES_PER_KB * process.mm2_per_kgate
    return logic + sram + process.fixed_die_overhead_mm2


def gross_dies_per_wafer(area_mm2: float, process: ProcessAssumptions) -> int:
    """Classic gross-die estimate accounting for edge loss."""
    radius = process.wafer_diameter_mm / 2.0
    wafer_area = math.pi * radius * radius
    edge_loss = math.pi * process.wafer_diameter_mm / math.sqrt(2.0 * area_mm2)
    return max(1, int(wafer_area / area_mm2 - edge_loss))


def die_yield(area_mm2: float, process: ProcessAssumptions) -> float:
    """Murphy/Poisson yield model."""
    defects = process.defect_density_per_cm2 * (area_mm2 / 100.0)
    return math.exp(-defects)


def unit_silicon_cost(project: ChipProject, process: ProcessAssumptions) -> float:
    """Cost of one good, packaged, tested die before NRE and margin."""
    area = die_area_mm2(project, process)
    good_dies = gross_dies_per_wafer(area, process) * die_yield(area, process)
    if good_dies < 1:
        good_dies = 1.0
    die_cost = process.wafer_cost_usd / good_dies
    return die_cost + process.package_test_usd


def learning_curve_factor(volume: int, process: ProcessAssumptions) -> float:
    """Cost multiplier vs. the reference volume (higher volume = cheaper)."""
    if volume <= 0:
        return 10.0
    doublings = math.log2(volume / process.reference_volume)
    return process.learning_rate ** doublings


def unit_cost(project: ChipProject,
              process: Optional[ProcessAssumptions] = None) -> float:
    """All-in per-chip cost: silicon on the learning curve plus amortised NRE."""
    process = process or ProcessAssumptions()
    effective_volume = project.cumulative_volume or project.volume
    silicon = unit_silicon_cost(project, process)
    silicon *= learning_curve_factor(effective_volume, process)
    nre = project.nre_usd / max(1, project.volume)
    return silicon + nre


def unit_price(project: ChipProject,
               process: Optional[ProcessAssumptions] = None) -> float:
    """Vendor selling price (cost times margin)."""
    return unit_cost(project, process) * project.margin


def cost_vs_volume(project: ChipProject, volumes: Sequence[int],
                   process: Optional[ProcessAssumptions] = None) -> List[Dict[str, float]]:
    """Per-chip cost of ``project`` swept over product volumes."""
    rows = []
    for volume in volumes:
        swept = ChipProject(
            name=project.name, core_kgates=project.core_kgates,
            sram_kbytes=project.sram_kbytes, nre_usd=project.nre_usd,
            volume=volume, cumulative_volume=project.cumulative_volume,
            margin=project.margin,
        )
        rows.append({"volume": volume, "unit_cost": unit_cost(swept, process),
                     "unit_price": unit_price(swept, process)})
    return rows


def crossover_volume(custom: ChipProject, mass_market: ChipProject,
                     volumes: Sequence[int],
                     process: Optional[ProcessAssumptions] = None) -> Optional[int]:
    """Smallest product volume at which the custom chip is cheaper per unit.

    The mass-market part's silicon rides its own (huge) cumulative volume
    and carries no NRE for the buyer; the custom part pays NRE out of the
    product's own volume.  Below the crossover, buying the mass-market part
    is cheaper; above it, the custom part wins.
    """
    process = process or ProcessAssumptions()
    for volume in sorted(volumes):
        custom_at = ChipProject(
            name=custom.name, core_kgates=custom.core_kgates,
            sram_kbytes=custom.sram_kbytes, nre_usd=custom.nre_usd,
            volume=volume, cumulative_volume=None, margin=custom.margin,
        )
        mass_at = ChipProject(
            name=mass_market.name, core_kgates=mass_market.core_kgates,
            sram_kbytes=mass_market.sram_kbytes, nre_usd=0.0,
            volume=volume, cumulative_volume=mass_market.cumulative_volume,
            margin=mass_market.margin,
        )
        if unit_price(custom_at, process) <= unit_price(mass_at, process):
            return volume
    return None
