"""System-on-chip integration economics (the §4.1 "sea change").

The paper's answer to the volume barrier: once the processor is just a
*core* on a product-specific SoC, every chip is made for the anticipated
use anyway — the discrete mass-market processor's volume advantage no
longer applies, and what matters is the board-level saving from absorbing
components into the SoC versus the incremental silicon the core occupies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .volume import ChipProject, ProcessAssumptions, unit_price


@dataclass
class BoardComponent:
    """A discrete component that SoC integration can absorb."""

    name: str
    unit_cost_usd: float
    board_area_cm2: float
    can_integrate: bool = True
    #: silicon the absorbed function occupies on the SoC.
    integrated_kgates: float = 0.0
    integrated_sram_kbytes: float = 0.0


@dataclass
class SystemDesign:
    """A product's electronics: a processor plus surrounding components."""

    name: str
    processor_kgates: float
    processor_sram_kbytes: float
    components: List[BoardComponent] = field(default_factory=list)
    volume: int = 250_000
    nre_usd: float = 3_000_000.0
    board_cost_per_cm2: float = 0.55
    assembly_cost_per_component: float = 0.35


@dataclass
class SystemCostBreakdown:
    """Per-unit cost of one packaging option (discrete vs. SoC)."""

    option: str
    silicon_usd: float
    components_usd: float
    board_usd: float
    assembly_usd: float

    @property
    def total_usd(self) -> float:
        return self.silicon_usd + self.components_usd + self.board_usd + self.assembly_usd

    def as_dict(self) -> Dict[str, float]:
        return {
            "option": self.option,
            "silicon_usd": round(self.silicon_usd, 2),
            "components_usd": round(self.components_usd, 2),
            "board_usd": round(self.board_usd, 2),
            "assembly_usd": round(self.assembly_usd, 2),
            "total_usd": round(self.total_usd, 2),
        }


def discrete_system_cost(design: SystemDesign,
                         processor_price_usd: float,
                         process: Optional[ProcessAssumptions] = None
                         ) -> SystemCostBreakdown:
    """Cost with a bought-in discrete processor and all components on-board."""
    components = sum(c.unit_cost_usd for c in design.components)
    board_area = sum(c.board_area_cm2 for c in design.components) + 12.0
    assembly = design.assembly_cost_per_component * (len(design.components) + 1)
    return SystemCostBreakdown(
        option="discrete",
        silicon_usd=processor_price_usd,
        components_usd=components,
        board_usd=board_area * design.board_cost_per_cm2,
        assembly_usd=assembly,
    )


def soc_system_cost(design: SystemDesign,
                    process: Optional[ProcessAssumptions] = None
                    ) -> SystemCostBreakdown:
    """Cost with the processor core and integrable components on one SoC."""
    process = process or ProcessAssumptions()
    integrated = [c for c in design.components if c.can_integrate]
    external = [c for c in design.components if not c.can_integrate]

    soc = ChipProject(
        name=f"{design.name}-soc",
        core_kgates=design.processor_kgates
        + sum(c.integrated_kgates for c in integrated),
        sram_kbytes=design.processor_sram_kbytes
        + sum(c.integrated_sram_kbytes for c in integrated),
        nre_usd=design.nre_usd,
        volume=design.volume,
    )
    silicon = unit_price(soc, process)

    components = sum(c.unit_cost_usd for c in external)
    board_area = sum(c.board_area_cm2 for c in external) + 6.0
    assembly = design.assembly_cost_per_component * (len(external) + 1)
    return SystemCostBreakdown(
        option="soc",
        silicon_usd=silicon,
        components_usd=components,
        board_usd=board_area * design.board_cost_per_cm2,
        assembly_usd=assembly,
    )


def integration_advantage(design: SystemDesign, processor_price_usd: float,
                          process: Optional[ProcessAssumptions] = None) -> Dict[str, object]:
    """Compare discrete vs. SoC packaging for one design."""
    discrete = discrete_system_cost(design, processor_price_usd, process)
    soc = soc_system_cost(design, process)
    return {
        "design": design.name,
        "volume": design.volume,
        "discrete_total_usd": round(discrete.total_usd, 2),
        "soc_total_usd": round(soc.total_usd, 2),
        "saving_usd": round(discrete.total_usd - soc.total_usd, 2),
        "soc_wins": soc.total_usd < discrete.total_usd,
    }


def reference_set_top_design(volume: int = 500_000) -> SystemDesign:
    """A representative late-1990s embedded product (set-top/printer class)."""
    return SystemDesign(
        name="set_top",
        processor_kgates=180.0,
        processor_sram_kbytes=24.0,
        volume=volume,
        components=[
            BoardComponent("sdram_controller", 3.2, 2.0, True, 35.0, 0.0),
            BoardComponent("video_dac", 2.8, 1.5, True, 20.0, 0.0),
            BoardComponent("audio_codec_logic", 2.1, 1.2, True, 25.0, 4.0),
            BoardComponent("io_glue", 1.8, 2.5, True, 15.0, 0.0),
            BoardComponent("network_mac", 3.5, 1.8, True, 40.0, 8.0),
            BoardComponent("flash", 4.0, 1.6, False),
            BoardComponent("sdram", 6.5, 2.4, False),
            BoardComponent("analog_front_end", 3.9, 2.2, False),
        ],
    )
