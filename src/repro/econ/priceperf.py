"""Price/performance analysis — the reproduction of the paper's Table 1.

Table 1 of the paper lists late-1998 street prices of Pentium II parts
against Business Winstone and Quake II scores and observes that the
performance/price ratio *falls* sharply toward the high end — i.e. buyers
pay a large premium for the last increments of performance, which is the
paper's §1.4 argument that "small performance improvements matter" and
therefore that customization (which buys performance without buying the
premium bin) is economically interesting.

The published rows are embedded verbatim as the reference dataset; the
module recomputes the two Perf/Price columns, fits the premium curve, and
provides the same analysis for arbitrary (price, performance) tables so
the experiment can also be run on the outputs of our own cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class PricePerformanceRow:
    """One processor SKU: clock, bus, family, price and two benchmark scores."""

    core_mhz: int
    bus_mhz: int
    family: str
    price_usd: float
    business_winstone: float
    quake2_fps: float

    @property
    def winstone_per_dollar(self) -> float:
        return self.business_winstone / self.price_usd

    @property
    def quake_per_dollar(self) -> float:
        return self.quake2_fps / self.price_usd


#: Table 1 of the paper, verbatim (prices: PC Broker Inc, 1998-10-23;
#: performance: Tom's Hardware Guide, same date).
TABLE1_ROWS: List[PricePerformanceRow] = [
    PricePerformanceRow(266, 66, "Klamath", 245.0, 31.0, 47.0),
    PricePerformanceRow(300, 66, "Klamath", 268.0, 33.1, 52.0),
    PricePerformanceRow(333, 66, "Deschutes", 299.0, 35.0, 56.0),
    PricePerformanceRow(350, 100, "Deschutes", 349.0, 36.7, 60.0),
    PricePerformanceRow(400, 100, "Deschutes", 596.0, 39.5, 66.0),
    PricePerformanceRow(450, 100, "Deschutes", 799.0, 41.3, 69.0),
]

#: The Perf/Price columns exactly as printed in the paper (3 decimals).
TABLE1_PUBLISHED_RATIOS: List[Dict[str, float]] = [
    {"winstone_per_dollar": 0.127, "quake_per_dollar": 0.192},
    {"winstone_per_dollar": 0.124, "quake_per_dollar": 0.194},
    {"winstone_per_dollar": 0.117, "quake_per_dollar": 0.187},
    {"winstone_per_dollar": 0.105, "quake_per_dollar": 0.172},
    {"winstone_per_dollar": 0.066, "quake_per_dollar": 0.111},
    {"winstone_per_dollar": 0.052, "quake_per_dollar": 0.086},
]


def compute_table1(rows: Optional[Sequence[PricePerformanceRow]] = None
                   ) -> List[Dict[str, float]]:
    """Recompute Table 1, returning one dict per row (printable as-is)."""
    rows = list(rows) if rows is not None else TABLE1_ROWS
    table: List[Dict[str, float]] = []
    for row in rows:
        table.append({
            "core_mhz": row.core_mhz,
            "bus_mhz": row.bus_mhz,
            "family": row.family,
            "price_usd": row.price_usd,
            "business_winstone": row.business_winstone,
            "quake2_fps": row.quake2_fps,
            "winstone_per_dollar": round(row.winstone_per_dollar, 3),
            "quake_per_dollar": round(row.quake_per_dollar, 3),
        })
    return table


@dataclass
class PremiumAnalysis:
    """Quantifies the high-end premium the table demonstrates."""

    #: ratio of best to worst perf/price across the table (>1 means the
    #: low end is the better deal).
    winstone_ratio_spread: float
    quake_ratio_spread: float
    #: marginal dollars per additional Winstone point, low end vs high end.
    marginal_cost_low: float
    marginal_cost_high: float
    #: price elasticity exponent from a log-log fit price ~ perf**k.
    price_performance_exponent: float


def analyze_premium(rows: Optional[Sequence[PricePerformanceRow]] = None
                    ) -> PremiumAnalysis:
    """Measure how steeply price rises with performance at the high end."""
    rows = list(rows) if rows is not None else TABLE1_ROWS
    if len(rows) < 3:
        raise ValueError("premium analysis needs at least three rows")
    rows = sorted(rows, key=lambda r: r.business_winstone)

    winstone_ratios = [r.winstone_per_dollar for r in rows]
    quake_ratios = [r.quake_per_dollar for r in rows]

    marginal_low = ((rows[1].price_usd - rows[0].price_usd)
                    / max(1e-9, rows[1].business_winstone - rows[0].business_winstone))
    marginal_high = ((rows[-1].price_usd - rows[-2].price_usd)
                     / max(1e-9, rows[-1].business_winstone - rows[-2].business_winstone))

    log_perf = np.log([r.business_winstone for r in rows])
    log_price = np.log([r.price_usd for r in rows])
    exponent = float(np.polyfit(log_perf, log_price, 1)[0])

    return PremiumAnalysis(
        winstone_ratio_spread=max(winstone_ratios) / min(winstone_ratios),
        quake_ratio_spread=max(quake_ratios) / min(quake_ratios),
        marginal_cost_low=marginal_low,
        marginal_cost_high=marginal_high,
        price_performance_exponent=exponent,
    )


def matches_published_ratios(tolerance: float = 0.0015) -> bool:
    """Check our recomputed Perf/Price columns against the printed ones."""
    recomputed = compute_table1()
    for ours, published in zip(recomputed, TABLE1_PUBLISHED_RATIOS):
        if abs(ours["winstone_per_dollar"] - published["winstone_per_dollar"]) > tolerance:
            return False
        if abs(ours["quake_per_dollar"] - published["quake_per_dollar"]) > tolerance:
            return False
    return True


def synthetic_table(prices: Sequence[float], performances: Sequence[float],
                    label: str = "custom") -> List[PricePerformanceRow]:
    """Build a price/performance table from model outputs (same analysis)."""
    if len(prices) != len(performances):
        raise ValueError("prices and performances must have the same length")
    return [
        PricePerformanceRow(
            core_mhz=0, bus_mhz=0, family=label,
            price_usd=float(p), business_winstone=float(perf),
            quake2_fps=float(perf),
        )
        for p, perf in zip(prices, performances)
    ]
