"""Economic models behind the paper's barriers: price/performance (Table 1),
volume/yield chip cost, system-on-chip integration, and development-cycle risk."""

from .priceperf import (
    PremiumAnalysis, PricePerformanceRow, TABLE1_PUBLISHED_RATIOS, TABLE1_ROWS,
    analyze_premium, compute_table1, matches_published_ratios, synthetic_table,
)
from .volume import (
    ChipProject, ProcessAssumptions, cost_vs_volume, crossover_volume,
    die_area_mm2, die_yield, gross_dies_per_wafer, learning_curve_factor,
    unit_cost, unit_price, unit_silicon_cost,
)
from .soc import (
    BoardComponent, SystemCostBreakdown, SystemDesign, discrete_system_cost,
    integration_advantage, reference_set_top_design, soc_system_cost,
)
from .devcycle import DevelopmentCycleModel, KernelOutcome

__all__ = [
    "PremiumAnalysis", "PricePerformanceRow", "TABLE1_PUBLISHED_RATIOS",
    "TABLE1_ROWS", "analyze_premium", "compute_table1",
    "matches_published_ratios", "synthetic_table",
    "ChipProject", "ProcessAssumptions", "cost_vs_volume", "crossover_volume",
    "die_area_mm2", "die_yield", "gross_dies_per_wafer",
    "learning_curve_factor", "unit_cost", "unit_price", "unit_silicon_cost",
    "BoardComponent", "SystemCostBreakdown", "SystemDesign",
    "discrete_system_cost", "integration_advantage",
    "reference_set_top_design", "soc_system_cost",
    "DevelopmentCycleModel", "KernelOutcome",
]
