"""Cycle-level simulation of compiled (scheduled) VLIW code.

The simulator executes the bundles produced by the back end in order,
charging one cycle per bundle plus dynamic penalties for data/instruction
cache misses, taken branches and calls, and accumulating per-operation
energy.  Architectural values are tracked by virtual-register name (the
schedule respects all dependences, so executing operations in bundle
order is semantically exact); spill and inter-cluster copy operations are
timing/energy events only.

The combination of a semantically exact execution with a statically
scheduled timing model is what the paper calls *direct-execution
simulation* (§3.1 item 4): results can always be cross-checked against
the functional reference simulator, and timing comes from the same
machine tables the compiler used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arch.machine import MachineDescription
from ..arch.operations import OperationClass
from ..arch.power import EnergyModel, EnergyReport
from ..backend.mcode import CompiledFunction, CompiledModule, MachineOp
from ..ir import Module, Opcode
from ..ir.types import I32, PointerType
from .cache import Cache, CacheStatistics, make_cache
from .functional import FunctionalSimulator, SimulationError, _Frame, _wrap
from .memory import Memory


@dataclass
class CycleStatistics:
    """Timing breakdown of one cycle-level run."""

    cycles: int = 0
    bundles_executed: int = 0
    operations_executed: int = 0
    nop_slots: int = 0
    branch_stall_cycles: int = 0
    icache_stall_cycles: int = 0
    dcache_stall_cycles: int = 0
    call_overhead_cycles: int = 0
    custom_ops_executed: int = 0
    spill_ops_executed: int = 0
    copy_ops_executed: int = 0

    @property
    def useful_operations(self) -> int:
        return (self.operations_executed - self.spill_ops_executed
                - self.copy_ops_executed)

    @property
    def ipc(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.useful_operations / self.cycles


@dataclass
class SimulationResult:
    """Everything a benchmark needs from one run."""

    value: object
    stats: CycleStatistics
    energy: EnergyReport
    icache: Optional[CacheStatistics]
    dcache: Optional[CacheStatistics]
    machine_name: str
    clock_ns: float

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def time_us(self) -> float:
        return self.stats.cycles * self.clock_ns / 1000.0

    @property
    def energy_uj(self) -> float:
        return self.energy.total_uj


class CycleSimulator:
    """Executes a :class:`CompiledModule` with cycle accounting."""

    #: fixed overhead charged per call/return pair (save/restore, pipeline refill).
    CALL_OVERHEAD = 4

    def __init__(self, compiled: CompiledModule,
                 memory_size: int = 1 << 20,
                 max_steps: int = 50_000_000) -> None:
        if compiled.source is None:
            raise ValueError("compiled module has no source IR attached")
        self.compiled = compiled
        self.machine: MachineDescription = compiled.machine
        self.module: Module = compiled.source
        # The functional core provides operand evaluation, memory and the
        # per-instruction semantics; we drive control flow and timing.
        self.core = FunctionalSimulator(self.module, memory_size=memory_size,
                                        max_steps=max_steps)
        self.memory: Memory = self.core.memory
        self.stats = CycleStatistics()
        self.energy = EnergyModel(self.machine)
        self.icache: Optional[Cache] = make_cache(self.machine.icache)
        self.dcache: Optional[Cache] = make_cache(self.machine.dcache)
        self._code_addresses = self._layout_code()
        self._spill_area = self.memory.allocate(4096, 16)

    # ------------------------------------------------------------------
    # Code layout (for the i-cache model).
    # ------------------------------------------------------------------
    def _layout_code(self) -> Dict[str, Dict[str, int]]:
        addresses: Dict[str, Dict[str, int]] = {}
        cursor = 0x1000
        for function in self.compiled:
            per_block: Dict[str, int] = {}
            for block in function.blocks:
                per_block[block.name] = cursor
                cursor += max(1, sum(self._bundle_bytes(b) for b in block.bundles))
            addresses[function.name] = per_block
        return addresses

    def _bundle_bytes(self, bundle) -> int:
        """Bytes one bundle occupies in instruction memory.

        The compressed (stop-bit) encoding stores only real operations plus
        a template byte; the uncompressed encoding stores a full
        issue-width worth of syllables including NOP slots.
        """
        syllable_bytes = self.machine.syllable_bits // 8
        if self.machine.compressed_encoding:
            return len(bundle.ops) * syllable_bytes + 1
        return self.machine.issue_width * syllable_bytes

    # ------------------------------------------------------------------
    # Public API (mirrors the functional simulator).
    # ------------------------------------------------------------------
    def run(self, function_name: str, *args, copy_back: bool = True) -> SimulationResult:
        """Execute ``function_name`` and return timing, energy and the result."""
        compiled_function = self.compiled.get(function_name)
        source = compiled_function.source
        if source is None:
            raise SimulationError(f"compiled function {function_name} has no source IR")
        if len(args) != len(source.arguments):
            raise SimulationError(
                f"{function_name} expects {len(source.arguments)} arguments, "
                f"got {len(args)}"
            )

        lowered = []
        writebacks = []
        for formal, actual in zip(source.arguments, args):
            if isinstance(actual, (list, tuple)):
                element = I32
                if isinstance(formal.type, PointerType) and formal.type.pointee is not None:
                    element = formal.type.pointee
                address = self.memory.allocate(max(4, element.size * len(actual)),
                                               element.alignment)
                self.memory.write_array(address, list(actual), element)
                lowered.append(address)
                if copy_back and isinstance(actual, list):
                    writebacks.append((actual, address, len(actual), element))
            else:
                lowered.append(_wrap(actual, formal.type))

        value = self._call(compiled_function, lowered)

        for target, address, count, element in writebacks:
            target[:] = self.memory.read_array(address, count, element)

        self.energy.charge_cycles(self.stats.cycles)
        if self.icache is not None:
            self.energy.charge_cache(self.icache.stats.hits, self.icache.stats.misses)
        if self.dcache is not None:
            self.energy.charge_cache(self.dcache.stats.hits, self.dcache.stats.misses)

        return SimulationResult(
            value=value,
            stats=self.stats,
            energy=self.energy.report,
            icache=self.icache.stats if self.icache is not None else None,
            dcache=self.dcache.stats if self.dcache is not None else None,
            machine_name=self.machine.name,
            clock_ns=self.machine.clock_ns,
        )

    # ------------------------------------------------------------------
    # Execution core.
    # ------------------------------------------------------------------
    def _call(self, compiled_function: CompiledFunction, args: Sequence):
        source = compiled_function.source
        frame = _Frame(source)
        for formal, actual in zip(source.arguments, args):
            frame.registers[formal.id] = actual

        self.stats.call_overhead_cycles += self.CALL_OVERHEAD
        self.stats.cycles += self.CALL_OVERHEAD

        scheduled_by_name = {block.name: block for block in compiled_function.blocks}
        block_addresses = self._code_addresses[compiled_function.name]
        ir_block = source.entry

        while True:
            scheduled = scheduled_by_name[ir_block.name]
            self.core.profile.record_block(source.name, ir_block.name)

            # Instruction fetch: one i-cache access per bundle.
            fetch_address = block_addresses[ir_block.name]

            next_block = None
            return_value = None
            returned = False

            self.stats.cycles += scheduled.cycles
            self.stats.bundles_executed += scheduled.cycles

            for index, bundle in enumerate(scheduled.bundles):
                if self.icache is not None:
                    stall = self.icache.access(fetch_address)
                    self.stats.icache_stall_cycles += stall
                    self.stats.cycles += stall
                fetch_address += self._bundle_bytes(bundle)
                self.stats.nop_slots += self.machine.issue_width - len(bundle.ops)

                for op in bundle.ops:
                    outcome = self._execute_op(op, frame, compiled_function)
                    if op.inst.opcode is Opcode.RETURN:
                        return_value = outcome
                        returned = True
                    elif op.inst.is_terminator():
                        next_block = outcome

            if returned:
                return return_value
            if next_block is None:
                raise SimulationError(
                    f"block {ir_block.name} of {compiled_function.name} did not "
                    "transfer control"
                )
            ir_block = next_block

    def _execute_op(self, op: MachineOp, frame: _Frame,
                    compiled_function: CompiledFunction):
        self.stats.operations_executed += 1
        inst = op.inst

        # Timing/energy-only operations.
        if op.is_spill:
            self.stats.spill_ops_executed += 1
            self.energy.charge_operation(OperationClass.MEM)
            if self.dcache is not None:
                stall = self.dcache.access(self._spill_area)
                self.stats.dcache_stall_cycles += stall
                self.stats.cycles += stall
            return None
        if op.is_copy:
            self.stats.copy_ops_executed += 1
            self.energy.charge_operation(OperationClass.IALU)
            return None

        # Energy for real operations.
        if inst.opcode is Opcode.CUSTOM:
            self.stats.custom_ops_executed += 1
            entry = None
            from ..core.library import global_extension_library

            lib_entry = global_extension_library().entry(inst.custom_op)
            fused = lib_entry.operation.fused_ops if lib_entry is not None else 1
            self.energy.charge_custom(fused, len(inst.operands))
        else:
            self.energy.charge_operation(op.op_class, len(inst.operands))

        # Memory timing.
        if inst.opcode in (Opcode.LOAD, Opcode.STORE) and self.dcache is not None:
            address_operand = inst.operands[0] if inst.opcode is Opcode.LOAD else inst.operands[1]
            address = self.core._value(address_operand, frame)
            stall = self.dcache.access(int(address))
            self.stats.dcache_stall_cycles += stall
            self.stats.cycles += stall

        # Branch timing.
        if inst.opcode in (Opcode.JUMP, Opcode.BRANCH, Opcode.CALL, Opcode.RETURN):
            taken = True
            if inst.opcode is Opcode.BRANCH:
                taken = bool(self.core._value(inst.operands[0], frame))
            if taken:
                self.stats.branch_stall_cycles += self.machine.branch_penalty
                self.stats.cycles += self.machine.branch_penalty

        # Calls transfer into compiled code, not the IR interpreter.
        if inst.opcode is Opcode.CALL:
            callee = self.compiled.get(inst.callee)
            arg_values = [self.core._value(a, frame) for a in inst.operands]
            result = self._call(callee, arg_values)
            if inst.dest is not None:
                frame.registers[inst.dest.id] = _wrap(
                    result if result is not None else 0, inst.dest.type
                )
            return None

        # Everything else: exact semantics from the functional core.
        self.core.profile.record_opcode(inst.opcode)
        return self.core._execute(inst, frame)


def simulate(compiled: CompiledModule, function_name: str, *args,
             memory_size: int = 1 << 20) -> SimulationResult:
    """Convenience wrapper: build a simulator and run one function."""
    simulator = CycleSimulator(compiled, memory_size=memory_size)
    return simulator.run(function_name, *args)
