"""Functional (reference) simulator: executes IR directly.

This is the semantic oracle of the whole toolchain: the cycle simulator,
the binary translator and every optimization and customization pass are
validated against it (the "fast and accurate simulation of everything"
discipline of §3.1).  It also doubles as the statistical profiler — block
execution counts collected here drive the ISE selector's benefit
estimates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..ir import (
    Argument, Constant, Function, GlobalVariable, Instruction, IntType, Module,
    Opcode, PointerType, UndefValue, VirtualRegister,
)
from ..ir.types import FloatType, I32, Type
from .memory import Memory, ProgramImage


class SimulationError(Exception):
    """Raised when the simulated program performs an illegal operation."""


@dataclass
class ExecutionProfile:
    """Dynamic statistics of one functional-simulation run."""

    instructions_executed: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)
    block_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    call_counts: Dict[str, int] = field(default_factory=dict)
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0

    def record_opcode(self, opcode: Opcode) -> None:
        self.instructions_executed += 1
        key = opcode.value
        self.opcode_counts[key] = self.opcode_counts.get(key, 0) + 1

    def record_block(self, function_name: str, block_name: str) -> None:
        per_function = self.block_counts.setdefault(function_name, {})
        per_function[block_name] = per_function.get(block_name, 0) + 1

    def apply_to_module(self, module: Module) -> None:
        """Write measured block frequencies back onto the IR.

        This replaces the static loop-nesting estimates with a measured
        profile ("statistical profiling" in the paper's list of post-
        distribution techniques); the ISE selector then weighs candidate
        savings with real execution counts.
        """
        for function in module.functions.values():
            counts = self.block_counts.get(function.name)
            if not counts:
                continue
            for block in function.blocks:
                block.frequency = float(counts.get(block.name, 0))


class _Frame:
    """One activation record of the interpreted program."""

    __slots__ = ("function", "registers", "stack_base")

    def __init__(self, function: Function) -> None:
        self.function = function
        self.registers: Dict[int, object] = {}
        self.stack_base = 0


def _wrap(value, type_: Type):
    if isinstance(type_, IntType):
        return type_.wrap(int(value))
    if isinstance(type_, FloatType):
        if type_.bits == 32:
            return struct.unpack("<f", struct.pack("<f", float(value)))[0]
        return float(value)
    if isinstance(type_, PointerType):
        return int(value) & 0xFFFFFFFF
    return value


class FunctionalSimulator:
    """Interprets IR modules with a flat simulated memory."""

    def __init__(self, module: Module, memory_size: int = 1 << 20,
                 max_steps: int = 50_000_000) -> None:
        self.module = module
        self.image = ProgramImage(module, Memory(memory_size))
        self.memory = self.image.memory
        self.max_steps = max_steps
        self.profile = ExecutionProfile()
        self._steps = 0

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def run(self, function_name: str, *args, copy_back: bool = True):
        """Execute ``function_name`` with Python arguments.

        Integers and floats are passed by value.  Lists (or other mutable
        sequences) of numbers are copied into simulated memory and passed
        as pointers; unless ``copy_back`` is False their final contents are
        copied back into the Python list after the call, so output arrays
        behave naturally.
        """
        function = self.module.get_function(function_name)
        if len(args) != len(function.arguments):
            raise SimulationError(
                f"{function_name} expects {len(function.arguments)} arguments, "
                f"got {len(args)}"
            )

        lowered = []
        writebacks = []
        for formal, actual in zip(function.arguments, args):
            if isinstance(actual, (list, tuple)):
                element = I32
                if isinstance(formal.type, PointerType) and formal.type.pointee is not None:
                    element = formal.type.pointee
                address = self.memory.allocate(max(4, element.size * len(actual)),
                                               element.alignment)
                self.memory.write_array(address, list(actual), element)
                lowered.append(address)
                if copy_back and isinstance(actual, list):
                    writebacks.append((actual, address, len(actual), element))
            else:
                lowered.append(_wrap(actual, formal.type))

        result = self._call(function, lowered)

        for target, address, count, element in writebacks:
            target[:] = self.memory.read_array(address, count, element)
        return result

    def run_profiled(self, function_name: str, *args):
        """Run and then write the measured profile back onto the module."""
        result = self.run(function_name, *args)
        self.profile.apply_to_module(self.module)
        return result

    # ------------------------------------------------------------------
    # Interpreter core.
    # ------------------------------------------------------------------
    def _call(self, function: Function, args: Sequence):
        frame = _Frame(function)
        for formal, actual in zip(function.arguments, args):
            frame.registers[formal.id] = actual

        block = function.entry
        while True:
            self.profile.record_block(function.name, block.name)
            next_block = None
            for inst in block.instructions:
                self._steps += 1
                if self._steps > self.max_steps:
                    raise SimulationError("maximum step count exceeded")
                self.profile.record_opcode(inst.opcode)
                outcome = self._execute(inst, frame)
                if inst.opcode is Opcode.RETURN:
                    return outcome
                if inst.is_terminator():
                    next_block = outcome
                    break
            if next_block is None:
                raise SimulationError(
                    f"fell off the end of block {block.name} in {function.name}"
                )
            block = next_block

    def _value(self, operand, frame: _Frame):
        if isinstance(operand, Constant):
            return operand.value
        if isinstance(operand, GlobalVariable):
            if operand.address is None:
                raise SimulationError(f"global {operand.name} has no address")
            return operand.address
        if isinstance(operand, UndefValue):
            return 0
        if isinstance(operand, (VirtualRegister, Argument)):
            try:
                return frame.registers[operand.id]
            except KeyError:
                raise SimulationError(
                    f"read of undefined register {operand} in {frame.function.name}"
                ) from None
        raise SimulationError(f"cannot evaluate operand {operand!r}")

    def _set(self, inst: Instruction, frame: _Frame, value) -> None:
        frame.registers[inst.dest.id] = _wrap(value, inst.dest.type)

    def _execute(self, inst: Instruction, frame: _Frame):
        op = inst.opcode
        val = lambda i: self._value(inst.operands[i], frame)

        if op is Opcode.MOV:
            self._set(inst, frame, val(0))
        elif op is Opcode.ADD:
            self._set(inst, frame, val(0) + val(1))
        elif op is Opcode.SUB:
            self._set(inst, frame, val(0) - val(1))
        elif op is Opcode.MUL:
            self._set(inst, frame, val(0) * val(1))
        elif op is Opcode.DIV:
            rhs = val(1)
            if rhs == 0:
                raise SimulationError("integer division by zero")
            lhs = val(0)
            quotient = abs(lhs) // abs(rhs)
            self._set(inst, frame, quotient if (lhs >= 0) == (rhs >= 0) else -quotient)
        elif op is Opcode.REM:
            rhs = val(1)
            if rhs == 0:
                raise SimulationError("integer remainder by zero")
            lhs = val(0)
            quotient = abs(lhs) // abs(rhs)
            signed_q = quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            self._set(inst, frame, lhs - signed_q * rhs)
        elif op is Opcode.AND:
            self._set(inst, frame, val(0) & val(1))
        elif op is Opcode.OR:
            self._set(inst, frame, val(0) | val(1))
        elif op is Opcode.XOR:
            self._set(inst, frame, val(0) ^ val(1))
        elif op is Opcode.SHL:
            self._set(inst, frame, val(0) << (val(1) & 31))
        elif op is Opcode.SHR:
            self._set(inst, frame, (val(0) & 0xFFFFFFFF) >> (val(1) & 31))
        elif op is Opcode.SAR:
            self._set(inst, frame, val(0) >> (val(1) & 31))
        elif op is Opcode.MIN:
            self._set(inst, frame, min(val(0), val(1)))
        elif op is Opcode.MAX:
            self._set(inst, frame, max(val(0), val(1)))
        elif op is Opcode.ABS:
            self._set(inst, frame, abs(val(0)))
        elif op is Opcode.NEG:
            self._set(inst, frame, -val(0))
        elif op is Opcode.NOT:
            self._set(inst, frame, ~val(0))
        elif op in (Opcode.FADD,):
            self._set(inst, frame, val(0) + val(1))
        elif op is Opcode.FSUB:
            self._set(inst, frame, val(0) - val(1))
        elif op is Opcode.FMUL:
            self._set(inst, frame, val(0) * val(1))
        elif op is Opcode.FDIV:
            rhs = val(1)
            if rhs == 0:
                raise SimulationError("floating division by zero")
            self._set(inst, frame, val(0) / rhs)
        elif op is Opcode.FNEG:
            self._set(inst, frame, -val(0))
        elif op is Opcode.CMPEQ or op is Opcode.FCMPEQ:
            self._set(inst, frame, int(val(0) == val(1)))
        elif op is Opcode.CMPNE:
            self._set(inst, frame, int(val(0) != val(1)))
        elif op is Opcode.CMPLT or op is Opcode.FCMPLT:
            self._set(inst, frame, int(val(0) < val(1)))
        elif op is Opcode.CMPLE or op is Opcode.FCMPLE:
            self._set(inst, frame, int(val(0) <= val(1)))
        elif op is Opcode.CMPGT:
            self._set(inst, frame, int(val(0) > val(1)))
        elif op is Opcode.CMPGE:
            self._set(inst, frame, int(val(0) >= val(1)))
        elif op is Opcode.SEXT or op is Opcode.ZEXT or op is Opcode.TRUNC:
            self._set(inst, frame, val(0))
        elif op is Opcode.ITOF:
            self._set(inst, frame, float(val(0)))
        elif op is Opcode.FTOI:
            self._set(inst, frame, int(val(0)))
        elif op is Opcode.SELECT:
            self._set(inst, frame, val(1) if val(0) else val(2))
        elif op is Opcode.LOAD:
            self.profile.loads += 1
            address = val(0)
            self._set(inst, frame, self.memory.load(int(address), inst.dest.type))
        elif op is Opcode.STORE:
            self.profile.stores += 1
            value = val(0)
            address = val(1)
            self.memory.store(int(address), value, inst.operands[0].type)
        elif op is Opcode.ALLOCA:
            count = val(0)
            element = inst.alloc_type or I32
            address = self.memory.allocate(max(4, element.size * int(count)),
                                           element.alignment)
            self._set(inst, frame, address)
        elif op is Opcode.JUMP:
            return inst.targets[0]
        elif op is Opcode.BRANCH:
            self.profile.branches += 1
            taken = bool(val(0))
            if taken:
                self.profile.taken_branches += 1
            return inst.targets[0] if taken else inst.targets[1]
        elif op is Opcode.RETURN:
            return self._value(inst.operands[0], frame) if inst.operands else None
        elif op is Opcode.CALL:
            self.profile.call_counts[inst.callee] = (
                self.profile.call_counts.get(inst.callee, 0) + 1
            )
            callee = self.module.get_function(inst.callee)
            arg_values = [self._value(a, frame) for a in inst.operands]
            result = self._call(callee, arg_values)
            if inst.dest is not None:
                self._set(inst, frame, result if result is not None else 0)
        elif op is Opcode.CUSTOM:
            result = self._execute_custom(inst, frame)
            if inst.dest is not None:
                self._set(inst, frame, result)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unimplemented opcode {op}")
        return None

    def _execute_custom(self, inst: Instruction, frame: _Frame):
        """Execute an ISA-extension op by evaluating its registered pattern."""
        from ..core.library import global_extension_library

        pattern = global_extension_library().lookup(inst.custom_op)
        if pattern is None:
            raise SimulationError(
                f"custom op {inst.custom_op} has no registered semantics"
            )
        inputs = [self._value(op, frame) for op in inst.operands]
        return pattern.evaluate(inputs)
