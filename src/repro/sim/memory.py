"""Byte-addressed simulated memory shared by the functional and cycle simulators."""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence

from ..ir import ArrayType, FloatType, IntType, Module, PointerType, Type


class MemoryError_(Exception):
    """Raised for out-of-range or misaligned simulated memory accesses."""


class Memory:
    """A flat little-endian byte-addressed memory.

    Address zero is intentionally left unmapped (a 64-byte guard region) so
    that null-pointer dereferences in kernel code fail loudly instead of
    silently reading zeros.
    """

    GUARD = 64

    def __init__(self, size: int = 1 << 20) -> None:
        self.size = size
        self.data = bytearray(size)
        self._next_free = self.GUARD

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------
    def allocate(self, nbytes: int, alignment: int = 4) -> int:
        """Bump-allocate ``nbytes`` with the requested alignment."""
        if nbytes < 0:
            raise MemoryError_("cannot allocate a negative size")
        address = (self._next_free + alignment - 1) // alignment * alignment
        if address + nbytes > self.size:
            raise MemoryError_(
                f"out of simulated memory: need {nbytes} bytes at {address}"
            )
        self._next_free = address + nbytes
        return address

    @property
    def bytes_allocated(self) -> int:
        return self._next_free - self.GUARD

    # ------------------------------------------------------------------
    # Scalar access.
    # ------------------------------------------------------------------
    def _check(self, address: int, nbytes: int) -> None:
        if address < self.GUARD or address + nbytes > self.size:
            raise MemoryError_(f"access of {nbytes} bytes at {address} is out of range")

    def load(self, address: int, type_: Type) -> int | float:
        """Load a scalar of ``type_`` from ``address``."""
        nbytes = max(1, type_.size)
        self._check(address, nbytes)
        raw = bytes(self.data[address:address + nbytes])
        if isinstance(type_, FloatType):
            return struct.unpack("<f" if type_.bits == 32 else "<d", raw)[0]
        value = int.from_bytes(raw, "little", signed=False)
        if isinstance(type_, IntType):
            return type_.wrap(value)
        return value  # pointers behave as unsigned 32-bit

    def store(self, address: int, value: int | float, type_: Type) -> None:
        """Store a scalar of ``type_`` to ``address``."""
        nbytes = max(1, type_.size)
        self._check(address, nbytes)
        if isinstance(type_, FloatType):
            raw = struct.pack("<f" if type_.bits == 32 else "<d", float(value))
        else:
            width_bits = 8 * nbytes
            masked = int(value) & ((1 << width_bits) - 1)
            raw = masked.to_bytes(nbytes, "little", signed=False)
        self.data[address:address + nbytes] = raw

    # ------------------------------------------------------------------
    # Bulk access (arrays).
    # ------------------------------------------------------------------

    #: struct codes for full-width integer elements (bulk fast path).
    _INT_CODES = {(8, True): "b", (8, False): "B", (16, True): "h",
                  (16, False): "H", (32, True): "i", (32, False): "I",
                  (64, True): "q", (64, False): "Q"}

    def _bulk_code(self, element: Type) -> Optional[str]:
        """One-element struct code when the scalar path is pure pack/unpack."""
        if isinstance(element, FloatType) and element.bits in (32, 64):
            return "f" if element.bits == 32 else "d"
        if (isinstance(element, IntType)
                and element.bits == 8 * element.size):
            return self._INT_CODES.get((element.bits, element.signed))
        if isinstance(element, PointerType):
            return "I"
        return None

    def write_array(self, address: int, values: Sequence, element: Type) -> None:
        code = self._bulk_code(element)
        if code and len(values) > 1:
            nbytes = element.size
            total = nbytes * len(values)
            self._check(address, total)
            if code in ("f", "d"):
                packed = [float(v) for v in values]
            else:
                # store() masks to the element width, so out-of-range ints
                # wrap instead of raising in struct.pack.
                mask = (1 << 8 * nbytes) - 1
                half = (mask + 1) >> 1 if code.islower() else 0
                packed = [((int(v) & mask) ^ half) - half for v in values]
            self.data[address:address + total] = struct.pack(
                f"<{len(values)}{code}", *packed)
            return
        for i, value in enumerate(values):
            self.store(address + i * element.size, value, element)

    def read_array(self, address: int, count: int, element: Type) -> List:
        code = self._bulk_code(element)
        if code and count > 1:
            nbytes = element.size
            total = nbytes * count
            self._check(address, total)
            return list(struct.unpack(
                f"<{count}{code}", bytes(self.data[address:address + total])))
        return [self.load(address + i * element.size, element) for i in range(count)]


class ProgramImage:
    """A module loaded into memory: global addresses plus the memory itself."""

    def __init__(self, module: Module, memory: Optional[Memory] = None) -> None:
        self.module = module
        self.memory = memory or Memory()
        self.global_addresses: Dict[str, int] = {}
        self._load_globals()

    def _load_globals(self) -> None:
        for name, gvar in self.module.globals.items():
            vtype = gvar.value_type
            if isinstance(vtype, ArrayType):
                address = self.memory.allocate(max(4, vtype.size), vtype.alignment)
                if gvar.initializer:
                    self.memory.write_array(address, gvar.initializer, vtype.element)
            else:
                address = self.memory.allocate(max(4, vtype.size), vtype.alignment)
                if gvar.initializer is not None:
                    self.memory.store(address, gvar.initializer, vtype)
            gvar.address = address
            self.global_addresses[name] = address

    def address_of(self, name: str) -> int:
        return self.global_addresses[name]
