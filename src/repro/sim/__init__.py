"""Simulators: functional reference execution and cycle-level VLIW timing."""

from .memory import Memory, MemoryError_, ProgramImage
from .cache import Cache, CacheStatistics, make_cache
from .functional import ExecutionProfile, FunctionalSimulator, SimulationError
from .cycle import CycleSimulator, CycleStatistics, SimulationResult, simulate

__all__ = [
    "Memory", "MemoryError_", "ProgramImage",
    "Cache", "CacheStatistics", "make_cache",
    "ExecutionProfile", "FunctionalSimulator", "SimulationError",
    "CycleSimulator", "CycleStatistics", "SimulationResult", "simulate",
]
