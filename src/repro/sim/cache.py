"""Set-associative cache model with LRU replacement."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..arch.machine import CacheConfig


@dataclass
class CacheStatistics:
    """Access counts for one cache instance."""

    accesses: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses


class Cache:
    """A single-level, blocking, set-associative cache with LRU replacement."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_bits = (config.line_bytes - 1).bit_length()
        # sets[i] is an ordered list of tags, most recently used last.
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStatistics()

    def access(self, address: int) -> int:
        """Access ``address``; returns the added latency in cycles."""
        self.stats.accesses += 1
        line = address >> self.line_bits
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            return self.config.hit_latency
        self.stats.misses += 1
        ways.append(tag)
        if len(ways) > self.associativity:
            ways.pop(0)
        return self.config.hit_latency + self.config.miss_penalty

    def reset_statistics(self) -> None:
        self.stats = CacheStatistics()


def make_cache(config: Optional[CacheConfig]) -> Optional[Cache]:
    """Instantiate a cache, or None when the machine does not model one."""
    if config is None:
        return None
    return Cache(config)
