"""Compatibility analysis across an ISA family.

Answers the §2.3 question — when the ISA changes, what breaks? — in terms
of the machine-description diffs of :mod:`repro.arch.family`, and maps
each kind of drift to the remedy the paper proposes (run as-is, statically
translate, dynamically re-optimize, or recompile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..arch.family import DriftRecord, IsaFamily, compute_drift
from ..arch.machine import MachineDescription


@dataclass
class CompatibilityVerdict:
    """How a binary for ``source`` can be made to run on ``target``."""

    drift: DriftRecord
    #: one of "native", "translate", "reoptimize", "recompile".
    remedy: str
    reasons: List[str]

    @property
    def runs_unmodified(self) -> bool:
        return self.remedy == "native"


def assess(source: MachineDescription, target: MachineDescription) -> CompatibilityVerdict:
    """Classify what it takes to move a binary from ``source`` to ``target``."""
    drift = compute_drift(source, target)
    reasons: List[str] = []

    if drift.severity == 0 or drift.is_binary_compatible:
        return CompatibilityVerdict(drift, "native",
                                    ["no visible change affects existing binaries"])

    if drift.encoding_changed:
        reasons.append("instruction encoding changed")
    if drift.removed_custom_ops:
        reasons.append(
            "custom operations removed: " + ", ".join(drift.removed_custom_ops)
        )
    if drift.issue_width_change < 0:
        reasons.append("issue width narrowed (schedules no longer fit)")
    if drift.register_change < 0:
        reasons.append("register file shrank (allocations no longer fit)")
    if drift.cluster_change != 0:
        reasons.append("cluster structure changed")
    if drift.latency_changes:
        reasons.append("operation latencies changed: "
                       + ", ".join(sorted(drift.latency_changes)))

    # Removed operations or structural shrinkage require real translation;
    # everything else is recoverable by re-scheduling (cheap translation).
    structural = (drift.removed_custom_ops or drift.issue_width_change < 0
                  or drift.register_change < 0 or drift.cluster_change != 0
                  or drift.encoding_changed)
    if not structural:
        remedy = "translate"
    elif drift.added_custom_ops or target.custom_ops:
        remedy = "reoptimize"
    else:
        remedy = "translate"
    if not reasons:
        reasons.append("visible differences require re-targeting")
    return CompatibilityVerdict(drift, remedy, reasons)


def family_compatibility_report(family: IsaFamily) -> List[Dict[str, object]]:
    """Rows describing every ordered pair of family members."""
    rows: List[Dict[str, object]] = []
    for source_name in family.members:
        for target_name in family.members:
            if source_name == target_name:
                continue
            verdict = assess(family.get(source_name), family.get(target_name))
            rows.append({
                "from": source_name,
                "to": target_name,
                "binary_compatible": verdict.runs_unmodified,
                "remedy": verdict.remedy,
                "visible_changes": verdict.drift.severity,
            })
    return rows
