"""ISA drift: binary translation, dynamic optimization and compatibility."""

from .translator import (
    BinaryTranslator, REOPTIMIZATION_CYCLES_PER_OP, TRANSLATION_CYCLES_PER_OP,
    TranslationError, TranslationReport, expand_custom_ops,
)
from .dynamic import CodeCache, StagedExecutionModel
from .compat import CompatibilityVerdict, assess, family_compatibility_report

__all__ = [
    "BinaryTranslator", "REOPTIMIZATION_CYCLES_PER_OP",
    "TRANSLATION_CYCLES_PER_OP", "TranslationError", "TranslationReport",
    "expand_custom_ops",
    "CodeCache", "StagedExecutionModel",
    "CompatibilityVerdict", "assess", "family_compatibility_report",
]
