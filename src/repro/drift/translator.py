"""Static binary translation between ISA-family members ("ISA drift").

Paper §2 argues that post-distribution techniques — object-code
translation, code caching, dynamic optimization — will make families of
mutually incompatible ISAs acceptable in practice.  This module implements
the static half of that machinery: a binary built for family member A is
re-targeted to member B by

1. recovering the operation stream (our binaries keep the operation-level
   structure, as real translators recover it by decoding),
2. *expanding* custom operations that B does not implement back into the
   primitive sequences recorded in the extension library,
3. optionally *re-optimizing* for B — re-matching B's own custom
   operations over the recovered code (the dynamic-optimizer path), and
4. re-scheduling and re-encoding for B's resource tables.

The translated program is real, runnable code for B (it executes on the
cycle simulator); the translation overhead model charges the one-time cost
of performing the translation itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..arch.machine import MachineDescription
from ..backend.codegen import compile_module
from ..backend.mcode import CompiledModule
from ..core.identification import EnumerationConfig
from ..core.library import ExtensionLibrary, global_extension_library
from ..core.rewrite import rewrite_with_library
from ..ir import Constant, Instruction, Module, Opcode, VirtualRegister
from ..ir.types import I32


class TranslationError(Exception):
    """Raised when a binary cannot be re-targeted."""


@dataclass
class TranslationReport:
    """What the translator had to do to move a binary between members."""

    source_machine: str
    target_machine: str
    custom_ops_expanded: int = 0
    custom_ops_rematched: int = 0
    instructions_translated: int = 0
    #: modelled one-time cost of running the translator itself, in cycles
    #: on the target machine (decode + rebuild + re-schedule per operation).
    translation_overhead_cycles: int = 0
    reoptimized: bool = False


#: modelled translator cost per static operation (decode, dependence
#: rebuild, re-schedule, re-encode).  The value is deliberately coarse —
#: what matters for E4 is that static translation is a one-time cost that
#: amortises across runs (see :mod:`repro.drift.dynamic`).
TRANSLATION_CYCLES_PER_OP = 60
REOPTIMIZATION_CYCLES_PER_OP = 220


def expand_custom_ops(module: Module, library: ExtensionLibrary,
                      supported: Optional[Set[str]] = None) -> int:
    """Expand CUSTOM instructions not in ``supported`` back to primitives.

    Returns the number of custom-op sites expanded.  The expansion uses the
    pattern recorded in the library, so the result is semantically
    identical to the fused operation.
    """
    supported = supported or set()
    expanded = 0
    for function in module.functions.values():
        for block in function.blocks:
            changed = True
            while changed:
                changed = False
                for inst in block.instructions:
                    if inst.opcode is not Opcode.CUSTOM:
                        continue
                    if inst.custom_op in supported:
                        continue
                    pattern = library.lookup(inst.custom_op)
                    if pattern is None:
                        raise TranslationError(
                            f"no semantics registered for custom op {inst.custom_op}"
                        )
                    replacement = _expand_pattern(inst, pattern)
                    block.replace(inst, replacement)
                    expanded += 1
                    changed = True
                    break
    return expanded


def _expand_pattern(inst: Instruction, pattern) -> List[Instruction]:
    """Materialise a pattern as primitive instructions at a call site."""
    node_registers: Dict[int, VirtualRegister] = {}
    instructions: List[Instruction] = []
    for index, node in enumerate(pattern.nodes):
        operands = []
        for kind, ref in node.operands:
            if kind == "in":
                operands.append(inst.operands[ref])
            elif kind == "const":
                operands.append(Constant(ref, I32))
            else:
                operands.append(node_registers[ref])
        if index == pattern.outputs[0] and inst.dest is not None:
            dest = inst.dest
        else:
            dest = VirtualRegister(I32, f"x{inst.custom_op}")
        node_registers[index] = dest
        instructions.append(Instruction(node.opcode, dest, operands))
    return instructions


class BinaryTranslator:
    """Re-targets compiled programs between family members."""

    def __init__(self, library: Optional[ExtensionLibrary] = None) -> None:
        self.library = library if library is not None else global_extension_library()

    def translate(self, compiled: CompiledModule, target: MachineDescription,
                  reoptimize: bool = False,
                  enumeration: Optional[EnumerationConfig] = None
                  ) -> Tuple[CompiledModule, TranslationReport]:
        """Translate ``compiled`` (built for machine A) to run on ``target``.

        ``reoptimize`` enables the dynamic-optimizer path: after expansion,
        the translator re-matches the *target's* custom operations over the
        recovered code, recovering most of the customization benefit at a
        higher one-time cost.
        """
        if compiled.source is None:
            raise TranslationError("compiled module carries no recoverable code")
        source_machine = compiled.machine
        report = TranslationReport(source_machine=source_machine.name,
                                   target_machine=target.name,
                                   reoptimized=reoptimize)

        recovered = compiled.source.clone()
        report.instructions_translated = recovered.instruction_count()

        # Expand fused operations the target does not implement.
        supported = set(target.custom_ops)
        report.custom_ops_expanded = expand_custom_ops(
            recovered, self.library, supported
        )

        per_op_cost = TRANSLATION_CYCLES_PER_OP
        if reoptimize:
            per_op_cost = REOPTIMIZATION_CYCLES_PER_OP
            rematched = rewrite_with_library(
                recovered,
                self._library_for(target),
                enumeration or EnumerationConfig(max_outputs=1),
            )
            report.custom_ops_rematched = sum(rematched.values())

        report.translation_overhead_cycles = (
            per_op_cost * report.instructions_translated
        )

        translated, _compile_report = compile_module(recovered, target)
        return translated, report

    def _library_for(self, machine: MachineDescription) -> ExtensionLibrary:
        """A view of the library restricted to the machine's operations."""
        restricted = ExtensionLibrary()
        for name in machine.custom_ops:
            entry = self.library.entry(name)
            if entry is not None:
                restricted.register(entry.pattern, entry.operation)
        return restricted
