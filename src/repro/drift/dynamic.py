"""Code-cache / dynamic-optimization amortisation model.

Static translation and dynamic re-optimization are one-time costs; what
the user experiences is their amortisation over repeated executions of the
same binary (paper §2.2: "the advantages of altering binaries while
they're loaded and while they're running are huge").  This module models
the classic staged pipeline of a dynamic optimizer:

1. cold code runs through the (slow) interpreting/translating path,
2. blocks that cross an execution-count threshold are translated into the
   code cache at ``TRANSLATION_CYCLES_PER_OP`` apiece,
3. hot blocks are further re-optimized (custom-op re-matching, better
   scheduling) at a higher one-time cost, after which they run at
   near-native-recompile speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StagedExecutionModel:
    """Cycle model for repeated runs of a drifted binary.

    Parameters
    ----------
    native_cycles:
        Per-run cycles of code natively recompiled for the target.
    translated_cycles:
        Per-run cycles of statically translated code (no target ISE use).
    interpreted_slowdown:
        Multiplier applied to translated_cycles while code is still cold
        (emulation/interpretation before translation).
    translation_cost:
        One-time cycles to statically translate the program.
    reoptimization_cost:
        One-time cycles to re-optimize hot code to near-native quality.
    hot_fraction:
        Fraction of execution covered by hot (re-optimizable) code.
    """

    native_cycles: float
    translated_cycles: float
    interpreted_slowdown: float = 4.0
    translation_cost: float = 0.0
    reoptimization_cost: float = 0.0
    hot_fraction: float = 0.9
    translation_threshold_runs: int = 1
    reoptimization_threshold_runs: int = 3

    def cycles_for_run(self, run_index: int) -> float:
        """Cycles of the ``run_index``-th execution (0-based)."""
        if run_index < self.translation_threshold_runs:
            return self.translated_cycles * self.interpreted_slowdown
        cycles = 0.0
        if run_index == self.translation_threshold_runs:
            cycles += self.translation_cost
        if run_index < self.reoptimization_threshold_runs:
            return cycles + self.translated_cycles
        if run_index == self.reoptimization_threshold_runs:
            cycles += self.reoptimization_cost
        hot = self.hot_fraction
        steady = hot * self.native_cycles + (1.0 - hot) * self.translated_cycles
        return cycles + steady

    def cumulative_cycles(self, runs: int) -> float:
        """Total cycles over ``runs`` consecutive executions."""
        return sum(self.cycles_for_run(i) for i in range(runs))

    def average_overhead(self, runs: int) -> float:
        """Average per-run overhead vs. native recompilation (1.0 = parity)."""
        if runs <= 0:
            return float("inf")
        native_total = self.native_cycles * runs
        if native_total <= 0:
            return float("inf")
        return self.cumulative_cycles(runs) / native_total

    def break_even_runs(self, tolerance: float = 1.10, max_runs: int = 10_000) -> Optional[int]:
        """Smallest run count whose average overhead drops below ``tolerance``."""
        for runs in range(1, max_runs + 1):
            if self.average_overhead(runs) <= tolerance:
                return runs
        return None


@dataclass
class CodeCache:
    """A simple translated-code cache with per-block execution counters."""

    translation_threshold: int = 10
    reoptimization_threshold: int = 1000
    counters: Dict[str, int] = field(default_factory=dict)
    translated: Dict[str, bool] = field(default_factory=dict)
    reoptimized: Dict[str, bool] = field(default_factory=dict)
    translations: int = 0
    reoptimizations: int = 0

    def touch(self, block_name: str, count: int = 1) -> str:
        """Record ``count`` executions of a block; returns its current tier.

        Tiers: ``"cold"`` (interpreted), ``"translated"``, ``"hot"``
        (re-optimized).
        """
        total = self.counters.get(block_name, 0) + count
        self.counters[block_name] = total
        if total >= self.reoptimization_threshold and not self.reoptimized.get(block_name):
            self.reoptimized[block_name] = True
            self.reoptimizations += 1
        elif total >= self.translation_threshold and not self.translated.get(block_name):
            self.translated[block_name] = True
            self.translations += 1
        if self.reoptimized.get(block_name):
            return "hot"
        if self.translated.get(block_name):
            return "translated"
        return "cold"

    def tier_of(self, block_name: str) -> str:
        if self.reoptimized.get(block_name):
            return "hot"
        if self.translated.get(block_name):
            return "translated"
        return "cold"
