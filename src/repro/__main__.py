"""Entry point for ``python -m repro`` (see :mod:`repro.api.cli`)."""

from .api.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
