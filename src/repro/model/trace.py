"""Machine-independent kernel traces: the profile-once artifact.

A :class:`KernelTrace` is everything the analytic retiming model needs to
price *any* machine for one (kernel, arguments) pair without re-running a
simulator: per-basic-block execution counts, dynamic opcode/call/branch
statistics, the scalar memory-access footprint (the exact address stream
of the run, machine-independent because simulated memory layout is
deterministic), and the run's oracle output.  It is captured once per
(module, arguments) by :func:`capture_trace` — a single run of the fast
threaded-code engine under a recording memory — and stored through the
:class:`~repro.pipeline.store.ArtifactStore` as a new, serializable,
fingerprinted pipeline stage on the machine-independent side of the
boundary.

Layout compatibility with the cycle simulator: the cycle simulator
reserves its spill area (4 KiB, 16-aligned) immediately after the
program image and *before* the arguments are lowered, so the tracing run
reserves the same region.  Addresses recorded here are therefore exactly
the addresses the cycle simulator's d-cache sees for every machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from ..exec.cache import module_fingerprint
from ..exec.engine import CompiledSimulator
from ..ir import Module
from ..pipeline.fingerprints import TRACE_SCHEMA
from ..sim.functional import ExecutionProfile
from ..workloads.kernels import copy_run_args

#: size/alignment of the cycle simulator's spill area, mirrored by the
#: tracing run so recorded addresses match cycle-simulation layout.
SPILL_AREA_BYTES = 4096
SPILL_AREA_ALIGN = 16


@dataclass
class KernelTrace:
    """One profiled execution, reduced to machine-independent statistics.

    Field names shadow :class:`~repro.sim.functional.ExecutionProfile`
    where they mean the same thing, so a trace can be handed to any code
    that reduces a dynamic profile over a static schedule.
    """

    #: content fingerprint: module structure × entry × argument recipe.
    fingerprint: str = ""
    entry: str = ""
    schema_version: int = TRACE_SCHEMA
    #: the run's return value — the oracle output at every fidelity.
    value: object = None
    instructions_executed: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)
    block_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    call_counts: Dict[str, int] = field(default_factory=dict)
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    #: scalar load/store addresses in execution order (the d-cache stream).
    memory_accesses: List[int] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-representable form (lossless for int-valued kernels)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "KernelTrace":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in dict(data).items() if k in known})

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "KernelTrace":
        return cls.from_dict(json.loads(text))


class TracingMemory:
    """Proxy over a :class:`~repro.sim.memory.Memory` recording accesses.

    Scalar ``load``/``store`` addresses are appended to ``accesses``
    while ``recording`` is on; everything else (allocation, bulk array
    transfer during argument lowering/write-back) passes through
    unrecorded, mirroring what the cycle simulator's d-cache observes.
    """

    def __init__(self, base) -> None:
        self._base = base
        self.accesses: List[int] = []
        self.recording = False

    def load(self, address, type_):
        if self.recording:
            self.accesses.append(int(address))
        return self._base.load(address, type_)

    def store(self, address, value, type_):
        if self.recording:
            self.accesses.append(int(address))
        self._base.store(address, value, type_)

    def __getattr__(self, name):
        return getattr(self._base, name)


class _TracingSimulator(CompiledSimulator):
    """Threaded-code engine whose memory records the access stream.

    Recording is enabled only inside the outermost call, so argument
    lowering and write-backs (which the cycle simulator performs with
    bulk copies, not d-cache accesses) never pollute the stream.
    """

    def __init__(self, module: Module, **kwargs) -> None:
        super().__init__(module, **kwargs)
        # Mirror CycleSimulator.__init__: reserving the spill area between
        # the program image and the lowered arguments keeps every
        # subsequent address identical to cycle-simulation layout.
        self.memory.allocate(SPILL_AREA_BYTES, SPILL_AREA_ALIGN)
        self.memory = TracingMemory(self.memory)

    def _call(self, function, args):
        memory = self.memory
        outermost = not memory.recording
        memory.recording = True
        try:
            return super()._call(function, args)
        finally:
            if outermost:
                memory.recording = False


def trace_args_key(args) -> str:
    """Content digest of an argument tuple (lists/tuples canonicalized,
    so semantically equal argument spellings share one trace)."""
    canonical = tuple(list(a) if isinstance(a, (list, tuple)) else a
                      for a in args)
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()


def capture_trace(module: Module, entry: str, args,
                  memory_size: int = 1 << 20,
                  max_steps: int = 50_000_000) -> KernelTrace:
    """Profile one run of ``entry`` and reduce it to a :class:`KernelTrace`.

    The run uses the compiled (threaded-code) engine, which is
    bit-identical to the reference interpreter, so ``value`` doubles as
    the functional-simulation oracle output.  ``args`` are copied before
    the run; callers keep their originals.
    """
    from ..obs import global_tracer

    with global_tracer().span("model.capture_trace", entry=entry) as span:
        simulator = _TracingSimulator(module, memory_size=memory_size,
                                      max_steps=max_steps)
        value = simulator.run(entry, *copy_run_args(args))
        profile: ExecutionProfile = simulator.profile
        span.note(instructions=profile.instructions_executed,
                  accesses=len(simulator.memory.accesses))
    from ..pipeline.fingerprints import trace_fingerprint

    return KernelTrace(
        fingerprint=trace_fingerprint(module_fingerprint(module), entry,
                                      trace_args_key(args)),
        entry=entry,
        value=value,
        instructions_executed=profile.instructions_executed,
        opcode_counts=dict(profile.opcode_counts),
        block_counts={name: dict(counts)
                      for name, counts in profile.block_counts.items()},
        call_counts=dict(profile.call_counts),
        loads=profile.loads,
        stores=profile.stores,
        branches=profile.branches,
        taken_branches=profile.taken_branches,
        memory_accesses=list(simulator.memory.accesses),
    )
