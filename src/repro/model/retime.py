"""Trace-based analytic retiming: price any machine from one profile.

:class:`RetimingModel` reduces a machine-independent
:class:`~repro.model.trace.KernelTrace` over the static per-block
schedules of a compiled module, reproducing the cycle simulator's
accounting term by term:

* base cycles — block schedule lengths weighted by measured visit
  counts, plus the fixed call overhead per activation and the branch
  penalty per taken control transfer (*exact*, identical arithmetic to
  :class:`~repro.sim.cycle.CycleSimulator`);
* operation counts, NOP slots, spill/copy/custom counts — reduced from
  the schedule × visit counts (*exact*);
* d-cache stalls — the trace's recorded address stream replayed through
  the machine's cache model (memoized per cache geometry, so a sweep
  replays once per distinct d-cache, not once per design point), plus an
  analytic term for spill traffic (*approximate*: scheduled access order
  may differ from trace order);
* i-cache stalls — cold-miss analysis over the exact code layout the
  cycle simulator uses, with a first-order conflict surcharge when the
  executed footprint exceeds cache capacity (*approximate*);
* energy — per-operation dynamic energy exactly as the cycle simulator
  charges it, plus static energy per modeled cycle and cache energy per
  modeled access/miss.

The approximate terms are summed into ``error_bound_cycles`` on the
returned :class:`TraceEstimate`, and the differential harness in
``tests/test_trace_model.py`` locks the estimate to the cycle simulator
within :data:`TRACE_CYCLE_TOLERANCE` across presets × kernels.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..arch.machine import CacheConfig, MachineDescription
from ..arch.operations import OperationClass
from ..arch.power import EnergyModel, custom_pj, operation_pj
from ..backend.mcode import CompiledModule
from ..ir import Opcode
from ..obs import global_tracer
from ..sim.cache import Cache, CacheStatistics
from ..sim.cycle import CycleStatistics, SimulationResult

#: declared relative tolerance of trace-fidelity cycle estimates against
#: the cycle simulator (the differential harness asserts it).
TRACE_CYCLE_TOLERANCE = 0.02

#: code layout base address (mirrors CycleSimulator._layout_code).
CODE_BASE = 0x1000

#: artifact-store stage name under which d-cache replays are memoized.
REPLAY_STAGE = "retime-dcache"


@dataclass
class TraceEstimate(SimulationResult):
    """A :class:`SimulationResult`-compatible analytic estimate.

    ``error_bound_cycles`` budgets the model's approximate terms — a
    worst-case allowance for i-cache set conflicts and capacity
    overflow, and a heuristic allowance for d-cache access-order
    effects (the replayed stream is exact in content but scheduled
    order can perturb LRU decisions).  The schedule-derived terms are
    exact and carry no uncertainty.
    """

    error_bound_cycles: int = 0
    fidelity: str = "trace"
    trace_fingerprint: str = ""


def _cache_geometry_key(config: CacheConfig) -> str:
    text = (f"{config.size_bytes}:{config.line_bytes}:"
            f"{config.associativity}:{config.hit_latency}:"
            f"{config.miss_penalty}")
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _replay_dcache(accesses, config: CacheConfig) -> Tuple[int, int]:
    """Replay an address stream through a fresh cache; (accesses, misses)."""
    cache = Cache(config)
    access = cache.access
    for address in accesses:
        access(address)
    return cache.stats.accesses, cache.stats.misses


class RetimingModel:
    """Prices (compiled module, machine) pairs against kernel traces.

    One model instance can serve an entire design-space sweep: d-cache
    replays are memoized per (trace, cache geometry) — in the supplied
    :class:`~repro.pipeline.store.ArtifactStore` when one is given (so
    sweeps sharing a session store share replays), or privately
    otherwise.
    """

    def __init__(self, store=None, model_caches: bool = True) -> None:
        self.store = store
        self.model_caches = model_caches
        self._replays: Dict[Tuple[str, str], Tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # D-cache replay memo.
    # ------------------------------------------------------------------
    def _dcache_counts(self, trace, config: CacheConfig) -> Tuple[int, int]:
        fingerprint = getattr(trace, "fingerprint", "") or ""
        key = (fingerprint, _cache_geometry_key(config))
        if not fingerprint:
            return _replay_dcache(trace.memory_accesses, config)
        cached = self._replays.get(key)
        if cached is not None:
            return cached
        if self.store is not None:
            artifact = self.store.get(REPLAY_STAGE, "|".join(key),
                                      persist=True)
            if artifact is not None:
                self._replays[key] = artifact.payload
                return artifact.payload
        counts = _replay_dcache(trace.memory_accesses, config)
        self._replays[key] = counts
        if self.store is not None:
            self.store.put(REPLAY_STAGE, "|".join(key), counts, persist=True)
        return counts

    # ------------------------------------------------------------------
    # Pricing.
    # ------------------------------------------------------------------
    def price(self, compiled: CompiledModule, machine: MachineDescription,
              trace) -> TraceEstimate:
        """Estimate one run of ``trace`` on ``machine``'s schedule.

        ``trace`` is a :class:`~repro.model.trace.KernelTrace` (or any
        object with the same profile attributes, e.g. an
        :class:`~repro.sim.functional.ExecutionProfile` when cache
        modelling is off).
        """
        with global_tracer().span("model.price",
                                  machine=machine.name) as span:
            estimate = self._price(compiled, machine, trace)
            span.note(cycles=estimate.cycles,
                      error_bound=estimate.error_bound_cycles)
            return estimate

    def _price(self, compiled: CompiledModule,
               machine: MachineDescription, trace) -> TraceEstimate:
        from ..core.library import global_extension_library
        from ..sim.cycle import CycleSimulator

        stats = CycleStatistics()
        energy = EnergyModel(machine)
        library = global_extension_library()

        opcode_counts = trace.opcode_counts
        activations = 1 + sum(trace.call_counts.values())
        stats.call_overhead_cycles = CycleSimulator.CALL_OVERHEAD * activations
        taken = (trace.taken_branches
                 + opcode_counts.get(Opcode.JUMP.value, 0)
                 + opcode_counts.get(Opcode.CALL.value, 0)
                 + opcode_counts.get(Opcode.RETURN.value, 0))
        stats.branch_stall_cycles = machine.branch_penalty * taken

        # One pass over the static schedule: exact cycle/op/energy terms
        # plus the executed i-cache line set over the exact code layout.
        schedule_cycles = 0
        dynamic_pj = 0.0
        dynamic_spills = 0
        icache_fetches = 0
        icache_lines = set()
        line_fetches: Dict[int, int] = {}
        track_icache = machine.icache is not None and self.model_caches
        line_bits = ((machine.icache.line_bytes - 1).bit_length()
                     if track_icache else 0)
        syllable_bytes = machine.syllable_bits // 8
        cursor = CODE_BASE
        for function in compiled:
            visit_counts = trace.block_counts.get(function.name) or {}
            for block in function.blocks:
                address = cursor
                block_bytes = 0
                visits = visit_counts.get(block.name, 0)
                if visits:
                    schedule_cycles += visits * block.cycles
                    stats.bundles_executed += visits * block.cycles
                for bundle in block.bundles:
                    if machine.compressed_encoding:
                        bundle_bytes = len(bundle.ops) * syllable_bytes + 1
                    else:
                        bundle_bytes = machine.issue_width * syllable_bytes
                    if visits:
                        if track_icache:
                            icache_fetches += visits
                            line = (address + block_bytes) >> line_bits
                            icache_lines.add(line)
                            line_fetches[line] = (
                                line_fetches.get(line, 0) + visits)
                        stats.nop_slots += visits * (
                            machine.issue_width - len(bundle.ops))
                        for op in bundle.ops:
                            stats.operations_executed += visits
                            if op.is_spill:
                                stats.spill_ops_executed += visits
                                dynamic_spills += visits
                                pj = operation_pj(OperationClass.MEM)
                            elif op.is_copy:
                                stats.copy_ops_executed += visits
                                pj = operation_pj(OperationClass.IALU)
                            elif op.inst.opcode is Opcode.CUSTOM:
                                stats.custom_ops_executed += visits
                                entry = library.entry(op.inst.custom_op)
                                fused = (entry.operation.fused_ops
                                         if entry else 1)
                                pj = custom_pj(fused, len(op.inst.operands))
                            else:
                                pj = operation_pj(op.op_class,
                                                 len(op.inst.operands))
                            dynamic_pj += visits * pj
                    block_bytes += bundle_bytes
                cursor += max(1, block_bytes)

        error_bound = 0

        # I-cache: exact cold misses over the executed line set; a
        # first-order conflict surcharge when the footprint exceeds
        # capacity, plus a worst-case widening of the error bound for
        # any set holding more executed lines than it has ways (the
        # model cannot see the inter-line access order that decides how
        # often such a set actually thrashes).
        icache_stats: Optional[CacheStatistics] = None
        if track_icache:
            config = machine.icache
            cold = len(icache_lines)
            capacity_lines = config.size_bytes // config.line_bytes
            misses = cold
            if cold > capacity_lines and icache_fetches:
                overflow = 1.0 - capacity_lines / cold
                extra = int((icache_fetches - cold) * overflow)
                misses += extra
                error_bound += extra + cold * config.miss_penalty
            lines_per_set: Dict[int, int] = {}
            for line in icache_lines:
                index = line % config.num_sets
                lines_per_set[index] = lines_per_set.get(index, 0) + 1
            for index, count in lines_per_set.items():
                if count > config.associativity:
                    contested = sum(
                        fetches for line, fetches in line_fetches.items()
                        if line % config.num_sets == index)
                    error_bound += (contested - count) * config.miss_penalty
            stats.icache_stall_cycles = (
                icache_fetches * config.hit_latency
                + misses * config.miss_penalty)
            icache_stats = CacheStatistics(accesses=icache_fetches,
                                           misses=misses)
            energy.charge_cache(icache_fetches - misses, misses)

        # D-cache: replay the recorded stream (memoized per geometry),
        # then add the spill traffic the schedule implies — all spill
        # accesses hit one line, so they cost one miss plus hits.
        dcache_stats: Optional[CacheStatistics] = None
        if (machine.dcache is not None and self.model_caches
                and getattr(trace, "memory_accesses", None) is not None):
            config = machine.dcache
            accesses, misses = self._dcache_counts(trace, config)
            spill_misses = 1 if dynamic_spills else 0
            accesses += dynamic_spills
            misses += spill_misses
            stats.dcache_stall_cycles = (
                accesses * config.hit_latency + misses * config.miss_penalty)
            dcache_stats = CacheStatistics(accesses=accesses, misses=misses)
            energy.charge_cache(accesses - misses, misses)
            # Scheduled access order and spill interleaving can perturb
            # LRU decisions; bound that by a fraction of the modeled
            # miss traffic plus the spill line's worst case.
            error_bound += (misses * config.miss_penalty + 3) // 4
            if dynamic_spills:
                error_bound += config.miss_penalty

        stats.cycles = (stats.call_overhead_cycles
                        + stats.branch_stall_cycles
                        + schedule_cycles
                        + stats.icache_stall_cycles
                        + stats.dcache_stall_cycles)
        energy.report.dynamic_pj += dynamic_pj
        energy.charge_cycles(stats.cycles)

        return TraceEstimate(
            value=getattr(trace, "value", None),
            stats=stats,
            energy=energy.report,
            icache=icache_stats,
            dcache=dcache_stats,
            machine_name=machine.name,
            clock_ns=machine.clock_ns,
            error_bound_cycles=error_bound,
            fidelity="trace",
            trace_fingerprint=getattr(trace, "fingerprint", "") or "",
        )
