"""Trace-based analytic timing/energy models for design-space sweeps.

Profile once, estimate many: :func:`capture_trace` runs a kernel a
single time (threaded-code engine) and reduces it to a
machine-independent :class:`KernelTrace`; :class:`RetimingModel` then
prices any :class:`~repro.arch.machine.MachineDescription` against the
trace using the static per-block schedules — no per-design-point
simulation.  The cycle simulator remains the ground-truth oracle; the
differential harness in ``tests/test_trace_model.py`` locks the model
to it.
"""

from .retime import (
    TRACE_CYCLE_TOLERANCE, REPLAY_STAGE, RetimingModel, TraceEstimate,
)
from .trace import (
    TRACE_SCHEMA, KernelTrace, TracingMemory, capture_trace, trace_args_key,
)

__all__ = [
    "TRACE_CYCLE_TOLERANCE", "TRACE_SCHEMA", "REPLAY_STAGE",
    "KernelTrace", "RetimingModel", "TraceEstimate", "TracingMemory",
    "capture_trace", "trace_args_key",
]
