"""``python -m repro`` — the scriptable front door.

Every subcommand builds one of the serializable requests of
:mod:`repro.api.requests` (either from flags or from a request-JSON file
via ``--request``), executes it on a fresh :class:`~repro.api.Session`,
and writes the schema-versioned response JSON to stdout (or
``--output``).  That makes the whole system drivable from shell scripts
and CI::

    python -m repro matrix --machines vliw4,risc_baseline
    python -m repro run --kernel dot_product --machine vliw8 --size 256
    python -m repro customize --kernel viterbi_acs --budget 40
    python -m repro explore --mix video --strategy exhaustive --size 24
    python -m repro gen --count 10 --seed 7
    python -m repro app --topology chain --app-seed 11 --deadline-us 30
    python -m repro compile --kernel sad16 --machine dsp16 --pretty

The service subcommands run the same requests through a persistent
daemon (:mod:`repro.service`) with a durable job queue and a shared
cross-process artifact store::

    python -m repro serve --root /tmp/repro-svc --service-workers 4
    python -m repro submit --request req.json --wait      # or poll:
    python -m repro submit --request req.json             # prints job id
    python -m repro status --id job-000001
    python -m repro result --id job-000001
    python -m repro cancel --id job-000002

Client subcommands find the daemon through ``--endpoint`` or the
``REPRO_SERVICE_SOCKET`` environment variable.

The replay subcommands (:mod:`repro.replay`) turn requests into
replayable experiment manifests and gate regressions in CI::

    python -m repro record --request req.json --output m.json
    python -m repro replay m.json                 # or a journal .jsonl
    python -m repro gate experiments --bench-baseline bench-baseline

Exit status is 0 on success; correctness-checking subcommands (``run``,
``customize``, ``matrix``, ``gen``, and ``submit --wait``/``result``)
exit 1 when a result disagrees with its oracle, and 2 on a
request/validation error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .requests import (
    APP_TOPOLOGIES, EVALUATION_ENGINES, FIDELITY_LEVELS, FUNCTIONAL_ENGINES,
    OBJECTIVES, RUN_ENGINES, STRATEGIES, AppRequest, AppResponse,
    CompileRequest, CustomizeRequest, ExploreRequest, MatrixRequest,
    MatrixResponse, PopulationRequest, PopulationResponse, RunRequest,
    RunResponse, CustomizeResponse, SchemaError, request_from_json,
)
from .session import Session


def _csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(item) for item in _csv(text)]


def _csv_floats(text: str) -> List[float]:
    return [float(item) for item in _csv(text)]


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--request", metavar="FILE",
                        help="read the full request JSON from FILE "
                             "('-' for stdin); other request flags are "
                             "ignored")
    parser.add_argument("--output", metavar="FILE",
                        help="write the response JSON to FILE instead of "
                             "stdout")
    parser.add_argument("--pretty", action="store_true",
                        help="indent the response JSON")
    parser.add_argument("--opt-level", type=int, default=None,
                        help="optimization level (session default: 2)")
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool width for batched fan-out")
    _add_obs(parser)


def _add_obs(parser: argparse.ArgumentParser) -> None:
    from ..obs import OBS_MODES

    parser.add_argument("--obs", default=None, choices=OBS_MODES,
                        help="observability mode (default: metrics; "
                             "trace adds spans + run manifests, off "
                             "disables everything but store counters)")
    parser.add_argument("--journal", metavar="FILE", default=None,
                        help="append run manifests (JSONL) to FILE "
                             "(default: $REPRO_OBS_JOURNAL)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Customized instruction-sets as a service: submit a "
                    "request, get schema-versioned JSON back.")
    commands = parser.add_subparsers(dest="command", required=True)

    compile_p = commands.add_parser(
        "compile", help="compile a kernel (or C file) for a machine")
    compile_p.add_argument("--kernel", help="registry kernel name")
    compile_p.add_argument("--source", metavar="FILE",
                           help="C source file ('-' for stdin)")
    compile_p.add_argument("--name", help="module name for raw source")
    compile_p.add_argument("--machine", default="vliw4")
    _add_common(compile_p)

    run_p = commands.add_parser(
        "run", help="compile + execute a kernel against its oracle")
    run_p.add_argument("--kernel", required=True)
    run_p.add_argument("--machine", default="vliw4")
    run_p.add_argument("--engine", default="cycle", choices=RUN_ENGINES)
    run_p.add_argument("--size", type=int, default=None)
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--batch", type=int, default=None,
                       help="run N argument sets through the batch "
                            "cascade (functional engines only)")
    _add_common(run_p)

    customize_p = commands.add_parser(
        "customize", help="derive a custom family member for a kernel")
    customize_p.add_argument("--kernel", required=True)
    customize_p.add_argument("--machine", default="vliw4")
    customize_p.add_argument("--budget", type=float, default=40.0,
                             help="custom-datapath area budget (kgates)")
    customize_p.add_argument("--max-ops", type=int, default=8)
    customize_p.add_argument("--name", help="name for the custom machine")
    customize_p.add_argument("--size", type=int, default=None)
    customize_p.add_argument("--seed", type=int, default=None)
    _add_common(customize_p)

    explore_p = commands.add_parser(
        "explore", help="search a design space for a workload mix")
    explore_p.add_argument("--mix", default="video")
    explore_p.add_argument("--strategy", default="exhaustive",
                           choices=STRATEGIES)
    explore_p.add_argument("--objective", default="perf_per_area",
                           choices=sorted(OBJECTIVES))
    explore_p.add_argument("--engine", default=None,
                           choices=EVALUATION_ENGINES)
    explore_p.add_argument("--fidelity", default=None,
                           choices=FIDELITY_LEVELS,
                           help="timing model: simulate every point (cycle) "
                                "or profile once and retime (trace)")
    explore_p.add_argument("--rescore", action="store_true",
                           help="screen at trace fidelity, re-score the "
                                "Pareto frontier at cycle fidelity")
    explore_p.add_argument("--size", type=int, default=None)
    explore_p.add_argument("--seed", type=int, default=None)
    explore_p.add_argument("--search-seed", type=int, default=None)
    explore_p.add_argument("--iterations", type=int, default=40)
    explore_p.add_argument("--max-rounds", type=int, default=4)
    explore_p.add_argument("--issue-widths", type=_csv_ints, default=None)
    explore_p.add_argument("--register-counts", type=_csv_ints, default=None)
    explore_p.add_argument("--cluster-counts", type=_csv_ints, default=None)
    explore_p.add_argument("--mul-units", type=_csv_ints, default=None,
                           dest="mul_unit_counts")
    explore_p.add_argument("--mem-units", type=_csv_ints, default=None,
                           dest="mem_unit_counts")
    explore_p.add_argument("--custom-budgets", type=_csv_floats, default=None)
    explore_p.add_argument("--application", metavar="FILE", default=None,
                           help="explore for an application mix instead of "
                                "--mix: JSON file ('-' for stdin) holding a "
                                "serialized ApplicationMix or a single "
                                "ApplicationSpec")
    _add_common(explore_p)

    matrix_p = commands.add_parser(
        "matrix", help="run the N×M validation matrix")
    matrix_p.add_argument("--machines", type=_csv, default=["vliw4", "risc32"],
                          help="comma-separated preset names")
    matrix_p.add_argument("--kernels", type=_csv, default=None,
                          help="comma-separated kernel names (default: all)")
    matrix_p.add_argument("--engine", default=None, choices=FUNCTIONAL_ENGINES,
                          help="functional cross-check engine")
    matrix_p.add_argument("--fidelity", default=None, choices=FIDELITY_LEVELS,
                          help="timing model: cycle simulation or trace "
                               "retiming")
    matrix_p.add_argument("--size", type=int, default=None)
    matrix_p.add_argument("--seed", type=int, default=None)
    _add_common(matrix_p)

    gen_p = commands.add_parser(
        "gen", help="generate, validate and sweep a workload population")
    gen_p.add_argument("--count", type=int, default=10)
    gen_p.add_argument("--seed", type=int, default=0)
    gen_p.add_argument("--families", type=_csv, default=None)
    gen_p.add_argument("--budget", type=float, default=32.0)
    gen_p.add_argument("--engine", default="compiled",
                       choices=EVALUATION_ENGINES)
    gen_p.add_argument("--size", type=int, default=None)
    gen_p.add_argument("--kernels-per-family", type=int, default=3)
    gen_p.add_argument("--no-validate", action="store_true",
                       help="skip the dual-engine validation pass")
    _add_common(gen_p)

    app_p = commands.add_parser(
        "app", help="run a multi-kernel dataflow application window by "
                    "window against real-time objectives")
    app_p.add_argument("--application", metavar="FILE",
                       help="serialized ApplicationSpec JSON ('-' for "
                            "stdin); or generate one with --topology")
    app_p.add_argument("--topology", default=None, choices=APP_TOPOLOGIES,
                       help="generate the application from a seeded recipe")
    app_p.add_argument("--app-seed", type=int, default=0,
                       help="generator seed for --topology")
    app_p.add_argument("--machine", default="vliw4")
    app_p.add_argument("--engine", default="compiled",
                       choices=FUNCTIONAL_ENGINES,
                       help="functional engine node windows execute on")
    app_p.add_argument("--fidelity", default="cycle", choices=FIDELITY_LEVELS,
                       help="execute every window (cycle) or price each "
                            "node once and re-aggregate (trace)")
    app_p.add_argument("--windows", type=int, default=None,
                       help="override the stream's window count")
    app_p.add_argument("--period-us", type=float, default=None,
                       help="override the stream's window period")
    app_p.add_argument("--deadline-us", type=float, default=None,
                       help="override the per-window deadline")
    _add_common(app_p)

    serve_p = commands.add_parser(
        "serve", help="run a persistent service daemon (durable job "
                      "queue + shared artifact store + worker pool)")
    serve_p.add_argument("--root", required=True,
                         help="daemon state directory (queue journal, "
                              "shared store, default unix socket)")
    serve_p.add_argument("--endpoint", default=None,
                         help="unix:/path or tcp:host:port (default: "
                              "unix socket under --root)")
    serve_p.add_argument("--service-workers", type=int, default=2,
                         help="worker pool width (0 = serve in-process)")
    serve_p.add_argument("--worker-mode", default="process",
                         choices=("process", "thread"),
                         help="worker isolation: separate processes "
                              "(default) or in-process threads")
    serve_p.add_argument("--store-budget-bytes", type=int, default=None,
                         help="LRU-evict the shared store above this size")
    serve_p.add_argument("--duration", type=float, default=None,
                         help="exit after SECONDS (default: run until "
                              "interrupted or a client sends shutdown)")

    def _add_client(parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--endpoint", default=None,
                            help="daemon endpoint (default: "
                                 "$REPRO_SERVICE_SOCKET)")

    submit_p = commands.add_parser(
        "submit", help="queue a request JSON on a running daemon")
    submit_p.add_argument("--request", required=True, metavar="FILE",
                          help="request JSON file ('-' for stdin)")
    submit_p.add_argument("--priority", type=int, default=0)
    submit_p.add_argument("--wait", action="store_true",
                          help="block until done and print the response "
                               "(instead of the job record)")
    submit_p.add_argument("--timeout", type=float, default=None,
                          help="with --wait: give up after SECONDS")
    submit_p.add_argument("--pretty", action="store_true")
    _add_client(submit_p)

    status_p = commands.add_parser(
        "status", help="print a job's journal record (or daemon stats)")
    status_p.add_argument("--id", default=None, help="job id; omit for "
                          "daemon-wide queue/store/worker stats")
    status_p.add_argument("--pretty", action="store_true")
    _add_client(status_p)

    result_p = commands.add_parser(
        "result", help="wait for a job and print its response JSON")
    result_p.add_argument("--id", required=True)
    result_p.add_argument("--timeout", type=float, default=None)
    result_p.add_argument("--pretty", action="store_true")
    _add_client(result_p)

    cancel_p = commands.add_parser(
        "cancel", help="cancel a queued job (running jobs finish)")
    cancel_p.add_argument("--id", required=True)
    cancel_p.add_argument("--pretty", action="store_true")
    _add_client(cancel_p)

    stats_p = commands.add_parser(
        "stats", help="export the typed metrics registry (JSON or "
                      "Prometheus text)")
    stats_p.add_argument("--endpoint", default=None,
                         help="pull fleet-wide metrics from a running "
                              "daemon (default: $REPRO_SERVICE_SOCKET, "
                              "falling back to --journal / a fresh "
                              "registry)")
    stats_p.add_argument("--journal", metavar="FILE", default=None,
                         help="read the latest metric snapshot from a "
                              "run-manifest journal instead")
    stats_p.add_argument("--format", default="json",
                         choices=("json", "prometheus"),
                         help="output format (default: json)")
    stats_p.add_argument("--pretty", action="store_true")

    record_p = commands.add_parser(
        "record", help="execute a request and write a replayable "
                       "experiment manifest (request + stage fingerprints "
                       "+ response digest + env + git rev)")
    record_p.add_argument("--request", required=True, metavar="FILE",
                          help="request JSON file ('-' for stdin)")
    record_p.add_argument("--output", required=True, metavar="FILE",
                          help="where the manifest JSON goes")
    record_p.add_argument("--name", default=None,
                          help="manifest name (derived from the request "
                               "if omitted)")
    record_p.add_argument("--band", type=float, default=None,
                          help="wall-clock tolerance factor for the "
                               "elapsed_s perf metric (default 10; fresh "
                               "replays must finish within "
                               "recorded*band+1s)")
    record_p.add_argument("--pretty", action="store_true")

    replay_p = commands.add_parser(
        "replay", help="re-execute an experiment manifest (or every "
                       "manifest in a journal/directory), asserting "
                       "bit-identical stage fingerprints and oracle "
                       "outputs and reporting per-metric deltas")
    replay_p.add_argument("target",
                          help="manifest JSON, journal JSONL, or a "
                               "directory of either")
    replay_p.add_argument("--trace-id", default=None,
                          help="replay only this trace's manifest from a "
                               "journal")
    replay_p.add_argument("--report", metavar="FILE", default=None,
                          help="also write the replay report JSON to FILE")
    replay_p.add_argument("--json", action="store_true", dest="as_json",
                          help="emit the report JSON instead of the "
                               "rendered summary")
    replay_p.add_argument("--pretty", action="store_true")

    gate_p = commands.add_parser(
        "gate", help="CI regression gate: replay stored manifests and "
                     "compare fresh BENCH_*.json numbers against "
                     "baselines with per-metric tolerance bands")
    gate_p.add_argument("targets", nargs="*",
                        help="manifest files, journals, or directories "
                             "to replay")
    gate_p.add_argument("--bench-baseline", metavar="DIR", default=None,
                        help="directory holding the stored BENCH_*.json "
                             "baselines to compare against")
    gate_p.add_argument("--bench-fresh", metavar="DIR", default=".",
                        help="directory holding the fresh BENCH_*.json "
                             "files (default: current directory)")
    gate_p.add_argument("--report", metavar="FILE", default=None,
                        help="write the delta report JSON to FILE (the "
                             "CI artifact)")
    gate_p.add_argument("--pretty", action="store_true")

    inspect_p = commands.add_parser(
        "inspect", help="render one trace (waterfall + summary) from a "
                        "daemon or a journal file")
    inspect_p.add_argument("trace_id", help="trace id (see "
                           "provenance.trace_id in any traced response)")
    inspect_p.add_argument("--endpoint", default=None,
                           help="fetch the stitched trace from a running "
                                "daemon (default: $REPRO_SERVICE_SOCKET)")
    inspect_p.add_argument("--journal", metavar="FILE", default=None,
                           help="read the trace from a run-manifest "
                                "journal file (default: "
                                "$REPRO_OBS_JOURNAL)")
    inspect_p.add_argument("--json", action="store_true", dest="as_json",
                           help="emit the raw span/event JSON instead of "
                                "the rendered waterfall")
    inspect_p.add_argument("--pretty", action="store_true")

    return parser


def _build_request(args: argparse.Namespace):
    if args.request:
        return request_from_json(_read_text(args.request))
    if args.command == "compile":
        source = _read_text(args.source) if args.source else None
        return CompileRequest(kernel=args.kernel, source=source,
                              name=args.name, machine=args.machine,
                              opt_level=args.opt_level)
    if args.command == "run":
        return RunRequest(kernel=args.kernel, machine=args.machine,
                          size=args.size, seed=args.seed,
                          opt_level=args.opt_level, engine=args.engine,
                          batch=args.batch)
    if args.command == "customize":
        return CustomizeRequest(kernel=args.kernel, machine=args.machine,
                                area_budget_kgates=args.budget,
                                max_operations=args.max_ops, size=args.size,
                                seed=args.seed, opt_level=args.opt_level,
                                name=args.name)
    if args.command == "explore":
        space = {axis: getattr(args, axis) for axis in (
            "issue_widths", "register_counts", "cluster_counts",
            "mul_unit_counts", "mem_unit_counts", "custom_budgets",
        ) if getattr(args, axis) is not None}
        application = (json.loads(_read_text(args.application))
                       if args.application else None)
        return ExploreRequest(mix=args.mix, strategy=args.strategy,
                              objective=args.objective, size=args.size,
                              seed=args.seed, opt_level=args.opt_level,
                              engine=args.engine, fidelity=args.fidelity,
                              rescore=args.rescore, space=space or None,
                              search_seed=args.search_seed,
                              iterations=args.iterations,
                              max_rounds=args.max_rounds,
                              workers=args.workers or None,
                              application=application)
    if args.command == "matrix":
        return MatrixRequest(machines=args.machines, kernels=args.kernels,
                             size=args.size, seed=args.seed,
                             opt_level=args.opt_level, engine=args.engine,
                             fidelity=args.fidelity)
    if args.command == "gen":
        return PopulationRequest(count=args.count, seed=args.seed,
                                 families=args.families,
                                 budget_kgates=args.budget,
                                 engine=args.engine, size=args.size,
                                 opt_level=args.opt_level,
                                 kernels_per_family=args.kernels_per_family,
                                 validate_population=not args.no_validate,
                                 workers=args.workers or None)
    if args.command == "app":
        application = (json.loads(_read_text(args.application))
                       if args.application else None)
        return AppRequest(application=application, topology=args.topology,
                          app_seed=args.app_seed, machine=args.machine,
                          engine=args.engine, fidelity=args.fidelity,
                          opt_level=args.opt_level, windows=args.windows,
                          period_us=args.period_us,
                          deadline_us=args.deadline_us)
    raise SchemaError(f"unknown command {args.command!r}")


def _succeeded(response) -> bool:
    if isinstance(response, MatrixResponse):
        return response.all_correct
    if isinstance(response, (RunResponse, CustomizeResponse, AppResponse)):
        return response.correct
    if isinstance(response, PopulationResponse):
        return response.valid is None or response.valid == response.count
    return True


def _emit(args: argparse.Namespace, data) -> None:
    indent = 2 if getattr(args, "pretty", False) else None
    sys.stdout.write(json.dumps(data, sort_keys=True, indent=indent) + "\n")


def _service_main(args: argparse.Namespace) -> int:
    from ..service import JobFailed, ServiceClient, ServiceDaemon, ServiceError

    if args.command == "serve":
        daemon = ServiceDaemon(
            args.root, endpoint=args.endpoint,
            workers=args.service_workers, worker_mode=args.worker_mode,
            store_budget_bytes=args.store_budget_bytes)
        with daemon:
            print(json.dumps({"endpoint": daemon.endpoint,
                              "store_dir": daemon.store_dir,
                              "workers": daemon.workers,
                              "worker_mode": daemon.worker_mode},
                             sort_keys=True), flush=True)
            import time as _time

            deadline = (None if args.duration is None
                        else _time.monotonic() + args.duration)
            try:
                while not daemon._stopping:
                    if deadline is not None and _time.monotonic() >= deadline:
                        break
                    _time.sleep(0.2)
            except KeyboardInterrupt:
                pass
        return 0

    try:
        client = ServiceClient(args.endpoint)
        if args.command == "submit":
            request = request_from_json(_read_text(args.request))
            handle = client.submit(request, priority=args.priority)
            if not args.wait:
                _emit(args, handle.record)
                return 0
            response = handle.result(timeout=args.timeout)
            _emit(args, response.to_dict())
            return 0 if _succeeded(response) else 1
        if args.command == "status":
            _emit(args, client.status(args.id) if args.id
                  else client.stats())
            return 0
        if args.command == "result":
            response = client.result(args.id, timeout=args.timeout)
            _emit(args, response.to_dict())
            return 0 if _succeeded(response) else 1
        if args.command == "cancel":
            cancelled = client.cancel(args.id)
            _emit(args, {"id": args.id, "cancelled": cancelled})
            return 0 if cancelled else 1
    except JobFailed as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (ServiceError, SchemaError, OSError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    raise SchemaError(f"unknown command {args.command!r}")


def _obs_main(args: argparse.Namespace) -> int:
    import os

    from ..obs import (
        default_journal_path, journal_spans, latest_metrics, read_journal,
        render_prometheus, render_trace_summary, render_waterfall,
    )
    from ..service.client import ENDPOINT_ENV

    endpoint = args.endpoint or os.environ.get(ENDPOINT_ENV)

    if args.command == "stats":
        snapshot = None
        if endpoint:
            from ..service import ServiceClient, ServiceError

            try:
                with ServiceClient(endpoint, timeout=5.0) as client:
                    snapshot = client.stats().get("metrics")
            except ServiceError as exc:
                if args.endpoint:  # explicit endpoint must work
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
        journal = args.journal or default_journal_path()
        if snapshot is None and journal:
            try:
                snapshot = latest_metrics(read_journal(journal))
            except OSError:
                snapshot = None
        if snapshot is None:
            # Nothing persistent to report: a fresh Session's registry
            # (mostly zeros, but the full metric families render).
            with Session(name="stats") as session:
                snapshot = session.metrics()
        if args.format == "prometheus":
            sys.stdout.write(render_prometheus(snapshot))
        else:
            _emit(args, snapshot)
        return 0

    if args.command == "inspect":
        trace_id = args.trace_id
        spans: List = []
        events: List = []
        if endpoint:
            from ..service import ServiceClient, ServiceError

            try:
                with ServiceClient(endpoint, timeout=5.0) as client:
                    reply = client.trace(trace_id)
                spans = list(reply.get("spans") or [])
                events = list(reply.get("events") or [])
            except ServiceError as exc:
                if args.endpoint:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
        if not spans and not events:
            journal = args.journal or default_journal_path()
            if not journal:
                print("error: no --endpoint, $REPRO_SERVICE_SOCKET, "
                      "--journal or $REPRO_OBS_JOURNAL to read the trace "
                      "from", file=sys.stderr)
                return 2
            try:
                events = read_journal(journal, trace_id=trace_id)
            except OSError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            spans = journal_spans(events)
        if not spans and not events:
            print(f"error: trace {trace_id!r} not found", file=sys.stderr)
            return 1
        if args.as_json:
            _emit(args, {"trace_id": trace_id, "spans": spans,
                         "events": [dict(event) for event in events]})
            return 0
        sys.stdout.write(render_trace_summary(events, spans) + "\n")
        if spans:
            sys.stdout.write(render_waterfall(spans) + "\n")
        return 0

    raise SchemaError(f"unknown command {args.command!r}")


def _replay_main(args: argparse.Namespace) -> int:
    import time as _time

    from ..replay import (
        load_manifests, manifest_from_response, replay_manifest, run_gate,
    )

    if args.command == "record":
        request = request_from_json(_read_text(args.request))
        with Session(name="record") as session:
            started = _time.perf_counter()
            response = session.execute(request)
            elapsed = _time.perf_counter() - started
        manifest = manifest_from_response(
            request, response, name=args.name or "", source="cli:record",
            elapsed_s=elapsed, band=args.band)
        manifest.save(args.output)
        _emit(args, {"manifest": args.output, "name": manifest.name,
                     "kind": manifest.kind,
                     "fingerprints": len(manifest.fingerprints),
                     "response_fingerprint": manifest.response_fingerprint,
                     "elapsed_s": round(elapsed, 6)})
        return 0

    if args.command == "replay":
        manifests, problems = load_manifests(args.target,
                                             trace_id=args.trace_id)
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        if not manifests:
            print(f"error: no replayable manifests in {args.target!r}",
                  file=sys.stderr)
            return 2
        reports = [replay_manifest(manifest) for manifest in manifests]
        payload = {"kind": "replay.report", "ok": all(r.ok for r in reports),
                   "replays": [r.to_dict() for r in reports]}
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True, indent=2)
                handle.write("\n")
        if args.as_json:
            _emit(args, payload)
        else:
            for report in reports:
                print(report.render())
        if problems:
            return 2
        return 0 if payload["ok"] else 1

    if args.command == "gate":
        if not args.targets and not args.bench_baseline:
            print("error: nothing to gate (pass manifest targets and/or "
                  "--bench-baseline)", file=sys.stderr)
            return 2
        report = run_gate(list(args.targets),
                          bench_baseline=args.bench_baseline,
                          bench_fresh=args.bench_fresh)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(), handle, sort_keys=True, indent=2)
                handle.write("\n")
        print(report.render())
        if not report.entries:
            print("error: gate found nothing to check", file=sys.stderr)
            return 2
        return 0 if report.ok else 1

    raise SchemaError(f"unknown command {args.command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    from ..frontend.c_frontend import CFrontendError

    args = build_parser().parse_args(argv)
    if args.command in ("serve", "submit", "status", "result", "cancel"):
        return _service_main(args)
    if args.command in ("stats", "inspect"):
        return _obs_main(args)
    if args.command in ("record", "replay", "gate"):
        try:
            return _replay_main(args)
        except (SchemaError, ValueError, KeyError, TypeError,
                OSError) as exc:
            message = exc.args[0] if exc.args else exc
            print(f"error: {message}", file=sys.stderr)
            return 2
    try:
        request = _build_request(args)
        with Session(workers=getattr(args, "workers", 0) or 0,
                     obs=getattr(args, "obs", None),
                     journal=getattr(args, "journal", None)) as session:
            response = session.execute(request)
    except (SchemaError, ValueError, KeyError, TypeError, OSError,
            CFrontendError) as exc:
        # Request errors (unknown kernel/machine/mix, malformed JSON, bad
        # C source) exit 2; exit 1 is reserved for oracle disagreements.
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2

    text = response.to_json(indent=2 if args.pretty else None) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        sys.stdout.write(text)
    return 0 if _succeeded(response) else 1
