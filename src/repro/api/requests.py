"""Versioned, JSON-round-trippable service requests and responses.

This module is the wire format of the :mod:`repro.api` façade — the
"design house submits a workload, gets back a machine and numbers"
interface of Fisher's customization-as-a-service vision.  Everything a
client can ask for is one of seven request dataclasses (compile, run,
customize, explore, matrix, population, app), deliberately primitive-typed so
that requests serialize to JSON, travel across processes, and replay
bit-identically:

* machines are referenced by preset name (``"vliw4"``,
  ``"risc_baseline"``) or by a design-point mapping
  (``{"issue_width": 4, "registers": 64}``) — never by live objects;
* every message carries ``kind`` and ``schema_version``;
  :func:`request_from_dict` / :func:`response_from_dict` dispatch on the
  former and refuse versions newer than they understand;
* responses carry a :class:`Provenance` record: the session that served
  the request, the engine used, elapsed wall-clock, per-stage cache
  records (fingerprint, hit/miss, seconds) and a cache-statistics
  snapshot.

Unknown keys in an incoming message are ignored (forward compatibility
within a schema version); a ``kind`` mismatch or an unsupported
``schema_version`` raises :class:`SchemaError`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, List, Mapping, Optional, Union

from ..arch.machine import MachineDescription
from ..arch.presets import PRESETS, get_preset
from ..dse.explorer import OBJECTIVES
from ..dse.space import DesignPoint, DesignSpace
from ..exec.registry import (
    EVALUATION_ENGINES, FIDELITY_LEVELS, FUNCTIONAL_ENGINES,
)
from ..gen.application import APP_TOPOLOGIES
from ..gen.spec import FAMILIES

#: version of the request/response wire format; bump on breaking change.
SCHEMA_VERSION = 1

#: exploration strategies :class:`ExploreRequest` may name.
STRATEGIES = ("exhaustive", "greedy", "annealing")

#: engines :class:`RunRequest` may name: the cycle-accurate simulator or
#: either functional engine.
RUN_ENGINES = ("cycle",) + FUNCTIONAL_ENGINES

#: function-style preset aliases accepted wherever a machine is named
#: (``repro.arch.presets`` registers presets under their table names).
PRESET_ALIASES: Dict[str, str] = {
    "risc_baseline": "risc32",
    "clustered_vliw4": "vliw4c2",
    "dsp_core": "dsp16",
    "mass_market_superscalar": "massmkt",
}

#: DesignSpace axis names an ExploreRequest's ``space`` mapping may set.
SPACE_AXES = tuple(f.name for f in fields(DesignSpace))


class SchemaError(ValueError):
    """An incoming message has the wrong kind or an unsupported version."""


def resolve_machine(spec) -> MachineDescription:
    """Turn a serializable machine reference into a machine description.

    Accepts a preset name (including the :data:`PRESET_ALIASES`
    function-style spellings), a mapping of
    :class:`~repro.dse.space.DesignPoint` axes, or — for programmatic
    callers that bypass serialization — a ready
    :class:`MachineDescription`, returned unchanged.
    """
    if isinstance(spec, MachineDescription):
        return spec
    if isinstance(spec, str):
        return get_preset(PRESET_ALIASES.get(spec, spec))
    if isinstance(spec, Mapping):
        return DesignPoint(**dict(spec)).to_machine()
    raise TypeError(
        f"cannot resolve a machine from {type(spec).__name__}; pass a "
        f"preset name ({', '.join(sorted(PRESETS))}), a design-point "
        f"mapping, or a MachineDescription"
    )


def _plain(value):
    """Recursively reduce a message field to JSON-representable data."""
    if hasattr(value, "to_dict"):
        return value.to_dict()
    if isinstance(value, Mapping):
        return {key: _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


@dataclass
class Provenance:
    """How a response was produced (attached to every response).

    ``stages`` holds the staged-compilation records of the build(s) that
    served the request — each entry is ``{stage, key, hit, seconds}``
    with ``key`` the stage's content fingerprint; ``cache`` is a
    per-stage hit/miss/timing snapshot of the session's artifact store
    (plus the batch-evaluation counters where a request fanned out).
    """

    session: str = ""
    engine: str = ""
    #: which timing model produced the response's numbers: "cycle",
    #: "trace", or "trace+rescore" (screened then frontier re-scored).
    fidelity: str = "cycle"
    schema_version: int = SCHEMA_VERSION
    elapsed_s: float = 0.0
    stages: List[Dict[str, object]] = field(default_factory=list)
    cache: Dict[str, object] = field(default_factory=dict)
    #: id of the service worker that produced the response ("" when the
    #: request ran in-process rather than through a daemon's pool).
    worker: str = ""
    #: id of the stitched trace that produced this response ("" when the
    #: request ran with tracing off); feed it to ``python -m repro
    #: inspect`` to see the waterfall.
    trace_id: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "session": self.session, "engine": self.engine,
            "fidelity": self.fidelity,
            "schema_version": self.schema_version,
            "elapsed_s": self.elapsed_s,
            "stages": [dict(record) for record in self.stages],
            "cache": _plain(self.cache),
            "worker": self.worker,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Provenance":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in dict(data).items() if k in known})


class Message:
    """Shared (de)serialization for requests and responses.

    Subclasses are dataclasses with a ``kind`` class attribute; the dict
    form is the dataclass fields plus ``kind`` and ``schema_version``.
    """

    kind: ClassVar[str] = ""

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind, "schema_version": SCHEMA_VERSION,
        }
        for f in fields(self):
            data[f.name] = _plain(getattr(self, f.name))
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]):
        payload = dict(data)
        kind = payload.pop("kind", cls.kind)
        if kind != cls.kind:
            raise SchemaError(
                f"kind mismatch: expected '{cls.kind}', got '{kind}'")
        version = payload.pop("schema_version", SCHEMA_VERSION)
        if not isinstance(version, int) or not 1 <= version <= SCHEMA_VERSION:
            raise SchemaError(
                f"unsupported schema_version {version!r} for '{cls.kind}' "
                f"(this build understands 1..{SCHEMA_VERSION})")
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        if isinstance(kwargs.get("provenance"), Mapping):
            kwargs["provenance"] = Provenance.from_dict(kwargs["provenance"])
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str):
        return cls.from_dict(json.loads(text))


#: kind -> request class (filled by the decorators below).
REQUEST_TYPES: Dict[str, type] = {}
#: kind -> response class.
RESPONSE_TYPES: Dict[str, type] = {}


def _register_request(cls):
    REQUEST_TYPES[cls.kind] = cls
    return cls


def _register_response(cls):
    RESPONSE_TYPES[cls.kind] = cls
    return cls


def request_from_dict(data: Mapping[str, object]):
    """Dispatch a request dict to its dataclass by ``kind``."""
    kind = data.get("kind")
    try:
        cls = REQUEST_TYPES[kind]
    except KeyError:
        raise SchemaError(
            f"unknown request kind {kind!r}; known: "
            f"{', '.join(sorted(REQUEST_TYPES))}") from None
    return cls.from_dict(data)


def request_from_json(text: str):
    return request_from_dict(json.loads(text))


def response_from_dict(data: Mapping[str, object]):
    """Dispatch a response dict to its dataclass by ``kind``."""
    kind = data.get("kind")
    try:
        cls = RESPONSE_TYPES[kind]
    except KeyError:
        raise SchemaError(
            f"unknown response kind {kind!r}; known: "
            f"{', '.join(sorted(RESPONSE_TYPES))}") from None
    return cls.from_dict(data)


def response_from_json(text: str):
    return response_from_dict(json.loads(text))


def _check_machine(machine) -> None:
    if not isinstance(machine, (str, Mapping)):
        raise ValueError(
            "request machines must be serializable: a preset name or a "
            "design-point mapping (use Session.toolchain for live "
            "MachineDescription objects)")


def _check_engine(engine, options, what: str) -> None:
    if engine is not None and engine not in options:
        raise ValueError(
            f"unknown {what} engine '{engine}'; options: {', '.join(options)}")


# ----------------------------------------------------------------------
# Requests.
# ----------------------------------------------------------------------

@_register_request
@dataclass
class CompileRequest(Message):
    """Compile one workload (a registry kernel or raw C) for a machine.

    Fields left ``None`` fall back to the serving session's defaults.
    """

    kind: ClassVar[str] = "compile"

    kernel: Optional[str] = None
    source: Optional[str] = None
    name: Optional[str] = None
    machine: Union[str, Dict[str, object]] = "vliw4"
    opt_level: Optional[int] = None
    unroll_factor: Optional[int] = None

    def __post_init__(self) -> None:
        if bool(self.kernel) == bool(self.source):
            raise ValueError(
                "CompileRequest needs exactly one of 'kernel' (a registry "
                "name) or 'source' (C text)")
        _check_machine(self.machine)


@_register_request
@dataclass
class RunRequest(Message):
    """Compile and execute one registry kernel, checked against its oracle."""

    kind: ClassVar[str] = "run"

    kernel: str = ""
    machine: Union[str, Dict[str, object]] = "vliw4"
    size: Optional[int] = None
    seed: Optional[int] = None
    opt_level: Optional[int] = None
    #: "cycle" (cycle-accurate, the default) or a functional engine
    #: ("interpreter" / "compiled" / "native": value + instruction
    #: counts only).
    engine: str = "cycle"
    #: run the kernel over N argument sets (seeds ``seed..seed+N-1``)
    #: through the :func:`repro.exec.run_batch` cascade instead of one
    #: oracle-checked execution; functional engines only.
    batch: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValueError("RunRequest needs a kernel name")
        _check_machine(self.machine)
        _check_engine(self.engine, RUN_ENGINES, "run")
        if self.batch is not None:
            if self.batch < 1:
                raise ValueError("RunRequest batch must be at least 1")
            if self.engine == "cycle":
                raise ValueError(
                    "batched runs use the functional engines; pass "
                    f"engine= one of {', '.join(FUNCTIONAL_ENGINES)}")


@_register_request
@dataclass
class CustomizeRequest(Message):
    """Derive a custom family member for one kernel and measure the gain."""

    kind: ClassVar[str] = "customize"

    kernel: str = ""
    machine: Union[str, Dict[str, object]] = "vliw4"
    area_budget_kgates: float = 40.0
    max_operations: int = 8
    size: Optional[int] = None
    seed: Optional[int] = None
    opt_level: Optional[int] = None
    #: name for the customized machine (derived from the base if None).
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.kernel:
            raise ValueError("CustomizeRequest needs a kernel name")
        _check_machine(self.machine)
        if self.area_budget_kgates <= 0:
            raise ValueError(
                f"infeasible area budget {self.area_budget_kgates!r}: "
                f"customization needs a positive kgate budget")
        if self.max_operations < 1:
            raise ValueError("max_operations must be at least 1")


@_register_request
@dataclass
class ExploreRequest(Message):
    """Search a design space for the best fit to a workload mix."""

    kind: ClassVar[str] = "explore"

    mix: str = "video"
    strategy: str = "exhaustive"
    objective: str = "perf_per_area"
    size: Optional[int] = None
    seed: Optional[int] = None
    opt_level: Optional[int] = None
    #: evaluation engine: "cycle" or "compiled" (session default if None).
    engine: Optional[str] = None
    #: timing-model fidelity: "cycle" or "trace" (session default if None).
    fidelity: Optional[str] = None
    #: screen at trace fidelity and re-score the Pareto frontier at cycle
    #: fidelity (forces trace-fidelity screening regardless of ``fidelity``).
    rescore: bool = False
    #: DesignSpace axes (e.g. {"issue_widths": [1, 2, 4]}); the small
    #: preset space when None.
    space: Optional[Dict[str, List[object]]] = None
    #: RNG seed of the stochastic strategies (Explorer default if None).
    search_seed: Optional[int] = None
    iterations: int = 40
    max_rounds: int = 4
    #: process-pool width for the batched fan-out (session default if None).
    workers: Optional[int] = None
    #: explore for an *application mix* instead of a kernel mix: either a
    #: serialized :class:`~repro.dse.app.ApplicationMix` dict (``{"name",
    #: "apps"}``) or a single :class:`~repro.app.ApplicationSpec` dict
    #: (``{"name", "nodes", ...}``), wrapped in a one-app mix.  ``mix``
    #: is ignored when set; real-time objectives (``deadline_miss_rate``,
    #: ``p99_latency``, ``energy_per_window``) need it.
    application: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy '{self.strategy}'; options: "
                f"{', '.join(STRATEGIES)}")
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective '{self.objective}'; options: "
                f"{', '.join(OBJECTIVES)}")
        _check_engine(self.engine, EVALUATION_ENGINES, "evaluation")
        _check_engine(self.fidelity, FIDELITY_LEVELS, "fidelity")
        if self.space is not None:
            unknown = set(self.space) - set(SPACE_AXES)
            if unknown:
                raise ValueError(
                    f"unknown design-space axes {sorted(unknown)}; "
                    f"options: {', '.join(SPACE_AXES)}")
        if self.application is not None:
            if not isinstance(self.application, Mapping):
                raise ValueError(
                    "ExploreRequest application must be a serialized "
                    "ApplicationMix or ApplicationSpec mapping")
            if "apps" not in self.application \
                    and "nodes" not in self.application:
                raise ValueError(
                    "ExploreRequest application mapping needs 'apps' (an "
                    "ApplicationMix) or 'nodes' (a single ApplicationSpec)")


@_register_request
@dataclass
class MatrixRequest(Message):
    """Run the N×M validation matrix over named machines and kernels."""

    kind: ClassVar[str] = "matrix"

    machines: List[Union[str, Dict[str, object]]] = field(
        default_factory=lambda: ["vliw4", "risc32"])
    kernels: Optional[List[str]] = None
    size: Optional[int] = None
    seed: Optional[int] = None
    opt_level: Optional[int] = None
    #: functional cross-check engine (session default if None).
    engine: Optional[str] = None
    #: timing-model fidelity: "cycle" or "trace" (session default if None).
    fidelity: Optional[str] = None

    def __post_init__(self) -> None:
        self.machines = list(self.machines)
        if not self.machines:
            raise ValueError("MatrixRequest needs at least one machine")
        for machine in self.machines:
            _check_machine(machine)
        if self.kernels is not None:
            self.kernels = list(self.kernels)
        _check_engine(self.engine, FUNCTIONAL_ENGINES, "functional")
        _check_engine(self.fidelity, FIDELITY_LEVELS, "fidelity")


@_register_request
@dataclass
class PopulationRequest(Message):
    """Generate a synthetic workload population, validate and sweep it."""

    kind: ClassVar[str] = "population"

    count: int = 10
    seed: int = 0
    families: Optional[List[str]] = None
    budget_kgates: float = 32.0
    engine: str = "compiled"
    size: Optional[int] = None
    opt_level: Optional[int] = None
    kernels_per_family: int = 3
    #: run the dual-engine bit-identical validation pass.
    validate_population: bool = True
    #: process-pool width for the gain sweep (session default if None).
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("population count must be at least 1")
        if self.families is not None:
            self.families = list(self.families)
            unknown = set(self.families) - set(FAMILIES)
            if unknown:
                raise ValueError(
                    f"unknown families {sorted(unknown)}; options: "
                    f"{', '.join(FAMILIES)}")
        _check_engine(self.engine, EVALUATION_ENGINES, "evaluation")
        if self.kernels_per_family < 1:
            raise ValueError("kernels_per_family must be at least 1")


@_register_request
@dataclass
class AppRequest(Message):
    """Run one multi-kernel dataflow application window by window.

    The application comes in one of two ways: a serialized
    :class:`~repro.app.ApplicationSpec` mapping (``application``), or a
    generator recipe (``topology`` + ``app_seed``) that the session
    expands through :func:`repro.gen.sample_application`.  The
    ``windows`` / ``period_us`` / ``deadline_us`` fields override the
    spec's window stream either way (None keeps the spec's own values).
    """

    kind: ClassVar[str] = "app"

    #: serialized ApplicationSpec (exactly one of this and ``topology``).
    application: Optional[Dict[str, object]] = None
    #: generator topology ("chain", "fan_in", "diamond").
    topology: Optional[str] = None
    #: generator seed for the ``topology`` recipe.
    app_seed: int = 0
    machine: Union[str, Dict[str, object]] = "vliw4"
    #: functional engine node windows execute on.
    engine: str = "compiled"
    #: "cycle" executes every window; "trace" prices each node once and
    #: re-aggregates the graph analytically.
    fidelity: str = "cycle"
    opt_level: Optional[int] = None
    windows: Optional[int] = None
    period_us: Optional[float] = None
    deadline_us: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.application is None) == (self.topology is None):
            raise ValueError(
                "AppRequest needs exactly one of 'application' (a "
                "serialized ApplicationSpec) or 'topology' (a generator "
                f"recipe: {', '.join(APP_TOPOLOGIES)})")
        if self.application is not None \
                and not isinstance(self.application, Mapping):
            raise ValueError(
                "AppRequest application must be a serialized "
                "ApplicationSpec mapping")
        if self.topology is not None and self.topology not in APP_TOPOLOGIES:
            raise ValueError(
                f"unknown topology '{self.topology}'; options: "
                f"{', '.join(APP_TOPOLOGIES)}")
        _check_machine(self.machine)
        _check_engine(self.engine, FUNCTIONAL_ENGINES, "functional")
        _check_engine(self.fidelity, FIDELITY_LEVELS, "fidelity")
        if self.windows is not None and self.windows < 1:
            raise ValueError("AppRequest windows must be at least 1")


# ----------------------------------------------------------------------
# Responses.
# ----------------------------------------------------------------------

@_register_response
@dataclass
class CompileResponse(Message):
    """What one compile produced (artifacts stay in the session store)."""

    kind: ClassVar[str] = "compile.response"

    module: str = ""
    machine: str = ""
    #: content key of the scheduled-code artifact in the session store.
    backend_key: str = ""
    functions: int = 0
    code_bytes: int = 0
    spilled_registers: int = 0
    assembly: str = ""
    provenance: Optional[Provenance] = None


@_register_response
@dataclass
class RunResponse(Message):
    kind: ClassVar[str] = "run.response"

    kernel: str = ""
    machine: str = ""
    engine: str = ""
    correct: bool = False
    value: object = None
    expected: object = None
    cycles: int = 0
    time_us: float = 0.0
    energy_uj: float = 0.0
    ipc: float = 0.0
    instructions: int = 0
    #: batched runs: how many argument sets ran (0 = single run), which
    #: tier of the run_batch cascade actually executed them ("native",
    #: "vector", "compiled" or "interpreter"), and the per-set values.
    batch: int = 0
    batch_engine: str = ""
    values: List[object] = field(default_factory=list)
    provenance: Optional[Provenance] = None


@_register_response
@dataclass
class CustomizeResponse(Message):
    kind: ClassVar[str] = "customize.response"

    kernel: str = ""
    base_machine: str = ""
    custom_machine: str = ""
    selected_ops: List[str] = field(default_factory=list)
    area_added_kgates: float = 0.0
    base_cycles: int = 0
    custom_cycles: int = 0
    speedup: float = 0.0
    correct: bool = False
    summary: str = ""
    provenance: Optional[Provenance] = None


@_register_response
@dataclass
class ExploreResponse(Message):
    kind: ClassVar[str] = "explore.response"

    mix: str = ""
    strategy: str = ""
    objective: str = ""
    engine: str = ""
    fidelity: str = "cycle"
    points_evaluated: int = 0
    best: Optional[Dict[str, object]] = None
    knee: Optional[Dict[str, object]] = None
    pareto: List[str] = field(default_factory=list)
    rows: List[Dict[str, object]] = field(default_factory=list)
    provenance: Optional[Provenance] = None


@_register_response
@dataclass
class MatrixResponse(Message):
    kind: ClassVar[str] = "matrix.response"

    machines: List[str] = field(default_factory=list)
    kernels: List[str] = field(default_factory=list)
    engine: str = ""
    fidelity: str = "cycle"
    pass_rate: float = 0.0
    all_correct: bool = False
    rows: List[Dict[str, object]] = field(default_factory=list)
    failures: List[Dict[str, object]] = field(default_factory=list)
    provenance: Optional[Provenance] = None


@_register_response
@dataclass
class PopulationResponse(Message):
    kind: ClassVar[str] = "population.response"

    count: int = 0
    seed: int = 0
    families: List[str] = field(default_factory=list)
    #: kernels that validated bit-identically on both engines
    #: (None when validation was skipped).
    valid: Optional[int] = None
    report: Dict[str, object] = field(default_factory=dict)
    provenance: Optional[Provenance] = None


@_register_response
@dataclass
class AppResponse(Message):
    kind: ClassVar[str] = "app.response"

    application: str = ""
    #: content fingerprint of the application spec that ran.
    fingerprint: str = ""
    machine: str = ""
    engine: str = ""
    fidelity: str = "cycle"
    windows: int = 0
    #: every node of every window matched the composed Python oracle.
    correct: bool = False
    deadline_miss_rate: float = 0.0
    p50_latency_us: float = 0.0
    p95_latency_us: float = 0.0
    p99_latency_us: float = 0.0
    jitter_us: float = 0.0
    energy_per_window_uj: float = 0.0
    period_us: float = 0.0
    deadline_us: float = 0.0
    window_latencies_us: List[float] = field(default_factory=list)
    #: per-node totals (kernel, family, cycles, energy, code bytes).
    nodes: List[Dict[str, object]] = field(default_factory=list)
    provenance: Optional[Provenance] = None
