"""Future-backed job handles for submitted requests.

:meth:`repro.api.Session.submit` wraps every request in a :class:`Job`:
a thin handle over a :class:`concurrent.futures.Future` that remembers
the request it is executing and exposes service-style status strings.
Jobs exist so callers can fan work out (``submit`` several requests,
then collect) without blocking on each one — the heavyweight
parallelism (the process pool under design-space fan-out) lives inside
:class:`~repro.exec.batch.BatchEvaluator`, below the job layer.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Optional


class Job:
    """One submitted request and its eventual response."""

    def __init__(self, job_id: str, request, future: Future) -> None:
        self.id = job_id
        self.request = request
        self._future = future

    # ------------------------------------------------------------------
    # Status.
    # ------------------------------------------------------------------
    @property
    def status(self) -> str:
        """``queued`` / ``running`` / ``done`` / ``error`` / ``cancelled``."""
        if self._future.cancelled():
            return "cancelled"
        if self._future.done():
            return "error" if self._future.exception() is not None else "done"
        if self._future.running():
            return "running"
        return "queued"

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> bool:
        """Try to cancel before the job starts running."""
        return self._future.cancel()

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------
    def result(self, timeout: Optional[float] = None):
        """Block for the response (re-raises the job's exception)."""
        return self._future.result(timeout=timeout)

    def exception(self, timeout: Optional[float] = None):
        """Block for completion and return the exception, if any."""
        return self._future.exception(timeout=timeout)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Job(id={self.id!r}, kind={self.request.kind!r}, "
                f"status={self.status!r})")
