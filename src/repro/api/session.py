"""The session-scoped service façade: one front door to the whole stack.

A :class:`Session` owns everything that used to be process-global state:
the content-addressed :class:`~repro.pipeline.store.ArtifactStore`, the
staged :class:`~repro.pipeline.compile.CompilePipeline` built on it, the
default execution engines (resolved through
:mod:`repro.exec.registry`), and the default optimization level, seeds
and fan-out width.  Two sessions never share artifact stores, so a
server can isolate tenants (or a test can isolate cases) by giving each
its own session.

Work enters a session one of three ways:

* **objects** — :meth:`toolchain` / :meth:`evaluator` / :meth:`explorer`
  hand back the classic driver objects pre-bound to the session's
  pipeline and defaults;
* **requests** — :meth:`execute` takes one of the serializable request
  dataclasses of :mod:`repro.api.requests` and returns the matching
  provenance-carrying response;
* **jobs** — :meth:`submit` wraps :meth:`execute` in a future-backed
  :class:`~repro.api.jobs.Job`; :meth:`run_batch` submits a mixed
  request list and collects the responses in order.  Design-space
  requests additionally fan out over the
  :class:`~repro.exec.batch.BatchEvaluator` process pool
  (``workers``).

A process-wide **default session** (:func:`default_session`) keeps the
pre-session API working: ``Toolchain()``, ``run_matrix()``,
``Evaluator()`` and friends fall back to its pipeline when none is
injected, exactly as they used to fall back to the (now deprecated)
``global_compile_pipeline()``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Dict, List, Optional, Sequence, Union

from ..exec.cache import CodeCache
from ..exec.registry import validate_engine
from ..obs import (
    ObsJournal, default_journal_path, global_tracer, metrics_enabled,
    obs_override, validate_obs_mode,
)
from ..obs.metrics import MetricsRegistry
from ..pipeline.compile import CompilePipeline
from ..pipeline.store import ArtifactStore
from .jobs import Job
from .requests import (
    AppRequest, AppResponse, CompileRequest, CompileResponse,
    CustomizeRequest, CustomizeResponse, ExploreRequest, ExploreResponse,
    MatrixRequest, MatrixResponse, PopulationRequest, PopulationResponse,
    Provenance, RunRequest, RunResponse, resolve_machine,
)

#: monotonically numbers anonymous sessions for provenance labels.
_SESSION_COUNTER = itertools.count(1)

#: env knob: per-request delay in seconds before the handler runs —
#: the in-process sibling of ``REPRO_SERVICE_TASK_DELAY_S``, giving the
#: regression-gate self-tests a deterministic way to inject a slowdown
#: that must trip the perf band.
SESSION_DELAY_ENV = "REPRO_SESSION_DELAY_S"


def _run_args(args: tuple) -> tuple:
    """Fresh per-run copies so simulator write-backs never alias."""
    from ..workloads.kernels import copy_run_args

    return copy_run_args(args)


class Session:
    """Scoped service state: artifact store, pipeline, engines, defaults."""

    def __init__(self, name: Optional[str] = None, *,
                 pipeline: Optional[CompilePipeline] = None,
                 store: Optional[ArtifactStore] = None,
                 cache_dir: Optional[str] = None,
                 engine: Optional[str] = None,
                 evaluation_engine: str = "cycle",
                 fidelity: str = "cycle",
                 opt_level: int = 2, unroll_factor: int = 4,
                 seed: int = 1234, size: Optional[int] = None,
                 workers: int = 0,
                 obs: Optional[str] = None,
                 journal: Optional[Union[str, ObsJournal]] = None) -> None:
        if engine is None:
            # The env var lets compiler-equipped hosts opt whole script
            # runs and service daemons into the native tier without
            # touching call sites; see the README engine matrix.
            engine = os.environ.get("REPRO_ENGINE") or "interpreter"
        validate_engine(engine, "functional")
        validate_engine(evaluation_engine, "evaluation")
        validate_engine(fidelity, "fidelity")
        if pipeline is not None:
            if store is not None and store is not pipeline.store:
                raise ValueError(
                    "pass either a pipeline or a store, not two different "
                    "ones: the session's store is its pipeline's store")
            self.pipeline = pipeline
        else:
            store = store if store is not None else ArtifactStore(
                cache_dir=cache_dir)
            self.pipeline = CompilePipeline(store)
        self.store = self.pipeline.store
        #: session-scoped threaded-code cache, bound to the store so its
        #: eviction pressure shows up in the per-stage stats tables.
        self.code_cache = CodeCache(store=self.store)
        self.name = name or f"session-{next(_SESSION_COUNTER)}"
        #: default functional engine (run_reference, matrix cross-checks).
        self.engine = engine
        #: default Evaluator measurement engine for design-space work.
        self.evaluation_engine = evaluation_engine
        #: default timing-model fidelity ("cycle" simulates every design
        #: point; "trace" profiles once and retimes analytically).
        self.fidelity = fidelity
        self.opt_level = opt_level
        self.unroll_factor = unroll_factor
        self.seed = seed
        self.size = size
        #: process-pool width for batched design-point fan-out.
        self.workers = workers
        #: per-session observability mode override (None: env/global mode,
        #: see :mod:`repro.obs`); applied around every :meth:`execute`.
        self.obs = validate_obs_mode(obs) if obs is not None else None
        if journal is None:
            journal = default_journal_path()
        #: where this session's run manifests go (None: no journal).
        self.journal: Optional[ObsJournal] = (
            journal if isinstance(journal, ObsJournal) or journal is None
            else ObsJournal(str(journal)))
        #: the session's metrics registry — the same one its store counts
        #: into, so cache counters and request metrics export together.
        self.registry: MetricsRegistry = getattr(
            self.store, "registry", None) or MetricsRegistry()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._jobs: List[Job] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Defaults plumbing.
    # ------------------------------------------------------------------
    def _opt(self, value: Optional[int]) -> int:
        return self.opt_level if value is None else value

    def _unroll(self, value: Optional[int]) -> int:
        return self.unroll_factor if value is None else value

    def _seed(self, value: Optional[int]) -> int:
        return self.seed if value is None else value

    def _size(self, value: Optional[int]) -> Optional[int]:
        return self.size if value is None else value

    # ------------------------------------------------------------------
    # Classic driver objects, bound to this session.
    # ------------------------------------------------------------------
    def toolchain(self, machine, *, opt_level: Optional[int] = None,
                  unroll_factor: Optional[int] = None,
                  engine: Optional[str] = None, library=None):
        """A :class:`~repro.toolchain.Toolchain` on this session's pipeline."""
        from ..toolchain.driver import Toolchain

        return Toolchain(
            resolve_machine(machine), opt_level=self._opt(opt_level),
            unroll_factor=self._unroll(unroll_factor), library=library,
            engine=engine if engine is not None else self.engine,
            pipeline=self.pipeline)

    def evaluator(self, mix, *, size: Optional[int] = None,
                  opt_level: Optional[int] = None,
                  seed: Optional[int] = None,
                  engine: Optional[str] = None,
                  fidelity: Optional[str] = None):
        """A :class:`~repro.dse.Evaluator` on this session's pipeline."""
        from ..dse.objectives import Evaluator
        from ..workloads.suite import get_mix

        if isinstance(mix, str):
            mix = get_mix(mix)
        return Evaluator(
            mix, size=self._size(size), opt_level=self._opt(opt_level),
            seed=self._seed(seed),
            engine=engine if engine is not None else self.evaluation_engine,
            fidelity=fidelity if fidelity is not None else self.fidelity,
            pipeline=self.pipeline)

    def app_evaluator(self, mix, *, size: Optional[int] = None,
                      opt_level: Optional[int] = None,
                      seed: Optional[int] = None,
                      engine: Optional[str] = None,
                      fidelity: Optional[str] = None):
        """An :class:`~repro.dse.AppEvaluator` on this session's pipeline.

        ``mix`` may be an :class:`~repro.dse.ApplicationMix`, a single
        :class:`~repro.app.ApplicationSpec` (wrapped in a one-app mix),
        or the serialized mapping of either (an ``ExploreRequest``'s
        ``application`` field).
        """
        from ..app.spec import ApplicationSpec
        from ..dse.app import AppEvaluator, ApplicationMix

        if isinstance(mix, ApplicationSpec):
            mix = ApplicationMix.single(mix)
        elif not isinstance(mix, ApplicationMix):
            data = dict(mix)
            if "apps" in data:
                mix = ApplicationMix.from_dict(data)
            else:
                mix = ApplicationMix.single(ApplicationSpec.from_dict(data))
        return AppEvaluator(
            mix, size=self._size(size), opt_level=self._opt(opt_level),
            seed=self._seed(seed),
            engine=engine if engine is not None else self.evaluation_engine,
            fidelity=fidelity if fidelity is not None else self.fidelity,
            pipeline=self.pipeline)

    def batch_evaluator(self, evaluator, *, workers: Optional[int] = None,
                        cache_dir: Optional[str] = None):
        """A :class:`~repro.exec.BatchEvaluator` over this session's store."""
        from ..exec.batch import BatchEvaluator

        return BatchEvaluator(
            evaluator, workers=self.workers if workers is None else workers,
            cache_dir=cache_dir, store=self.store)

    def explorer(self, evaluator, *, objective: str = "perf_per_area",
                 workers: Optional[int] = None,
                 search_seed: Optional[int] = None):
        """An :class:`~repro.dse.Explorer` batching through this session."""
        from ..dse.explorer import Explorer

        batch = self.batch_evaluator(evaluator, workers=workers)
        kwargs = {} if search_seed is None else {"seed": search_seed}
        return Explorer(evaluator, objective=objective, batch=batch, **kwargs)

    # ------------------------------------------------------------------
    # Request execution.
    # ------------------------------------------------------------------
    _HANDLERS = {
        CompileRequest.kind: "_execute_compile",
        RunRequest.kind: "_execute_run",
        CustomizeRequest.kind: "_execute_customize",
        ExploreRequest.kind: "_execute_explore",
        MatrixRequest.kind: "_execute_matrix",
        PopulationRequest.kind: "_execute_population",
        AppRequest.kind: "_execute_app",
    }

    def execute(self, request):
        """Execute one request synchronously; returns its response.

        Observability wrapper around the per-kind handlers: opens the
        ``session.<kind>`` span (a new root, or a child when the caller
        — a worker, the daemon — already established trace context),
        counts the request into the session registry, stamps
        ``provenance.trace_id``, and journals a run manifest when this
        span was the root of its trace.
        """
        kind = getattr(request, "kind", None)
        handler = self._HANDLERS.get(kind)
        if handler is None:
            raise TypeError(
                f"unsupported request {type(request).__name__!r}; known "
                f"kinds: {', '.join(sorted(self._HANDLERS))}")
        delay = float(os.environ.get(SESSION_DELAY_ENV, "0") or 0.0)
        if delay > 0:
            time.sleep(delay)
        with obs_override(self.obs):
            tracer = global_tracer()
            is_root = tracer.current_context() is None
            started = time.perf_counter()
            with tracer.span(f"session.{kind}", session=self.name) as span:
                response = getattr(self, handler)(request)
                trace_id = span.trace_id
            self._observe(request, response, kind,
                          time.perf_counter() - started)
            if trace_id:
                provenance = getattr(response, "provenance", None)
                if provenance is not None and not provenance.trace_id:
                    provenance.trace_id = trace_id
                if is_root and self.journal is not None:
                    self._journal_manifest(request, response, kind, trace_id,
                                           tracer)
        return response

    def _observe(self, request, response, kind: str, elapsed: float) -> None:
        if not metrics_enabled():
            return
        labels = {"kind": kind}
        self.registry.counter(
            "session_requests", labels,
            help="requests executed by the session").inc()
        self.registry.histogram(
            "request_seconds", labels,
            help="end-to-end request latency").observe(elapsed)
        engine = getattr(getattr(response, "provenance", None), "engine", "")
        if engine:
            self.registry.histogram(
                "engine_run_seconds", {"engine": engine},
                help="request latency by executing engine").observe(elapsed)

    def _journal_manifest(self, request, response, kind: str,
                          trace_id: str, tracer) -> None:
        provenance = getattr(response, "provenance", None)
        try:
            request_dict = request.to_dict()
        except Exception:  # noqa: BLE001 - manifests are best effort
            request_dict = {"kind": kind}
        # The replay-completing sections (response digest + fingerprint,
        # env, git rev, tolerance-banded metrics) make the journal event
        # a full experiment manifest for ``python -m repro replay``.
        extra: Dict[str, object] = {}
        try:
            from ..replay.manifest import (
                capture_env, default_replay_metrics, fingerprint_of,
                git_revision, response_digest,
            )

            digest = response_digest(response)
            extra["response"] = digest
            extra["response_fingerprint"] = fingerprint_of(digest)
            extra["env"] = capture_env()
            extra["git_rev"] = git_revision()
            if provenance is not None:
                extra["replay_metrics"] = default_replay_metrics(
                    provenance.elapsed_s)
        except Exception:  # noqa: BLE001 - manifests are best effort
            extra = {}
        self.journal.manifest(
            kind=kind, trace_id=trace_id, source=f"session:{self.name}",
            request=request_dict,
            provenance=provenance.to_dict() if provenance is not None
            else None,
            spans=tracer.spans_for(trace_id),
            metrics=self.registry.snapshot(),
            extra=extra)

    def submit(self, request) -> Job:
        """Queue one request; returns a future-backed :class:`Job`."""
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=max(1, self.workers),
                    thread_name_prefix=f"{self.name}-job")
            job_id = f"{self.name}/job-{len(self._jobs) + 1}"
            future = self._executor.submit(self.execute, request)
            job = Job(job_id, request, future)
            self._jobs.append(job)
        return job

    def run_batch(self, requests: Sequence) -> List:
        """Submit a mixed request list; responses in request order.

        Any job failure propagates when its response is collected, after
        every job has been submitted.
        """
        jobs = [self.submit(request) for request in requests]
        return [job.result() for job in jobs]

    @property
    def jobs(self) -> List[Job]:
        return list(self._jobs)

    def stats(self) -> Dict[str, Dict[str, object]]:
        """Deprecated: per-stage store counters in the legacy dict shape.

        The numbers come straight from the session's metrics registry
        (they are the same ``store_*`` series ``python -m repro stats``
        exports); prefer :meth:`metrics` for the typed snapshot.
        """
        import warnings

        warnings.warn(
            "Session.stats() is deprecated; use Session.metrics() (typed "
            "registry snapshot) or session.store.stats_dict()",
            DeprecationWarning, stacklevel=2)
        return self.store.stats_dict()

    def metrics(self) -> Dict[str, object]:
        """A snapshot of the session's metrics registry.

        Covers the per-stage store counters plus the request counters
        and latency histograms; render it with
        :func:`repro.obs.render_prometheus` or merge snapshots with
        :func:`repro.obs.merge_snapshot`.
        """
        return self.registry.snapshot()

    def close(self) -> None:
        """Shut down the job executor (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Session({self.name!r}, engine={self.engine!r}, "
                f"evaluation_engine={self.evaluation_engine!r}, "
                f"jobs={len(self._jobs)})")

    # ------------------------------------------------------------------
    # Handlers.
    # ------------------------------------------------------------------
    def _provenance(self, engine: str, started: float,
                    records=None, extra_cache: Optional[Dict] = None,
                    fidelity: str = "cycle") -> Provenance:
        cache: Dict[str, object] = {"pipeline": self.pipeline.stats()}
        if extra_cache:
            cache.update(extra_cache)
        return Provenance(
            session=self.name, engine=engine, fidelity=fidelity,
            elapsed_s=round(time.perf_counter() - started, 6),
            stages=[asdict(record) for record in (records or [])],
            cache=cache)

    def _request_kernel(self, name: str):
        from ..workloads.kernels import get_kernel

        return get_kernel(name)

    def _execute_compile(self, request: CompileRequest) -> CompileResponse:
        from ..backend.asm import render_assembly

        started = time.perf_counter()
        machine = resolve_machine(request.machine)
        if request.kernel:
            kernel = self._request_kernel(request.kernel)
            source, name = kernel.source, request.name or kernel.name
        else:
            source, name = request.source, request.name or "module"
        _module, compiled, report, backend_key = self.pipeline.build(
            source, machine, name=name, opt_level=self._opt(request.opt_level),
            unroll_factor=self._unroll(request.unroll_factor))
        return CompileResponse(
            module=name, machine=machine.name, backend_key=backend_key,
            functions=report.functions,
            code_bytes=report.code.bytes_effective if report.code else 0,
            spilled_registers=report.spilled_registers,
            assembly=render_assembly(compiled),
            provenance=self._provenance("", started, report.stages))

    def _execute_run(self, request: RunRequest) -> RunResponse:
        started = time.perf_counter()
        machine = resolve_machine(request.machine)
        kernel = self._request_kernel(request.kernel)
        args = kernel.arguments(self._size(request.size),
                                seed=self._seed(request.seed))
        expected = kernel.expected(args)
        opt_level = self._opt(request.opt_level)

        if request.engine == "cycle":
            toolchain = self.toolchain(machine, opt_level=opt_level)
            artifacts = toolchain.build(kernel.source, name=kernel.name)
            result = toolchain.run(artifacts, kernel.entry, *_run_args(args))
            return RunResponse(
                kernel=kernel.name, machine=machine.name, engine="cycle",
                correct=result.value == expected, value=result.value,
                expected=expected, cycles=result.cycles,
                time_us=result.time_us, energy_uj=result.energy_uj,
                ipc=result.stats.ipc,
                instructions=result.stats.operations_executed,
                provenance=self._provenance("cycle", started,
                                            artifacts.report.stages))

        from ..exec.engine import make_functional_simulator

        module, records = self.pipeline.front(
            kernel.source, kernel.name, opt_level=opt_level,
            unroll_factor=self.unroll_factor)

        if request.batch:
            from ..exec.vector import run_batch

            seed = self._seed(request.seed)
            size = self._size(request.size)
            arg_sets = [kernel.arguments(size, seed=seed + lane)
                        for lane in range(request.batch)]
            expected_values = [kernel.expected(arg_set)
                               for arg_set in arg_sets]
            result = run_batch(
                module, kernel.entry,
                [_run_args(arg_set) for arg_set in arg_sets],
                engine=request.engine, store=self.store)
            return RunResponse(
                kernel=kernel.name, machine=machine.name,
                engine=request.engine,
                correct=result.values == expected_values,
                value=result.values[0], expected=expected_values[0],
                instructions=sum(result.instructions),
                batch=request.batch, batch_engine=result.engine_used,
                values=result.values,
                provenance=self._provenance(request.engine, started, records))

        simulator = make_functional_simulator(
            module, engine=request.engine, cache=self.code_cache,
            store=self.store)
        value = simulator.run(kernel.entry, *_run_args(args))
        return RunResponse(
            kernel=kernel.name, machine=machine.name, engine=request.engine,
            correct=value == expected, value=value, expected=expected,
            instructions=simulator.profile.instructions_executed,
            provenance=self._provenance(request.engine, started, records))

    def _execute_customize(self, request: CustomizeRequest
                           ) -> CustomizeResponse:
        started = time.perf_counter()
        machine = resolve_machine(request.machine)
        kernel = self._request_kernel(request.kernel)
        opt_level = self._opt(request.opt_level)
        args = kernel.arguments(self._size(request.size),
                                seed=self._seed(request.seed))
        expected = kernel.expected(args)

        toolchain = self.toolchain(machine, opt_level=opt_level)
        module = toolchain.frontend(kernel.source, kernel.name)
        base_artifacts = toolchain.build(module.clone())
        base = toolchain.run(base_artifacts, kernel.entry, *_run_args(args))

        custom_toolchain = toolchain.customize(
            module, area_budget_kgates=request.area_budget_kgates,
            max_operations=request.max_operations, name=request.name,
            profile_entry=kernel.entry, profile_args=_run_args(args))
        result = custom_toolchain.last_customization
        custom_artifacts = custom_toolchain.build(module)
        custom = custom_toolchain.run(custom_artifacts, kernel.entry,
                                      *_run_args(args))
        return CustomizeResponse(
            kernel=kernel.name, base_machine=machine.name,
            custom_machine=custom_toolchain.machine.name,
            selected_ops=list(result.report.selected_names),
            area_added_kgates=result.report.area_added_kgates,
            base_cycles=base.cycles, custom_cycles=custom.cycles,
            speedup=(base.cycles / custom.cycles if custom.cycles else 0.0),
            correct=(base.value == expected and custom.value == expected),
            summary=result.report.summary(),
            provenance=self._provenance(
                "cycle", started,
                base_artifacts.report.stages + custom_artifacts.report.stages))

    def _execute_explore(self, request: ExploreRequest) -> ExploreResponse:
        from ..dse.space import DesignSpace

        started = time.perf_counter()
        engine = (request.engine if request.engine is not None
                  else self.evaluation_engine)
        fidelity = (request.fidelity if request.fidelity is not None
                    else self.fidelity)
        if request.rescore:
            # Screening always happens at trace fidelity when re-scoring.
            fidelity = "trace"
        if fidelity == "trace" and not request.rescore:
            # The trace path always profiles with the threaded-code
            # engine; report what actually runs, not the ignored selector.
            # (In rescore mode the frontier re-scoring *does* use the
            # requested evaluation engine, so that label stands.)
            engine = "compiled"
        if request.application is not None:
            evaluator = self.app_evaluator(
                request.application, size=request.size,
                opt_level=request.opt_level, seed=request.seed,
                engine=engine, fidelity=fidelity)
        else:
            evaluator = self.evaluator(
                request.mix, size=request.size, opt_level=request.opt_level,
                seed=request.seed, engine=engine, fidelity=fidelity)
        explorer = self.explorer(evaluator, objective=request.objective,
                                 workers=request.workers,
                                 search_seed=request.search_seed)
        if request.space is None:
            space = DesignSpace.small()
        else:
            space = DesignSpace(**{axis: tuple(choices)
                                   for axis, choices in request.space.items()})

        if request.rescore:
            result = explorer.screen_then_rescore(
                space, strategy=request.strategy,
                **({"max_rounds": request.max_rounds}
                   if request.strategy == "greedy" else
                   {"iterations": request.iterations}
                   if request.strategy == "annealing" else {}))
        elif request.strategy == "exhaustive":
            result = explorer.exhaustive(space)
        elif request.strategy == "greedy":
            result = explorer.greedy(space, max_rounds=request.max_rounds)
        else:
            result = explorer.annealing(space, iterations=request.iterations)

        exported = result.to_dict()
        extra_cache = {"batch": explorer.batch.stats.as_dict()}
        if result.rescore is not None:
            # The cycle-fidelity re-scoring pass ran through its own
            # batch evaluator; surface its work alongside the screener's.
            extra_cache["rescore"] = result.rescore
        return ExploreResponse(
            mix=evaluator.mix.name, strategy=request.strategy,
            objective=request.objective, engine=engine,
            fidelity=result.fidelity,
            points_evaluated=result.points_evaluated,
            best=exported["best"], knee=exported["knee"],
            pareto=exported["pareto"], rows=exported["rows"],
            provenance=self._provenance(
                engine, started, fidelity=result.fidelity,
                extra_cache=extra_cache))

    def _execute_matrix(self, request: MatrixRequest) -> MatrixResponse:
        from ..toolchain.matrix import run_matrix

        started = time.perf_counter()
        engine = request.engine if request.engine is not None else self.engine
        fidelity = (request.fidelity if request.fidelity is not None
                    else self.fidelity)
        machines = [resolve_machine(machine) for machine in request.machines]
        report = run_matrix(
            machines, kernel_names=request.kernels,
            size=self._size(request.size),
            opt_level=self._opt(request.opt_level),
            seed=self._seed(request.seed), engine=engine,
            fidelity=fidelity, pipeline=self.pipeline)
        # At trace fidelity the report records the engine that actually
        # executed (the threaded-code profiler), not the requested one.
        engine = report.engine
        exported = report.to_dict()
        return MatrixResponse(
            machines=exported["machines"], kernels=exported["kernels"],
            engine=engine, fidelity=fidelity, pass_rate=report.pass_rate(),
            all_correct=report.all_correct, rows=exported["rows"],
            failures=exported["failures"],
            provenance=self._provenance(engine, started, fidelity=fidelity))

    def _execute_population(self, request: PopulationRequest
                            ) -> PopulationResponse:
        from ..gen.population import WorkloadPopulation

        started = time.perf_counter()
        population = WorkloadPopulation.generate(
            request.count, seed=request.seed, families=request.families)
        opt_level = self._opt(request.opt_level)
        valid: Optional[int] = None
        with population:
            if request.validate_population:
                validated = population.validate(
                    size=request.size, opt_level=opt_level,
                    pipeline=self.pipeline)
                valid = sum(validated.values())
            report = population.report(
                budget=request.budget_kgates, engine=request.engine,
                size=request.size, opt_level=opt_level,
                kernels_per_family=request.kernels_per_family,
                workers=(self.workers if request.workers is None
                         else request.workers),
                pipeline=self.pipeline)
        return PopulationResponse(
            count=len(population), seed=request.seed,
            families=population.families(), valid=valid, report=report,
            provenance=self._provenance(request.engine, started))

    def _execute_app(self, request: AppRequest) -> AppResponse:
        from dataclasses import replace

        from ..app.runner import AppRunner
        from ..app.spec import ApplicationSpec
        from ..gen.application import sample_application

        started = time.perf_counter()
        machine = resolve_machine(request.machine)
        if request.application is not None:
            spec = ApplicationSpec.from_dict(request.application)
        else:
            kwargs = {}
            if request.windows is not None:
                kwargs["windows"] = request.windows
            spec = sample_application(request.topology, request.app_seed,
                                      period_us=request.period_us,
                                      deadline_us=request.deadline_us,
                                      **kwargs)
        overrides = {name: value for name, value in (
            ("windows", request.windows),
            ("period_us", request.period_us),
            ("deadline_us", request.deadline_us),
        ) if value is not None}
        if overrides:
            spec = replace(spec, stream=replace(spec.stream, **overrides))

        runner = AppRunner(spec, machine, engine=request.engine,
                           opt_level=self._opt(request.opt_level),
                           fidelity=request.fidelity, pipeline=self.pipeline)
        report = runner.run()
        return AppResponse(
            application=report.application,
            fingerprint=report.fingerprint,
            machine=report.machine, engine=report.engine,
            fidelity=report.fidelity, windows=report.windows,
            correct=report.correct,
            deadline_miss_rate=report.deadline_miss_rate,
            p50_latency_us=report.p50_latency_us,
            p95_latency_us=report.p95_latency_us,
            p99_latency_us=report.p99_latency_us,
            jitter_us=report.jitter_us,
            energy_per_window_uj=report.energy_per_window_uj,
            period_us=report.period_us, deadline_us=report.deadline_us,
            window_latencies_us=list(report.window_latencies_us),
            nodes=[stats.to_dict() for stats in report.node_stats],
            provenance=self._provenance(request.engine, started,
                                        fidelity=request.fidelity))


# ----------------------------------------------------------------------
# The process-wide default session.
# ----------------------------------------------------------------------

_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide session (created on first use).

    This is what un-injected entry points (``Toolchain()`` without a
    pipeline, ``run_matrix`` and the workload helpers) share, so family
    members built through any of them reuse one artifact store — the
    behaviour the deprecated ``global_compile_pipeline()`` used to
    provide.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = Session(name="default")
        return _DEFAULT_SESSION


def default_pipeline() -> CompilePipeline:
    """The default session's compile pipeline (internal fallback)."""
    return default_session().pipeline


def reset_default_session() -> None:
    """Drop the process-wide session (tests and benchmarks)."""
    global _DEFAULT_SESSION
    with _DEFAULT_LOCK:
        session, _DEFAULT_SESSION = _DEFAULT_SESSION, None
    if session is not None:
        session.close()
