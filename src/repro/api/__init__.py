"""The service façade: sessions, serializable requests, jobs, CLI.

This package is the one front door to the stack — Fisher99's
customization-as-a-service shape.  A :class:`Session` owns the artifact
store, compile pipeline, engine selection and defaults that used to be
process-global; serializable request dataclasses go in,
provenance-carrying responses come out; :meth:`Session.submit` wraps
execution in future-backed jobs; and :mod:`repro.api.cli` exposes the
same requests as ``python -m repro`` subcommands.

Typical use::

    from repro.api import MatrixRequest, Session

    with Session() as session:
        job = session.submit(MatrixRequest(machines=["vliw4", "risc32"]))
        response = job.result()
        print(response.pass_rate, response.to_json()[:80])
"""

from .jobs import Job
from .requests import (
    PRESET_ALIASES, REQUEST_TYPES, RESPONSE_TYPES, SCHEMA_VERSION,
    AppRequest, AppResponse, CompileRequest, CompileResponse,
    CustomizeRequest, CustomizeResponse, ExploreRequest, ExploreResponse,
    MatrixRequest, MatrixResponse, PopulationRequest, PopulationResponse,
    Provenance, RunRequest, RunResponse, SchemaError, request_from_dict,
    request_from_json, resolve_machine, response_from_dict,
    response_from_json,
)
from .session import (
    Session, default_pipeline, default_session, reset_default_session,
)

__all__ = [
    "Job",
    "PRESET_ALIASES", "REQUEST_TYPES", "RESPONSE_TYPES", "SCHEMA_VERSION",
    "AppRequest", "AppResponse",
    "CompileRequest", "CompileResponse", "CustomizeRequest",
    "CustomizeResponse", "ExploreRequest", "ExploreResponse",
    "MatrixRequest", "MatrixResponse", "PopulationRequest",
    "PopulationResponse", "Provenance", "RunRequest", "RunResponse",
    "SchemaError", "request_from_dict", "request_from_json",
    "resolve_machine", "response_from_dict", "response_from_json",
    "Session", "default_pipeline", "default_session",
    "reset_default_session",
]
