"""Helpers for compiling and running the kernel suite.

Kernel execution helpers (:func:`run_kernel`, :func:`validate_suite`)
accept an ``engine`` argument — ``"interpreter"`` for the reference
:class:`~repro.sim.FunctionalSimulator` or ``"compiled"`` for the
threaded-code :class:`~repro.exec.CompiledSimulator` — and check results
against each kernel's pure-Python oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..ir import Module
from .kernels import DOMAINS, KERNELS, Kernel, get_kernel


def compile_kernel(name: str, pipeline=None) -> Module:
    """Compile one kernel's C source to an IR module named after it.

    Served from the staged compile pipeline's content-addressed frontend
    stage (the default session's pipeline unless one is passed), so repeated
    compiles of the same kernel parse its C source exactly once.  The
    returned module is a private clone the caller may freely optimize or
    rewrite.
    """
    from ..api.session import default_pipeline

    kernel = get_kernel(name)
    pipeline = pipeline if pipeline is not None else default_pipeline()
    module, _record = pipeline.frontend(kernel.source, kernel.name)
    return module


def compile_suite(names: Optional[Iterable[str]] = None) -> Dict[str, Module]:
    """Compile several kernels (all of them by default)."""
    selected = list(names) if names is not None else sorted(KERNELS)
    return {name: compile_kernel(name) for name in selected}


@dataclass
class KernelRun:
    """Result of one functional kernel execution."""

    kernel: str
    engine: str
    value: object
    expected: object
    instructions: int

    @property
    def correct(self) -> bool:
        return self.value == self.expected


def run_kernel(name: str, size: Optional[int] = None, seed: int = 1234,
               opt_level: int = 2, engine: str = "interpreter") -> KernelRun:
    """Compile, optimize and functionally execute one kernel.

    The result is checked against the kernel's pure-Python oracle;
    ``engine`` selects the interpreter or the compiled engine.
    """
    from ..exec.engine import make_functional_simulator
    from ..opt import optimize

    kernel = get_kernel(name)
    module = compile_kernel(name)
    optimize(module, level=opt_level)
    args = kernel.arguments(size, seed=seed)
    expected = kernel.expected(args)
    simulator = make_functional_simulator(module, engine=engine)
    run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
    value = simulator.run(kernel.entry, *run_args)
    return KernelRun(kernel=name, engine=engine, value=value,
                     expected=expected,
                     instructions=simulator.profile.instructions_executed)


def validate_suite(names: Optional[Iterable[str]] = None,
                   engine: str = "interpreter", size: Optional[int] = None,
                   seed: int = 1234) -> Dict[str, bool]:
    """Run every selected kernel on ``engine``; map name -> oracle match."""
    selected = list(names) if names is not None else sorted(KERNELS)
    return {name: run_kernel(name, size=size, seed=seed, engine=engine).correct
            for name in selected}


@dataclass
class WorkloadMix:
    """A weighted set of kernels standing in for a product's software.

    Used by the application-area experiments (§6.1): the processor is
    customized for the mix, then evaluated both on the mix and on held-out
    kernels from the same domain.
    """

    name: str
    weights: Dict[str, float]

    def kernels(self) -> List[Tuple[Kernel, float]]:
        return [(get_kernel(k), w) for k, w in self.weights.items()]

    def names(self) -> List[str]:
        return list(self.weights)


#: Product-style mixes referenced by the examples and experiments.
MIXES: Dict[str, WorkloadMix] = {
    "cellphone": WorkloadMix("cellphone", {
        "viterbi_acs": 3.0, "fir_filter": 2.0, "saturated_add": 1.5,
        "dot_product": 1.0,
    }),
    "video": WorkloadMix("video", {
        "sad16": 3.0, "dct_stage": 2.0, "alpha_blend": 1.0,
    }),
    "imaging": WorkloadMix("imaging", {
        "rgb_to_gray": 2.0, "histogram": 1.0, "alpha_blend": 1.0,
    }),
    "network": WorkloadMix("network", {
        "crc32": 2.0, "ip_checksum": 2.0, "popcount_buffer": 1.0,
    }),
    "medical": WorkloadMix("medical", {
        "iir_biquad": 2.0, "matmul4": 1.0,
    }),
}


def get_mix(name: str) -> WorkloadMix:
    try:
        return MIXES[name]
    except KeyError:
        raise KeyError(
            f"unknown mix '{name}'; available: {', '.join(sorted(MIXES))}"
        ) from None
