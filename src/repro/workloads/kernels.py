"""The embedded kernel suite.

Section 1.3 of the paper lists the product categories where processor
performance is the limiting factor: cellphones, video, disk controllers,
medical devices, network devices, digital cameras and scanners, printers.
Each kernel below is a self-contained C function typical of the inner loop
of one of those products, written in the front end's C subset, together
with a pure-Python reference implementation (the oracle used by the N×M
correctness matrix) and a deterministic input generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


def copy_run_args(args) -> tuple:
    """Fresh per-run copies of an argument tuple.

    Simulators write back into list arguments, so every independent run
    (and every oracle evaluation) needs its own copies; this is the one
    shared spelling of that idiom.
    """
    return tuple(list(a) if isinstance(a, list) else a for a in args)


@dataclass
class Kernel:
    """One benchmark kernel: C source, entry point, inputs, oracle."""

    name: str
    domain: str
    description: str
    source: str
    entry: str
    #: builds the argument tuple for a given problem size and seed.
    make_args: Callable[[int, int], tuple]
    #: pure-Python oracle mirroring the kernel's return value.
    reference: Callable[..., int]
    #: default problem size used by tests and benchmarks.
    default_size: int = 64

    def arguments(self, size: int | None = None, seed: int = 1234) -> tuple:
        return self.make_args(size or self.default_size, seed)

    def expected(self, args: tuple) -> int:
        # The oracle must not see the simulator-side mutation of list
        # arguments, so it gets copies.
        return self.reference(*copy_run_args(args))


def _rng(seed: int) -> random.Random:
    return random.Random(seed)


def _ints(rng: random.Random, count: int, low: int = -1000, high: int = 1000) -> List[int]:
    return [rng.randint(low, high) for _ in range(count)]


def _wrap32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


# ----------------------------------------------------------------------
# DSP / cellphone kernels.
# ----------------------------------------------------------------------

DOT_PRODUCT = Kernel(
    name="dot_product",
    domain="dsp",
    description="Fixed-point dot product (speech codec correlation loop)",
    entry="dot_product",
    source="""
int dot_product(int *a, int *b, int n) {
    int sum = 0;
    for (int i = 0; i < n; i++) {
        sum = sum + a[i] * b[i];
    }
    return sum;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, -500, 500), _ints(_rng(seed + 1), n, -500, 500), n
    ),
    reference=lambda a, b, n: _wrap32(sum(x * y for x, y in zip(a[:n], b[:n]))),
)


FIR_FILTER = Kernel(
    name="fir_filter",
    domain="dsp",
    description="16-tap FIR filter with rounding shift (baseband channel filter)",
    entry="fir_filter",
    source="""
#define TAPS 16
int fir_filter(int *x, int *h, int *y, int n) {
    int acc = 0;
    for (int i = 0; i + TAPS <= n; i++) {
        int s = 0;
        for (int j = 0; j < TAPS; j++) {
            s = s + x[i + j] * h[j];
        }
        y[i] = (s + 16384) >> 15;
        acc = acc + y[i];
    }
    return acc;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, -3000, 3000),
        _ints(_rng(seed + 1), 16, -2000, 2000),
        [0] * n,
        n,
    ),
    reference=lambda x, h, y, n: _wrap32(sum(
        (sum(x[i + j] * h[j] for j in range(16)) + 16384) >> 15
        for i in range(0, n - 16 + 1)
    )),
    default_size=48,
)


SATURATED_ADD = Kernel(
    name="saturated_add",
    domain="dsp",
    description="Saturating vector add (speech/audio mixing, Q15 arithmetic)",
    entry="saturated_add",
    source="""
int saturated_add(int *a, int *b, int *out, int n) {
    int checksum = 0;
    for (int i = 0; i < n; i++) {
        int s = a[i] + b[i];
        s = s > 32767 ? 32767 : s;
        s = s < -32768 ? -32768 : s;
        out[i] = s;
        checksum = checksum + s;
    }
    return checksum;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, -30000, 30000),
        _ints(_rng(seed + 1), n, -30000, 30000),
        [0] * n,
        n,
    ),
    reference=lambda a, b, out, n: _wrap32(sum(
        max(-32768, min(32767, a[i] + b[i])) for i in range(n)
    )),
)


VITERBI_ACS = Kernel(
    name="viterbi_acs",
    domain="cellphone",
    description="Viterbi add-compare-select butterflies (GSM channel decoder)",
    entry="viterbi_acs",
    source="""
int viterbi_acs(int *metrics, int *branch, int *out, int n) {
    int best = -1000000;
    for (int i = 0; i < n; i++) {
        int m0 = metrics[i] + branch[i];
        int m1 = metrics[n + i] - branch[i];
        int sel = m0 > m1 ? m0 : m1;
        out[i] = sel;
        best = sel > best ? sel : best;
    }
    return best;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), 2 * n, -5000, 5000),
        _ints(_rng(seed + 1), n, -500, 500),
        [0] * n,
        n,
    ),
    reference=lambda metrics, branch, out, n: max(
        max(metrics[i] + branch[i], metrics[n + i] - branch[i]) for i in range(n)
    ),
)


IIR_BIQUAD = Kernel(
    name="iir_biquad",
    domain="medical",
    description="Direct-form-I biquad IIR section (patient-monitor filtering)",
    entry="iir_biquad",
    source="""
int iir_biquad(int *x, int *coeff, int *y, int n) {
    int x1 = 0;
    int x2 = 0;
    int y1 = 0;
    int y2 = 0;
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int t = coeff[0] * x[i] + coeff[1] * x1 + coeff[2] * x2
              + coeff[3] * y1 + coeff[4] * y2;
        t = t >> 12;
        x2 = x1;
        x1 = x[i];
        y2 = y1;
        y1 = t;
        y[i] = t;
        acc = acc + t;
    }
    return acc;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, -2000, 2000),
        _ints(_rng(seed + 1), 5, -1500, 1500),
        [0] * n,
        n,
    ),
    reference=None,  # set below (needs a loop-carried reference)
)


def _iir_reference(x, coeff, y, n):
    x1 = x2 = y1 = y2 = 0
    acc = 0
    for i in range(n):
        t = (coeff[0] * x[i] + coeff[1] * x1 + coeff[2] * x2
             + coeff[3] * y1 + coeff[4] * y2)
        t >>= 12
        x2, x1 = x1, x[i]
        y2, y1 = y1, t
        acc += t
    return _wrap32(acc)


IIR_BIQUAD.reference = _iir_reference


# ----------------------------------------------------------------------
# Video / imaging kernels.
# ----------------------------------------------------------------------

SAD_16 = Kernel(
    name="sad16",
    domain="video",
    description="Sum of absolute differences over a block (motion estimation)",
    entry="sad16",
    source="""
int sad16(int *cur, int *ref, int n) {
    int sad = 0;
    for (int i = 0; i < n; i++) {
        int d = cur[i] - ref[i];
        d = d < 0 ? -d : d;
        sad = sad + d;
    }
    return sad;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, 0, 255), _ints(_rng(seed + 1), n, 0, 255), n
    ),
    reference=lambda cur, ref, n: sum(abs(cur[i] - ref[i]) for i in range(n)),
    default_size=256,
)


RGB_TO_GRAY = Kernel(
    name="rgb_to_gray",
    domain="printer",
    description="RGB to luminance conversion (scanner/printer pipeline)",
    entry="rgb_to_gray",
    source="""
int rgb_to_gray(int *r, int *g, int *b, int *gray, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int v = 77 * r[i] + 150 * g[i] + 29 * b[i];
        v = v >> 8;
        gray[i] = v;
        acc = acc + v;
    }
    return acc;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, 0, 255),
        _ints(_rng(seed + 1), n, 0, 255),
        _ints(_rng(seed + 2), n, 0, 255),
        [0] * n,
        n,
    ),
    reference=lambda r, g, b, gray, n: sum(
        (77 * r[i] + 150 * g[i] + 29 * b[i]) >> 8 for i in range(n)
    ),
)


ALPHA_BLEND = Kernel(
    name="alpha_blend",
    domain="camera",
    description="Per-pixel alpha blending with clamping (camera overlay)",
    entry="alpha_blend",
    source="""
int alpha_blend(int *fg, int *bg, int *alpha, int *out, int n) {
    int acc = 0;
    for (int i = 0; i < n; i++) {
        int a = alpha[i];
        int v = (a * fg[i] + (255 - a) * bg[i] + 128) >> 8;
        v = v > 255 ? 255 : v;
        v = v < 0 ? 0 : v;
        out[i] = v;
        acc = acc + v;
    }
    return acc;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), n, 0, 255),
        _ints(_rng(seed + 1), n, 0, 255),
        _ints(_rng(seed + 2), n, 0, 255),
        [0] * n,
        n,
    ),
    reference=lambda fg, bg, alpha, out, n: sum(
        max(0, min(255, (alpha[i] * fg[i] + (255 - alpha[i]) * bg[i] + 128) >> 8))
        for i in range(n)
    ),
)


DCT_2D_STAGE = Kernel(
    name="dct_stage",
    domain="video",
    description="Integer butterfly stage of an 8-point DCT (video encode)",
    entry="dct_stage",
    source="""
int dct_stage(int *blk, int *out, int n) {
    int acc = 0;
    for (int base = 0; base + 8 <= n; base = base + 8) {
        int s07 = blk[base + 0] + blk[base + 7];
        int d07 = blk[base + 0] - blk[base + 7];
        int s16 = blk[base + 1] + blk[base + 6];
        int d16 = blk[base + 1] - blk[base + 6];
        int s25 = blk[base + 2] + blk[base + 5];
        int d25 = blk[base + 2] - blk[base + 5];
        int s34 = blk[base + 3] + blk[base + 4];
        int d34 = blk[base + 3] - blk[base + 4];
        out[base + 0] = s07 + s34;
        out[base + 1] = s16 + s25;
        out[base + 2] = s16 - s25;
        out[base + 3] = s07 - s34;
        out[base + 4] = d07 + d34;
        out[base + 5] = d16 + d25;
        out[base + 6] = d16 - d25;
        out[base + 7] = d07 - d34;
        acc = acc + out[base + 0] + out[base + 7];
    }
    return acc;
}
""",
    make_args=lambda n, seed: (_ints(_rng(seed), n, -128, 127), [0] * n, n),
    reference=None,  # set below
    default_size=64,
)


def _dct_stage_reference(blk, out, n):
    acc = 0
    for base in range(0, n - 7, 8):
        s07 = blk[base + 0] + blk[base + 7]
        d07 = blk[base + 0] - blk[base + 7]
        s16 = blk[base + 1] + blk[base + 6]
        d16 = blk[base + 1] - blk[base + 6]
        s25 = blk[base + 2] + blk[base + 5]
        d25 = blk[base + 2] - blk[base + 5]
        s34 = blk[base + 3] + blk[base + 4]
        d34 = blk[base + 3] - blk[base + 4]
        acc += (s07 + s34) + (d07 - d34)
    return _wrap32(acc)


DCT_2D_STAGE.reference = _dct_stage_reference


# ----------------------------------------------------------------------
# Network / storage kernels.
# ----------------------------------------------------------------------

CRC32 = Kernel(
    name="crc32",
    domain="network",
    description="Bitwise CRC-32 over a buffer (Ethernet/disk controller)",
    entry="crc32",
    source="""
int crc32(int *data, int n) {
    unsigned int crc = 4294967295;
    for (int i = 0; i < n; i++) {
        unsigned int byte = data[i] & 255;
        crc = crc ^ byte;
        for (int k = 0; k < 8; k++) {
            unsigned int mask = 0 - (crc & 1);
            crc = (crc >> 1) ^ (3988292384 & mask);
        }
    }
    return crc & 2147483647;
}
""",
    make_args=lambda n, seed: (_ints(_rng(seed), n, 0, 255), n),
    reference=None,  # set below
    default_size=32,
)


def _crc32_reference(data, n):
    crc = 0xFFFFFFFF
    for i in range(n):
        crc ^= data[i] & 0xFF
        for _ in range(8):
            mask = (-(crc & 1)) & 0xFFFFFFFF
            crc = ((crc >> 1) ^ (0xEDB88320 & mask)) & 0xFFFFFFFF
    return crc & 0x7FFFFFFF


CRC32.reference = _crc32_reference


CHECKSUM_IP = Kernel(
    name="ip_checksum",
    domain="network",
    description="16-bit one's-complement checksum (IP/TCP header processing)",
    entry="ip_checksum",
    source="""
int ip_checksum(int *words, int n) {
    unsigned int sum = 0;
    for (int i = 0; i < n; i++) {
        sum = sum + (words[i] & 65535);
        sum = (sum & 65535) + (sum >> 16);
    }
    return (~sum) & 65535;
}
""",
    make_args=lambda n, seed: (_ints(_rng(seed), n, 0, 65535), n),
    reference=None,  # set below
    default_size=128,
)


def _ip_checksum_reference(words, n):
    total = 0
    for i in range(n):
        total += words[i] & 0xFFFF
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


CHECKSUM_IP.reference = _ip_checksum_reference


POPCOUNT_BUFFER = Kernel(
    name="popcount_buffer",
    domain="disk",
    description="Population count over a buffer (ECC / RAID parity accounting)",
    entry="popcount_buffer",
    source="""
int popcount_buffer(int *data, int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        unsigned int v = data[i];
        v = v - ((v >> 1) & 1431655765);
        v = (v & 858993459) + ((v >> 2) & 858993459);
        v = (v + (v >> 4)) & 252645135;
        total = total + ((v * 16843009) >> 24);
    }
    return total;
}
""",
    make_args=lambda n, seed: (_ints(_rng(seed), n, 0, 2**31 - 1), n),
    reference=lambda data, n: sum(bin(data[i] & 0xFFFFFFFF).count("1") for i in range(n)),
    default_size=128,
)


# ----------------------------------------------------------------------
# General embedded control.
# ----------------------------------------------------------------------

HISTOGRAM = Kernel(
    name="histogram",
    domain="camera",
    description="256-bin histogram (auto-exposure statistics)",
    entry="histogram",
    source="""
int histogram(int *pixels, int *bins, int n) {
    for (int i = 0; i < 256; i++) {
        bins[i] = 0;
    }
    for (int i = 0; i < n; i++) {
        int p = pixels[i] & 255;
        bins[p] = bins[p] + 1;
    }
    int peak = 0;
    for (int i = 0; i < 256; i++) {
        peak = bins[i] > peak ? bins[i] : peak;
    }
    return peak;
}
""",
    make_args=lambda n, seed: (_ints(_rng(seed), n, 0, 255), [0] * 256, n),
    reference=None,  # set below
    default_size=512,
)


def _histogram_reference(pixels, bins, n):
    counts = [0] * 256
    for i in range(n):
        counts[pixels[i] & 255] += 1
    return max(counts)


HISTOGRAM.reference = _histogram_reference


MATMUL_SMALL = Kernel(
    name="matmul4",
    domain="medical",
    description="Dense 4x4-blocked matrix multiply (imaging reconstruction)",
    entry="matmul4",
    source="""
#define DIM 4
int matmul4(int *a, int *b, int *c, int reps) {
    int acc = 0;
    for (int r = 0; r < reps; r++) {
        for (int i = 0; i < DIM; i++) {
            for (int j = 0; j < DIM; j++) {
                int s = 0;
                for (int k = 0; k < DIM; k++) {
                    s = s + a[i * DIM + k] * b[k * DIM + j];
                }
                c[i * DIM + j] = s;
            }
        }
        acc = acc + c[r & 15];
    }
    return acc;
}
""",
    make_args=lambda n, seed: (
        _ints(_rng(seed), 16, -50, 50), _ints(_rng(seed + 1), 16, -50, 50),
        [0] * 16, max(1, n // 16),
    ),
    reference=None,  # set below
    default_size=64,
)


def _matmul4_reference(a, b, c, reps):
    acc = 0
    result = [0] * 16
    for r in range(reps):
        for i in range(4):
            for j in range(4):
                result[i * 4 + j] = sum(a[i * 4 + k] * b[k * 4 + j] for k in range(4))
        acc += result[r & 15]
    return _wrap32(acc)


MATMUL_SMALL.reference = _matmul4_reference


#: All kernels by name.
KERNELS: Dict[str, Kernel] = {
    kernel.name: kernel
    for kernel in (
        DOT_PRODUCT, FIR_FILTER, SATURATED_ADD, VITERBI_ACS, IIR_BIQUAD,
        SAD_16, RGB_TO_GRAY, ALPHA_BLEND, DCT_2D_STAGE,
        CRC32, CHECKSUM_IP, POPCOUNT_BUFFER,
        HISTOGRAM, MATMUL_SMALL,
    )
}

#: Kernel names grouped by product domain (the §1.3 list, plus one
#: ``gen:<family>`` domain per registered generated family).
DOMAINS: Dict[str, List[str]] = {}
for _kernel in KERNELS.values():
    DOMAINS.setdefault(_kernel.domain, []).append(_kernel.name)

#: the hand-written seed suite (never unregisterable by population churn).
BUILTIN_KERNELS = frozenset(KERNELS)


def get_kernel(name: str) -> Kernel:
    """Look up a kernel by name (built-in or registered at runtime)."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel '{name}'; available: {', '.join(sorted(KERNELS))}"
        ) from None


def list_kernels(domain: Optional[str] = None) -> List[str]:
    """Sorted names of every registered kernel (optionally one domain)."""
    if domain is None:
        return sorted(KERNELS)
    return sorted(DOMAINS.get(domain, []))


def register_kernel(kernel: Kernel, replace: bool = False) -> Kernel:
    """Add ``kernel`` to the runtime registry (generated kernels land here).

    Registered kernels are full citizens: :func:`get_kernel`,
    :func:`list_kernels`, the suite helpers and the DSE evaluators all
    resolve them by name.  Re-registering an existing name requires
    ``replace=True``; the built-in suite can be replaced but a later
    :func:`unregister_kernel` restores nothing — don't.
    """
    existing = KERNELS.get(kernel.name)
    if existing is not None and not replace:
        raise ValueError(
            f"kernel '{kernel.name}' is already registered; "
            f"pass replace=True to overwrite"
        )
    if existing is not None:
        names = DOMAINS.get(existing.domain, [])
        if kernel.name in names:
            names.remove(kernel.name)
    KERNELS[kernel.name] = kernel
    names = DOMAINS.setdefault(kernel.domain, [])
    if kernel.name not in names:
        names.append(kernel.name)
    return kernel


def unregister_kernel(name: str) -> None:
    """Remove a runtime-registered kernel (built-ins are protected)."""
    if name in BUILTIN_KERNELS:
        raise ValueError(f"cannot unregister built-in kernel '{name}'")
    kernel = KERNELS.pop(name, None)
    if kernel is None:
        return
    names = DOMAINS.get(kernel.domain, [])
    if name in names:
        names.remove(name)
    if not names and kernel.domain in DOMAINS:
        del DOMAINS[kernel.domain]
