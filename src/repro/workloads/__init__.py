"""Embedded workload kernels and product-style workload mixes."""

from .kernels import (
    BUILTIN_KERNELS, DOMAINS, KERNELS, Kernel, get_kernel, list_kernels,
    register_kernel, unregister_kernel,
)
from .suite import (
    MIXES, KernelRun, WorkloadMix, compile_kernel, compile_suite, get_mix,
    run_kernel, validate_suite,
)

__all__ = [
    "BUILTIN_KERNELS", "DOMAINS", "KERNELS", "Kernel", "get_kernel",
    "list_kernels", "register_kernel", "unregister_kernel",
    "MIXES", "KernelRun", "WorkloadMix", "compile_kernel", "compile_suite",
    "get_mix", "run_kernel", "validate_suite",
]
