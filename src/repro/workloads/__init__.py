"""Embedded workload kernels and product-style workload mixes."""

from .kernels import DOMAINS, KERNELS, Kernel, get_kernel
from .suite import (
    MIXES, KernelRun, WorkloadMix, compile_kernel, compile_suite, get_mix,
    run_kernel, validate_suite,
)

__all__ = [
    "DOMAINS", "KERNELS", "Kernel", "get_kernel",
    "MIXES", "KernelRun", "WorkloadMix", "compile_kernel", "compile_suite",
    "get_mix", "run_kernel", "validate_suite",
]
