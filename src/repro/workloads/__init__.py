"""Embedded workload kernels and product-style workload mixes."""

from .kernels import DOMAINS, KERNELS, Kernel, get_kernel
from .suite import MIXES, WorkloadMix, compile_kernel, compile_suite, get_mix

__all__ = [
    "DOMAINS", "KERNELS", "Kernel", "get_kernel",
    "MIXES", "WorkloadMix", "compile_kernel", "compile_suite", "get_mix",
]
