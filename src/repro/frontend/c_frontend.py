"""A C front end for the repro toolchain, built on pycparser.

The supported language is the subset that the embedded kernels in
:mod:`repro.workloads` are written in — self-contained translation units
with no preprocessor includes:

* types: ``void``, ``char``, ``short``, ``int``, ``long``, ``unsigned``
  variants, ``float``; one-dimensional arrays; pointers to the above,
* functions with value parameters and pointer/array parameters,
* statements: compound, ``if``/``else``, ``while``, ``do``/``while``,
  ``for``, ``return``, ``break``, ``continue``, expression statements,
  declarations with initialisers,
* expressions: integer/float constants, identifiers, array subscripts,
  unary ``- ~ ! + * &`` (address-of for scalars only as array decay),
  binary arithmetic/shift/relational/logical/bitwise operators, assignment
  and compound assignment, pre/post increment and decrement, the ternary
  operator, function calls, and casts between supported scalar types.

A tiny preprocessor handles ``#define NAME literal`` object-like macros and
strips comments, so kernels can use symbolic sizes.

Mutable scalar locals are modelled as dedicated virtual registers (the IR
is not SSA, so assignment simply re-writes the register); arrays and
locals whose address is taken are lowered to stack allocations.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from pycparser import c_ast, c_parser

from ..ir import (
    ArrayType, Constant, F32, Function, I1, I8, I16, I32, IntType, IRBuilder,
    Module, Opcode, PointerType, Type, VirtualRegister, VOID, assert_valid,
)
from ..ir.types import FloatType


class CFrontendError(Exception):
    """Raised for unsupported constructs or malformed kernel source."""


# ----------------------------------------------------------------------
# Pre-processing.
# ----------------------------------------------------------------------

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+(\w+)\s+(.+?)\s*$", re.MULTILINE)
_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)


def preprocess(source: str) -> str:
    """Strip comments and expand simple object-like ``#define`` macros."""
    source = _COMMENT_RE.sub(" ", source)
    defines: Dict[str, str] = {}
    for name, value in _DEFINE_RE.findall(source):
        defines[name] = value.strip()
    source = re.sub(r"^\s*#.*$", "", source, flags=re.MULTILINE)
    if defines:
        # Longest names first so FOO_BAR is not clobbered by FOO.
        for name in sorted(defines, key=len, reverse=True):
            source = re.sub(rf"\b{re.escape(name)}\b", defines[name], source)
    return source


# ----------------------------------------------------------------------
# Type lowering.
# ----------------------------------------------------------------------

_INT_TYPES = {
    ("char",): IntType(8),
    ("signed", "char"): IntType(8),
    ("unsigned", "char"): IntType(8, signed=False),
    ("short",): IntType(16),
    ("short", "int"): IntType(16),
    ("unsigned", "short"): IntType(16, signed=False),
    ("unsigned", "short", "int"): IntType(16, signed=False),
    ("int",): I32,
    ("signed",): I32,
    ("signed", "int"): I32,
    ("unsigned",): IntType(32, signed=False),
    ("unsigned", "int"): IntType(32, signed=False),
    ("long",): I32,
    ("long", "int"): I32,
    ("unsigned", "long"): IntType(32, signed=False),
    ("unsigned", "long", "int"): IntType(32, signed=False),
}


def _lower_type(node) -> Type:
    """Convert a pycparser type node to an IR type."""
    if isinstance(node, c_ast.TypeDecl):
        return _lower_type(node.type)
    if isinstance(node, c_ast.IdentifierType):
        names = tuple(node.names)
        if names == ("void",):
            return VOID
        if names == ("float",) or names == ("double",):
            return F32
        if names in _INT_TYPES:
            return _INT_TYPES[names]
        raise CFrontendError(f"unsupported type: {' '.join(names)}")
    if isinstance(node, c_ast.PtrDecl):
        return PointerType(_lower_type(node.type))
    if isinstance(node, c_ast.ArrayDecl):
        element = _lower_type(node.type)
        count = 0
        if node.dim is not None:
            count = _fold_constant_int(node.dim)
        return ArrayType(element, count)
    raise CFrontendError(f"unsupported type node: {type(node).__name__}")


def _fold_constant_int(node) -> int:
    """Evaluate a constant integer expression at compile time."""
    if isinstance(node, c_ast.Constant):
        return _parse_int_literal(node.value)
    if isinstance(node, c_ast.UnaryOp) and node.op == "-":
        return -_fold_constant_int(node.expr)
    if isinstance(node, c_ast.BinaryOp):
        lhs = _fold_constant_int(node.left)
        rhs = _fold_constant_int(node.right)
        ops = {
            "+": lambda a, b: a + b, "-": lambda a, b: a - b,
            "*": lambda a, b: a * b, "/": lambda a, b: a // b,
            "%": lambda a, b: a % b, "<<": lambda a, b: a << b,
            ">>": lambda a, b: a >> b, "|": lambda a, b: a | b,
            "&": lambda a, b: a & b, "^": lambda a, b: a ^ b,
        }
        if node.op in ops:
            return ops[node.op](lhs, rhs)
    raise CFrontendError("array dimensions must be constant expressions")


def _parse_int_literal(text: str) -> int:
    text = text.rstrip("uUlL")
    return int(text, 0)


# ----------------------------------------------------------------------
# Per-variable storage.
# ----------------------------------------------------------------------

class _Variable:
    """A named C variable: either register-resident or memory-resident."""

    __slots__ = ("name", "ctype", "register", "address", "element_type")

    def __init__(self, name: str, ctype: Type,
                 register: Optional[VirtualRegister] = None,
                 address=None, element_type: Optional[Type] = None) -> None:
        self.name = name
        self.ctype = ctype
        self.register = register
        self.address = address
        self.element_type = element_type

    @property
    def in_memory(self) -> bool:
        return self.address is not None


class _LoopContext:
    """Break/continue targets for the innermost enclosing loop."""

    __slots__ = ("break_block", "continue_block")

    def __init__(self, break_block, continue_block) -> None:
        self.break_block = break_block
        self.continue_block = continue_block


# ----------------------------------------------------------------------
# The lowering visitor.
# ----------------------------------------------------------------------

class _FunctionLowering:
    """Lowers one C function definition to an IR function."""

    def __init__(self, builder: IRBuilder, module: Module,
                 global_vars: Dict[str, _Variable]) -> None:
        self.b = builder
        self.module = module
        self.globals = global_vars
        self.scopes: List[Dict[str, _Variable]] = []
        self.loops: List[_LoopContext] = []
        self.function: Optional[Function] = None

    # -------------------------- scope helpers -------------------------
    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def declare(self, var: _Variable) -> None:
        self.scopes[-1][var.name] = var

    def lookup(self, name: str) -> _Variable:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        raise CFrontendError(f"use of undeclared identifier '{name}'")

    # -------------------------- entry point ---------------------------
    def lower(self, node: c_ast.FuncDef) -> Function:
        decl = node.decl
        func_type = decl.type
        return_type = _lower_type(func_type.type)

        param_types: List[Type] = []
        param_names: List[str] = []
        params = []
        if func_type.args is not None:
            for param in func_type.args.params:
                if isinstance(param, c_ast.EllipsisParam):
                    raise CFrontendError("varargs are not supported")
                if isinstance(param, c_ast.Typename):
                    # (void) parameter list.
                    if _lower_type(param.type).is_void():
                        continue
                    raise CFrontendError("unnamed parameters are not supported")
                ptype = _lower_type(param.type)
                if isinstance(ptype, ArrayType):
                    # Array parameters decay to pointers.
                    ptype = PointerType(ptype.element)
                param_types.append(ptype)
                param_names.append(param.name)
                params.append((param.name, ptype))

        function = self.b.create_function(decl.name, return_type,
                                          param_types, param_names)
        self.function = function
        self.push_scope()
        for arg, (name, ptype) in zip(function.arguments, params):
            element = ptype.pointee if isinstance(ptype, PointerType) else None
            self.declare(_Variable(name, ptype, register=arg, element_type=element))

        self.lower_statement(node.body)

        # Ensure every block is terminated (implicit return at the end).
        for block in function.blocks:
            if not block.is_terminated():
                self.b.set_insert_point(block)
                if return_type.is_void():
                    self.b.ret()
                else:
                    self.b.ret(Constant(0, return_type if isinstance(return_type, IntType) else I32))
        self.pop_scope()
        return function

    # -------------------------- statements ----------------------------
    def lower_statement(self, node) -> None:
        if node is None:
            return
        if isinstance(node, c_ast.Compound):
            self.push_scope()
            for item in node.block_items or []:
                if self._current_terminated():
                    break
                self.lower_statement(item)
            self.pop_scope()
        elif isinstance(node, c_ast.Decl):
            self.lower_declaration(node)
        elif isinstance(node, c_ast.DeclList):
            for decl in node.decls:
                self.lower_declaration(decl)
        elif isinstance(node, c_ast.Return):
            self.lower_return(node)
        elif isinstance(node, c_ast.If):
            self.lower_if(node)
        elif isinstance(node, c_ast.While):
            self.lower_while(node)
        elif isinstance(node, c_ast.DoWhile):
            self.lower_do_while(node)
        elif isinstance(node, c_ast.For):
            self.lower_for(node)
        elif isinstance(node, c_ast.Break):
            if not self.loops:
                raise CFrontendError("break outside of a loop")
            self.b.jump(self.loops[-1].break_block)
        elif isinstance(node, c_ast.Continue):
            if not self.loops:
                raise CFrontendError("continue outside of a loop")
            self.b.jump(self.loops[-1].continue_block)
        elif isinstance(node, c_ast.EmptyStatement):
            pass
        else:
            # Expression statement (assignment, call, ++, ...).
            self.lower_expression(node)

    def _current_terminated(self) -> bool:
        return self.b.block is not None and self.b.block.is_terminated()

    def lower_declaration(self, node: c_ast.Decl) -> None:
        ctype = _lower_type(node.type)
        if isinstance(ctype, ArrayType):
            if ctype.count <= 0:
                raise CFrontendError(
                    f"local array '{node.name}' needs a constant size"
                )
            address = self.b.alloca(ctype.element, ctype.count, name=node.name)
            var = _Variable(node.name, ctype, address=address,
                            element_type=ctype.element)
            self.declare(var)
            if node.init is not None:
                if not isinstance(node.init, c_ast.InitList):
                    raise CFrontendError("array initialisers must be brace lists")
                for index, expr in enumerate(node.init.exprs):
                    value = self.lower_expression(expr)
                    addr = self.b.gep(address, index, ctype.element)
                    self.b.store(value, addr)
            return

        if ctype.is_void():
            raise CFrontendError(f"cannot declare void variable '{node.name}'")

        register = VirtualRegister(ctype if ctype.is_scalar() else I32, node.name)
        element = ctype.pointee if isinstance(ctype, PointerType) else None
        var = _Variable(node.name, ctype, register=register, element_type=element)
        self.declare(var)
        if node.init is not None:
            value = self.lower_expression(node.init)
            value = self._convert(value, ctype)
            self.b.mov_to(register, value)
        else:
            self.b.mov_to(register, Constant(0, ctype if isinstance(ctype, IntType) else I32))

    def lower_return(self, node: c_ast.Return) -> None:
        if node.expr is None:
            self.b.ret()
        else:
            value = self.lower_expression(node.expr)
            value = self._convert(value, self.function.return_type)
            self.b.ret(value)

    def lower_if(self, node: c_ast.If) -> None:
        cond = self._lower_condition(node.cond)
        then_block = self.b.new_block("if.then")
        merge_block = self.b.new_block("if.end")
        else_block = self.b.new_block("if.else") if node.iffalse else merge_block

        self.b.branch(cond, then_block, else_block)

        self.b.set_insert_point(then_block)
        self.lower_statement(node.iftrue)
        if not self._current_terminated():
            self.b.jump(merge_block)

        if node.iffalse is not None:
            self.b.set_insert_point(else_block)
            self.lower_statement(node.iffalse)
            if not self._current_terminated():
                self.b.jump(merge_block)

        self.b.set_insert_point(merge_block)

    def lower_while(self, node: c_ast.While) -> None:
        cond_block = self.b.new_block("while.cond")
        body_block = self.b.new_block("while.body")
        exit_block = self.b.new_block("while.end")

        self.b.jump(cond_block)
        self.b.set_insert_point(cond_block)
        cond = self._lower_condition(node.cond)
        self.b.branch(cond, body_block, exit_block)

        self.loops.append(_LoopContext(exit_block, cond_block))
        self.b.set_insert_point(body_block)
        self.lower_statement(node.stmt)
        if not self._current_terminated():
            self.b.jump(cond_block)
        self.loops.pop()

        self.b.set_insert_point(exit_block)

    def lower_do_while(self, node: c_ast.DoWhile) -> None:
        body_block = self.b.new_block("do.body")
        cond_block = self.b.new_block("do.cond")
        exit_block = self.b.new_block("do.end")

        self.b.jump(body_block)
        self.loops.append(_LoopContext(exit_block, cond_block))
        self.b.set_insert_point(body_block)
        self.lower_statement(node.stmt)
        if not self._current_terminated():
            self.b.jump(cond_block)
        self.loops.pop()

        self.b.set_insert_point(cond_block)
        cond = self._lower_condition(node.cond)
        self.b.branch(cond, body_block, exit_block)

        self.b.set_insert_point(exit_block)

    def lower_for(self, node: c_ast.For) -> None:
        self.push_scope()
        if node.init is not None:
            self.lower_statement(node.init)

        cond_block = self.b.new_block("for.cond")
        body_block = self.b.new_block("for.body")
        step_block = self.b.new_block("for.step")
        exit_block = self.b.new_block("for.end")

        self.b.jump(cond_block)
        self.b.set_insert_point(cond_block)
        if node.cond is not None:
            cond = self._lower_condition(node.cond)
            self.b.branch(cond, body_block, exit_block)
        else:
            self.b.jump(body_block)

        self.loops.append(_LoopContext(exit_block, step_block))
        self.b.set_insert_point(body_block)
        self.lower_statement(node.stmt)
        if not self._current_terminated():
            self.b.jump(step_block)
        self.loops.pop()

        self.b.set_insert_point(step_block)
        if node.next is not None:
            self.lower_expression(node.next)
        self.b.jump(cond_block)

        self.b.set_insert_point(exit_block)
        self.pop_scope()

    # -------------------------- expressions ---------------------------
    def lower_expression(self, node):
        """Lower an expression; returns the IR value (or None for void calls)."""
        if isinstance(node, c_ast.Constant):
            return self._lower_constant(node)
        if isinstance(node, c_ast.ID):
            return self._lower_identifier(node)
        if isinstance(node, c_ast.ArrayRef):
            address, element = self._lower_array_address(node)
            return self.b.load(address, element)
        if isinstance(node, c_ast.Assignment):
            return self._lower_assignment(node)
        if isinstance(node, c_ast.BinaryOp):
            return self._lower_binary(node)
        if isinstance(node, c_ast.UnaryOp):
            return self._lower_unary(node)
        if isinstance(node, c_ast.TernaryOp):
            return self._lower_ternary(node)
        if isinstance(node, c_ast.FuncCall):
            return self._lower_call(node)
        if isinstance(node, c_ast.Cast):
            return self._lower_cast(node)
        if isinstance(node, c_ast.ExprList):
            result = None
            for expr in node.exprs:
                result = self.lower_expression(expr)
            return result
        raise CFrontendError(f"unsupported expression: {type(node).__name__}")

    def _lower_constant(self, node: c_ast.Constant):
        if node.type in ("int", "long int", "unsigned int", "char"):
            if node.type == "char":
                text = node.value.strip("'")
                value = ord(text.encode().decode("unicode_escape"))
                return Constant(value, I8)
            return Constant(_parse_int_literal(node.value), I32)
        if node.type in ("float", "double"):
            return Constant(float(node.value.rstrip("fF")), F32)
        raise CFrontendError(f"unsupported constant type: {node.type}")

    def _lower_identifier(self, node: c_ast.ID):
        var = self.lookup(node.name)
        if var.in_memory:
            if isinstance(var.ctype, ArrayType):
                # Arrays decay to their base address.
                return var.address
            return self.b.load(var.address, var.ctype)
        return var.register

    def _lower_array_address(self, node: c_ast.ArrayRef) -> Tuple:
        """Return (address value, element type) for ``a[i]``."""
        base_node = node.name
        index = self.lower_expression(node.subscript)
        if isinstance(base_node, c_ast.ID):
            var = self.lookup(base_node.name)
            element = var.element_type or I32
            base = var.address if var.in_memory else var.register
            if var.in_memory and not isinstance(var.ctype, ArrayType):
                base = self.b.load(var.address, var.ctype)
            return self.b.gep(base, index, element), element
        # Nested expression producing a pointer (e.g. (p + 4)[i]).
        base = self.lower_expression(base_node)
        element = I32
        if isinstance(base.type, PointerType) and base.type.pointee is not None:
            element = base.type.pointee
        return self.b.gep(base, index, element), element

    def _lower_assignment(self, node: c_ast.Assignment):
        rhs = self.lower_expression(node.rvalue)

        if node.op != "=":
            op = node.op[:-1]
            current = self.lower_expression(node.lvalue)
            rhs = self._apply_binary(op, current, rhs)

        return self._store_to_lvalue(node.lvalue, rhs)

    def _store_to_lvalue(self, lvalue, value):
        if isinstance(lvalue, c_ast.ID):
            var = self.lookup(lvalue.name)
            if var.in_memory and not isinstance(var.ctype, ArrayType):
                converted = self._convert(value, var.ctype)
                self.b.store(converted, var.address)
                return converted
            if var.in_memory:
                raise CFrontendError(f"cannot assign to array '{var.name}'")
            converted = self._convert(value, var.register.type)
            self.b.mov_to(var.register, converted)
            return converted
        if isinstance(lvalue, c_ast.ArrayRef):
            address, element = self._lower_array_address(lvalue)
            converted = self._convert(value, element)
            self.b.store(converted, address)
            return converted
        if isinstance(lvalue, c_ast.UnaryOp) and lvalue.op == "*":
            address = self.lower_expression(lvalue.expr)
            element = I32
            if isinstance(address.type, PointerType) and address.type.pointee is not None:
                element = address.type.pointee
            converted = self._convert(value, element)
            self.b.store(converted, address)
            return converted
        raise CFrontendError(f"unsupported lvalue: {type(lvalue).__name__}")

    _BINARY_BUILDERS = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
        "&": "and_", "|": "or_", "^": "xor", "<<": "shl",
        "==": "cmp_eq", "!=": "cmp_ne", "<": "cmp_lt", "<=": "cmp_le",
        ">": "cmp_gt", ">=": "cmp_ge",
    }

    def _apply_binary(self, op: str, lhs, rhs):
        lhs_is_float = isinstance(getattr(lhs, "type", None), FloatType)
        rhs_is_float = isinstance(getattr(rhs, "type", None), FloatType)
        if lhs_is_float or rhs_is_float:
            if not lhs_is_float:
                lhs = self.b.itof(lhs)
            if not rhs_is_float:
                rhs = self.b.itof(rhs)
            float_map = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}
            if op in float_map:
                return getattr(self.b, float_map[op])(lhs, rhs)
            if op == "<":
                return self.b.fcmp_lt(lhs, rhs)
            if op == ">":
                return self.b.fcmp_lt(rhs, lhs)
            raise CFrontendError(f"unsupported float operator: {op}")

        if op == ">>":
            # Signedness decides logical vs arithmetic shift.
            lhs_type = getattr(lhs, "type", I32)
            if isinstance(lhs_type, IntType) and not lhs_type.signed:
                return self.b.shr(lhs, rhs)
            return self.b.sar(lhs, rhs)
        if op == "&&":
            lhs_bool = self._to_bool(lhs)
            rhs_bool = self._to_bool(rhs)
            return self.b.and_(lhs_bool, rhs_bool)
        if op == "||":
            lhs_bool = self._to_bool(lhs)
            rhs_bool = self._to_bool(rhs)
            return self.b.or_(lhs_bool, rhs_bool)
        builder_name = self._BINARY_BUILDERS.get(op)
        if builder_name is None:
            raise CFrontendError(f"unsupported binary operator: {op}")
        return getattr(self.b, builder_name)(lhs, rhs)

    def _lower_binary(self, node: c_ast.BinaryOp):
        # Note: && and || are evaluated non-short-circuit; kernel code in
        # the workload suite is written so this is semantically equivalent.
        lhs = self.lower_expression(node.left)
        rhs = self.lower_expression(node.right)
        # Pointer arithmetic: scale the integer side by the element size.
        lhs_ptr = isinstance(getattr(lhs, "type", None), PointerType)
        rhs_ptr = isinstance(getattr(rhs, "type", None), PointerType)
        if node.op in ("+", "-") and (lhs_ptr ^ rhs_ptr):
            pointer, integer = (lhs, rhs) if lhs_ptr else (rhs, lhs)
            element = pointer.type.pointee or I32
            scaled = self.b.mul(integer, Constant(element.size, I32))
            if node.op == "+" or lhs_ptr:
                result = (self.b.add(pointer, scaled) if node.op == "+"
                          else self.b.sub(pointer, scaled))
                result.type = pointer.type
                return result
        return self._apply_binary(node.op, lhs, rhs)

    def _lower_unary(self, node: c_ast.UnaryOp):
        if node.op == "-":
            return self.b.neg(self.lower_expression(node.expr))
        if node.op == "+":
            return self.lower_expression(node.expr)
        if node.op == "~":
            return self.b.not_(self.lower_expression(node.expr))
        if node.op == "!":
            value = self.lower_expression(node.expr)
            return self.b.cmp_eq(value, Constant(0, I32))
        if node.op == "*":
            address = self.lower_expression(node.expr)
            element = I32
            if isinstance(address.type, PointerType) and address.type.pointee is not None:
                element = address.type.pointee
            return self.b.load(address, element)
        if node.op == "&":
            if isinstance(node.expr, c_ast.ID):
                var = self.lookup(node.expr.name)
                if var.in_memory:
                    return var.address
                raise CFrontendError(
                    f"address-of register variable '{var.name}' is not supported"
                )
            if isinstance(node.expr, c_ast.ArrayRef):
                address, _ = self._lower_array_address(node.expr)
                return address
            raise CFrontendError("unsupported address-of expression")
        if node.op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(node)
        raise CFrontendError(f"unsupported unary operator: {node.op}")

    def _lower_incdec(self, node: c_ast.UnaryOp):
        delta = 1 if "++" in node.op else -1
        old = self.lower_expression(node.expr)
        step = Constant(delta, I32)
        if isinstance(getattr(old, "type", None), PointerType):
            element = old.type.pointee or I32
            step = Constant(delta * element.size, I32)
        new = self.b.add(old, step)
        if isinstance(getattr(old, "type", None), PointerType):
            new.type = old.type
        self._store_to_lvalue(node.expr, new)
        # Prefix forms return the new value, postfix the old one.
        return old if node.op.startswith("p") else new

    def _lower_ternary(self, node: c_ast.TernaryOp):
        # Lowered to a select (both sides evaluated); kernels use this for
        # min/max/clamp style expressions where that is the desired code.
        cond = self._lower_condition(node.cond)
        if_true = self.lower_expression(node.iftrue)
        if_false = self.lower_expression(node.iffalse)
        return self.b.select(cond, if_true, if_false)

    def _lower_call(self, node: c_ast.FuncCall):
        if not isinstance(node.name, c_ast.ID):
            raise CFrontendError("only direct calls are supported")
        callee = node.name.name
        args = []
        if node.args is not None:
            args = [self.lower_expression(a) for a in node.args.exprs]
        return_type = I32
        if self.module.has_function(callee):
            return_type = self.module.get_function(callee).return_type
        return self.b.call(callee, args, return_type)

    def _lower_cast(self, node: c_ast.Cast):
        target = _lower_type(node.to_type.type)
        value = self.lower_expression(node.expr)
        return self._convert(value, target)

    # -------------------------- helpers -------------------------------
    def _to_bool(self, value):
        if getattr(value, "type", None) == I1:
            return value
        return self.b.cmp_ne(value, Constant(0, I32))

    def _lower_condition(self, node):
        value = self.lower_expression(node)
        return self._to_bool(value)

    def _convert(self, value, target: Type):
        """Insert a conversion from ``value`` to ``target`` if needed."""
        source = getattr(value, "type", None)
        if source is None or target is None or source == target:
            return value
        if target.is_void():
            return value
        if isinstance(source, PointerType) and isinstance(target, (PointerType, IntType)):
            return value
        if isinstance(source, IntType) and isinstance(target, PointerType):
            return value
        if isinstance(source, IntType) and isinstance(target, IntType):
            if target.bits > source.bits:
                return (self.b.sext(value, target) if source.signed
                        else self.b.zext(value, target))
            if target.bits < source.bits:
                return self.b.trunc(value, target)
            return value
        if isinstance(source, IntType) and isinstance(target, FloatType):
            return self.b.itof(value, target)
        if isinstance(source, FloatType) and isinstance(target, IntType):
            return self.b.ftoi(value, target)
        if isinstance(source, FloatType) and isinstance(target, FloatType):
            return value
        raise CFrontendError(f"cannot convert {source} to {target}")


# ----------------------------------------------------------------------
# Public API.
# ----------------------------------------------------------------------

def compile_c(source: str, module_name: str = "module") -> Module:
    """Compile a self-contained C translation unit to an IR module."""
    parser = c_parser.CParser()
    try:
        ast = parser.parse(preprocess(source), filename=module_name)
    except Exception as exc:  # pycparser raises plain Exceptions for parse errors
        raise CFrontendError(f"parse error: {exc}") from exc

    module = Module(module_name)
    builder = IRBuilder(module)
    global_vars: Dict[str, _Variable] = {}

    # First pass: global declarations (so functions can reference them).
    for ext in ast.ext:
        if isinstance(ext, c_ast.Decl) and not isinstance(ext.type, c_ast.FuncDecl):
            ctype = _lower_type(ext.type)
            init = None
            if ext.init is not None:
                if isinstance(ext.init, c_ast.InitList):
                    init = [_fold_constant_int(e) for e in ext.init.exprs]
                else:
                    init = _fold_constant_int(ext.init)
            if isinstance(ctype, ArrayType):
                gvar = module.add_global(ext.name, ctype, init)
                global_vars[ext.name] = _Variable(
                    ext.name, ctype, address=gvar, element_type=ctype.element
                )
            else:
                gvar = module.add_global(ext.name, ctype, init)
                global_vars[ext.name] = _Variable(ext.name, ctype, address=gvar)

    # Second pass: function definitions.
    for ext in ast.ext:
        if isinstance(ext, c_ast.FuncDef):
            lowering = _FunctionLowering(builder, module, global_vars)
            lowering.lower(ext)

    assert_valid(module)
    return module


def compile_c_function(source: str, name: str) -> Tuple[Module, Function]:
    """Compile ``source`` and return ``(module, module.functions[name])``."""
    module = compile_c(source)
    return module, module.get_function(name)
