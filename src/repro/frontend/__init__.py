"""Front ends producing repro IR.

The main entry point is :func:`compile_c`, which lowers a self-contained
subset of C (the subset embedded kernels are written in) to an IR
:class:`~repro.ir.Module` via pycparser.  Programs can also be built
directly with :class:`~repro.ir.IRBuilder`.
"""

from .c_frontend import CFrontendError, compile_c, compile_c_function

__all__ = ["CFrontendError", "compile_c", "compile_c_function"]
