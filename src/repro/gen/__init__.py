"""Synthetic workload generation and characterization.

Fisher99's custom-fit argument is only as strong as the population of
applications a sweep can draw on.  This package manufactures that
population: seeded, serializable :class:`WorkloadSpec` recipes expand
into self-checking kernels (C for the front end + a Python oracle
rendered from the same AST), get characterized statically and
dynamically, and fan through the DSE layer as
:class:`WorkloadPopulation` — unbounded scenario families instead of
eight hand-written demos.

Typical use::

    from repro.gen import WorkloadPopulation

    population = WorkloadPopulation.generate(100, seed=2024)
    with population:                     # registers into repro.workloads
        assert all(population.validate().values())
        report = population.report(budget=32.0)
"""

from .application import (
    APP_TOPOLOGIES, PRODUCER_FAMILIES, SINK_FAMILIES, sample_application,
)
from .characterize import (
    DynamicFeatures, StaticFeatures, WorkloadCharacterization,
    characterize_kernel, dynamic_features, static_features,
)
from .generator import GeneratedKernel, build_function, generate_kernel
from .population import FamilyGain, WorkloadPopulation
from .spec import (
    FAMILIES, WorkloadSpec, sample_population_specs, sample_spec,
)

__all__ = [
    "APP_TOPOLOGIES", "PRODUCER_FAMILIES", "SINK_FAMILIES",
    "sample_application",
    "DynamicFeatures", "StaticFeatures", "WorkloadCharacterization",
    "characterize_kernel", "dynamic_features", "static_features",
    "GeneratedKernel", "build_function", "generate_kernel",
    "FamilyGain", "WorkloadPopulation",
    "FAMILIES", "WorkloadSpec", "sample_population_specs", "sample_spec",
]
