"""Seeded, serializable descriptions of synthetic workloads.

A :class:`WorkloadSpec` is the *recipe* for one generated kernel: the
scenario family it belongs to, the loop-nest shape, the operation mix,
branch density, memory stride/footprint and operand data width.  The
spec is deliberately tiny and primitive-typed so that

* two processes holding equal specs generate bit-identical kernels
  (generation draws every random choice from ``Random(spec.seed)``), and
* :meth:`WorkloadSpec.fingerprint` gives a stable content address that
  composes with :mod:`repro.pipeline.fingerprints` — a population can be
  memoized, shipped or diffed by spec fingerprints alone.

Specs are sampled per family by :func:`sample_spec`; the distributions
are chosen so each family stresses a different part of the machine
(dense arithmetic, branches, dependent loads, reductions, strided
memory with independent chains).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..pipeline.fingerprints import spec_fingerprint

#: the scenario families the generator knows how to expand.
FAMILIES: Tuple[str, ...] = (
    "streaming_dsp",    # dense multiply-accumulate loops, optional tap nest
    "control_heavy",    # data-dependent if/else chains
    "table_lookup",     # dependent loads through a 256-entry table
    "reduction",        # parallel sum/xor/max accumulators
    "memory_mixed",     # strided loads/stores, independent ILP chains
)

#: binary operators the expression sampler may draw, per mix bucket.
OP_BUCKETS: Dict[str, Tuple[str, ...]] = {
    "arith": ("+", "-"),
    "mul": ("*",),
    "logic": ("&", "|", "^"),
    "shift": ("<<", ">>"),
}


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class WorkloadSpec:
    """One synthetic-kernel recipe (immutable, hashable, serializable)."""

    family: str
    seed: int
    #: default problem size (arrays per run); power of two.
    size: int = 64
    #: addressable window for masked indexing; power of two, <= size.
    footprint: int = 64
    #: loop-nest depth: 1 (flat) or 2 (inner tap/stage loop).
    depth: int = 1
    #: inner-loop trip count when depth == 2; power of two, <= footprint.
    taps: int = 8
    #: maximum random-expression depth.
    expr_depth: int = 2
    #: 0..1, scales how many data-dependent branches the body grows.
    branch_density: float = 0.5
    #: memory stride (odd, so masked strides permute the footprint).
    stride: int = 1
    #: operand width in bits (8, 16 or 32): narrows loaded values.
    data_bits: int = 32
    #: op-mix weights as sorted (bucket, weight) pairs; buckets are the
    #: keys of :data:`OP_BUCKETS`.
    op_mix: Tuple[Tuple[str, float], ...] = (
        ("arith", 3.0), ("logic", 1.0), ("mul", 1.0), ("shift", 1.0),
    )

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(
                f"unknown family '{self.family}'; available: {', '.join(FAMILIES)}"
            )
        if not _is_pow2(self.size) or not _is_pow2(self.footprint):
            raise ValueError("size and footprint must be powers of two")
        if self.footprint < 8:
            raise ValueError("footprint must be at least 8")
        if self.footprint > self.size:
            raise ValueError("footprint must not exceed size")
        if self.depth not in (1, 2):
            raise ValueError("loop-nest depth must be 1 or 2")
        if not _is_pow2(self.taps) or self.taps > self.footprint:
            raise ValueError("taps must be a power of two <= footprint")
        if self.data_bits not in (8, 16, 32):
            raise ValueError("data_bits must be 8, 16 or 32")
        if not 0.0 <= self.branch_density <= 1.0:
            raise ValueError("branch_density must be in [0, 1]")
        if self.stride < 1 or self.stride % 2 == 0:
            raise ValueError("stride must be odd and positive")
        # Normalize the op mix so equal mixes fingerprint equally.
        mix = tuple(sorted((str(k), float(w)) for k, w in self.op_mix))
        for bucket, weight in mix:
            if bucket not in OP_BUCKETS:
                raise ValueError(f"unknown op-mix bucket '{bucket}'")
            if weight < 0:
                raise ValueError("op-mix weights must be non-negative")
        # The generator needs at least one positive-weight non-shift
        # bucket (shifts only ever take small constant right operands).
        if not any(weight > 0 and bucket != "shift" for bucket, weight in mix):
            raise ValueError(
                "op_mix needs a positive weight on at least one "
                "non-shift bucket"
            )
        object.__setattr__(self, "op_mix", mix)

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "family": self.family, "seed": self.seed, "size": self.size,
            "footprint": self.footprint, "depth": self.depth,
            "taps": self.taps, "expr_depth": self.expr_depth,
            "branch_density": self.branch_density, "stride": self.stride,
            "data_bits": self.data_bits,
            "op_mix": [list(pair) for pair in self.op_mix],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WorkloadSpec":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "op_mix" in kwargs:
            kwargs["op_mix"] = tuple(
                (str(k), float(w)) for k, w in kwargs["op_mix"]
            )
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "WorkloadSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content address of this spec (pipeline-compatible)."""
        return spec_fingerprint(self.family, self.to_json())

    def kernel_name(self) -> str:
        """Unique, C-identifier-safe kernel name derived from the content."""
        return f"gen_{self.family}_{self.fingerprint()[:10]}"


# ----------------------------------------------------------------------
# Per-family sampling.
# ----------------------------------------------------------------------

#: op-mix profiles each family samples from.
_FAMILY_MIXES: Dict[str, Tuple[Tuple[str, float], ...]] = {
    "streaming_dsp": (("arith", 4.0), ("mul", 3.0), ("shift", 1.0), ("logic", 0.5)),
    "control_heavy": (("arith", 3.0), ("logic", 2.0), ("mul", 0.5), ("shift", 0.5)),
    "table_lookup": (("arith", 2.0), ("logic", 2.0), ("shift", 1.0), ("mul", 0.5)),
    "reduction": (("arith", 3.0), ("logic", 2.0), ("mul", 1.0), ("shift", 1.0)),
    "memory_mixed": (("arith", 3.0), ("logic", 1.5), ("mul", 1.0), ("shift", 1.0)),
}


def sample_spec(family: str, seed: int,
                rng: Optional[random.Random] = None) -> WorkloadSpec:
    """Draw one family-appropriate spec; deterministic in ``(family, seed)``.

    ``rng`` draws the *shape* parameters (size, depth, stride, ...); it
    defaults to ``Random(seed)`` so the same seed always yields the same
    spec.  The spec's own ``seed`` — the one kernel generation uses — is
    always the ``seed`` argument.
    """
    if family not in FAMILIES:
        raise ValueError(
            f"unknown family '{family}'; available: {', '.join(FAMILIES)}"
        )
    rng = rng if rng is not None else random.Random(seed)
    size = rng.choice((32, 64))
    footprint = rng.choice((16, 32, size))
    footprint = min(footprint, size)
    depth = 2 if (family == "streaming_dsp" and rng.random() < 0.5) else 1
    taps = rng.choice((4, 8))
    taps = min(taps, footprint)
    return WorkloadSpec(
        family=family,
        seed=seed,
        size=size,
        footprint=footprint,
        depth=depth,
        taps=taps,
        expr_depth=rng.choice((2, 2, 3)),
        branch_density=rng.choice((0.25, 0.5, 0.75, 1.0)),
        stride=rng.choice((1, 3, 5, 7)),
        data_bits=rng.choice((8, 16, 32)),
        op_mix=_FAMILY_MIXES[family],
    )


def sample_population_specs(count: int, seed: int,
                            families: Optional[Sequence[str]] = None
                            ) -> Tuple[WorkloadSpec, ...]:
    """``count`` specs, round-robin over ``families``, deterministic in seed."""
    chosen = tuple(families) if families is not None else FAMILIES
    if not chosen:
        raise ValueError("families must be non-empty")
    for family in chosen:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown family '{family}'; available: {', '.join(FAMILIES)}"
            )
    master = random.Random(seed)
    specs = []
    seen = set()
    while len(specs) < count:
        family = chosen[len(specs) % len(chosen)]
        spec_seed = master.randrange(1 << 30)
        spec = sample_spec(family, spec_seed, rng=master)
        key = spec.fingerprint()
        if key in seen:  # pragma: no cover - astronomically unlikely
            continue
        seen.add(key)
        specs.append(spec)
    return tuple(specs)
