"""Static and dynamic characterization of (generated) workloads.

Characterization is what turns a population of kernels into *evidence*:
instead of "this kernel got 1.7x from customization", a characterized
population supports "kernels with high ILP bounds and low branch
fractions got 1.7x" — the per-family, per-feature view the paper's
custom-fit argument needs.

Static features come from the optimized IR (:mod:`repro.ir.dataflow`
dependence graphs): opcode histograms, memory/branch densities and a
critical-path ILP bound per block.  Dynamic features come from an
:class:`~repro.sim.functional.ExecutionProfile` gathered by either
functional engine: instruction counts, load/store fractions and
branch-taken behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..ir import Module, Opcode, build_dataflow_graph
from ..sim.functional import ExecutionProfile

_BRANCH_OPS = (Opcode.BRANCH.value, Opcode.JUMP.value)


@dataclass
class StaticFeatures:
    """Machine-independent structure of one optimized module."""

    instructions: int = 0
    blocks: int = 0
    opcode_histogram: Dict[str, int] = field(default_factory=dict)
    loads: int = 0
    stores: int = 0
    branches: int = 0
    #: size of the largest basic block (straight-line window).
    largest_block: int = 0
    #: unit-latency critical path of the largest block's dependence graph.
    critical_path: int = 0
    #: largest_block / critical_path — an upper bound on exploitable ILP.
    ilp_bound: float = 1.0

    @property
    def memory_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return (self.loads + self.stores) / self.instructions

    def as_dict(self) -> Dict[str, object]:
        return {
            "instructions": self.instructions,
            "blocks": self.blocks,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "memory_fraction": round(self.memory_fraction, 4),
            "largest_block": self.largest_block,
            "critical_path": self.critical_path,
            "ilp_bound": round(self.ilp_bound, 3),
            "opcode_histogram": dict(sorted(self.opcode_histogram.items())),
        }


@dataclass
class DynamicFeatures:
    """Measured behaviour of one functional run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    taken_branches: int = 0
    opcode_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def memory_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return (self.loads + self.stores) / self.instructions

    @property
    def branch_fraction(self) -> float:
        if self.instructions == 0:
            return 0.0
        return self.branches / self.instructions

    @property
    def branch_taken_ratio(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.taken_branches / self.branches

    def as_dict(self) -> Dict[str, object]:
        return {
            "instructions": self.instructions,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "memory_fraction": round(self.memory_fraction, 4),
            "branch_fraction": round(self.branch_fraction, 4),
            "branch_taken_ratio": round(self.branch_taken_ratio, 4),
        }


@dataclass
class WorkloadCharacterization:
    """Everything measured about one kernel."""

    name: str
    family: str
    static: StaticFeatures
    dynamic: DynamicFeatures

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "family": self.family,
            "static": self.static.as_dict(),
            "dynamic": self.dynamic.as_dict(),
        }


def static_features(module: Module) -> StaticFeatures:
    """Analyze an (optimized) IR module's structure."""
    features = StaticFeatures()
    largest = None
    for function in module.functions.values():
        for block in function.blocks:
            features.blocks += 1
            size = len(block.instructions)
            if largest is None or size > len(largest.instructions):
                largest = block
            for inst in block.instructions:
                features.instructions += 1
                key = inst.opcode.value
                features.opcode_histogram[key] = (
                    features.opcode_histogram.get(key, 0) + 1)
                if inst.opcode is Opcode.LOAD:
                    features.loads += 1
                elif inst.opcode is Opcode.STORE:
                    features.stores += 1
                elif key in _BRANCH_OPS:
                    features.branches += 1
    if largest is not None and largest.instructions:
        dfg = build_dataflow_graph(largest, include_terminator=False)
        features.largest_block = len(dfg.nodes)
        features.critical_path = max(
            1, dfg.critical_path_length(lambda _inst: 1))
        features.ilp_bound = features.largest_block / features.critical_path
    return features


def dynamic_features(profile: ExecutionProfile) -> DynamicFeatures:
    """Reduce an execution profile to characterization features."""
    return DynamicFeatures(
        instructions=profile.instructions_executed,
        loads=profile.loads,
        stores=profile.stores,
        branches=profile.branches,
        taken_branches=profile.taken_branches,
        opcode_counts=dict(profile.opcode_counts),
    )


def characterize_kernel(generated, size: Optional[int] = None, seed: int = 1234,
                        opt_level: int = 2, engine: str = "interpreter",
                        pipeline=None) -> WorkloadCharacterization:
    """Compile, run and characterize one :class:`GeneratedKernel`.

    The module is compiled through the staged pipeline (the default
    session's unless ``pipeline`` is passed), run once on ``engine`` against
    the kernel's oracle (a mismatch raises), and reduced to one
    :class:`WorkloadCharacterization`.
    """
    from ..api.session import default_pipeline
    from ..exec.engine import make_functional_simulator

    pipeline = pipeline if pipeline is not None else default_pipeline()
    kernel = generated.kernel
    module, _records = pipeline.front(kernel.source, kernel.name,
                                      opt_level=opt_level)
    args = kernel.arguments(size, seed=seed)
    expected = kernel.expected(args)
    simulator = make_functional_simulator(module, engine=engine)
    run_args = tuple(list(a) if isinstance(a, list) else a for a in args)
    value = simulator.run(kernel.entry, *run_args)
    if value != expected:
        raise AssertionError(
            f"generated kernel {kernel.name} disagrees with its oracle: "
            f"{value} != {expected}"
        )
    return WorkloadCharacterization(
        name=kernel.name,
        family=getattr(generated, "family", kernel.domain),
        static=static_features(module),
        dynamic=dynamic_features(simulator.profile),
    )
