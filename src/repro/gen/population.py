"""Population-scale experiments over generated workloads.

:class:`WorkloadPopulation` is the bridge between the generator and the
rest of the stack: it expands a deterministic set of specs, registers
the resulting kernels into the :mod:`repro.workloads` registry (so the
suite helpers, mixes and DSE evaluators resolve them by name), validates
them bit-identically across both functional engines, characterizes
them, and measures per-family customization gains through the standard
``Evaluator``/``BatchEvaluator`` path — the "population, not
cherry-picked points" experiment harness.

Registration is scoped: use the population as a context manager (or the
explicit ``register``/``unregister`` pair) so test runs and benchmarks
leave the global registry exactly as they found it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from ..workloads.kernels import register_kernel, unregister_kernel
from ..workloads.suite import WorkloadMix
from .characterize import WorkloadCharacterization, characterize_kernel
from .generator import GeneratedKernel, generate_kernel
from .spec import WorkloadSpec, sample_population_specs


@dataclass
class FamilyGain:
    """Customization gain of one family's mix on one baseline point."""

    family: str
    kernels: List[str]
    base_time_us: float
    custom_time_us: float
    gain: float
    custom_ops: int
    base_area_kgates: float
    custom_area_kgates: float
    feasible: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "family": self.family,
            "kernels": len(self.kernels),
            "base_time_us": round(self.base_time_us, 2),
            "custom_time_us": round(self.custom_time_us, 2),
            "gain": round(self.gain, 3),
            "custom_ops": self.custom_ops,
            "base_area_kgates": round(self.base_area_kgates, 1),
            "custom_area_kgates": round(self.custom_area_kgates, 1),
            "feasible": self.feasible,
        }


class WorkloadPopulation:
    """A deterministic, registerable set of generated kernels."""

    def __init__(self, generated: Sequence[GeneratedKernel],
                 seed: int = 0) -> None:
        self.generated: List[GeneratedKernel] = list(generated)
        self.seed = seed
        self._registered: List[str] = []

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    @classmethod
    def generate(cls, count: int, seed: int,
                 families: Optional[Sequence[str]] = None
                 ) -> "WorkloadPopulation":
        """``count`` kernels, round-robin over ``families``, fixed seed."""
        specs = sample_population_specs(count, seed, families)
        return cls([generate_kernel(spec) for spec in specs], seed=seed)

    @classmethod
    def from_specs(cls, specs: Sequence[WorkloadSpec],
                   seed: int = 0) -> "WorkloadPopulation":
        return cls([generate_kernel(spec) for spec in specs], seed=seed)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.generated)

    def __iter__(self) -> Iterator[GeneratedKernel]:
        return iter(self.generated)

    def names(self, family: Optional[str] = None) -> List[str]:
        return [gk.name for gk in self.generated
                if family is None or gk.family == family]

    def families(self) -> List[str]:
        seen: List[str] = []
        for gk in self.generated:
            if gk.family not in seen:
                seen.append(gk.family)
        return seen

    def by_family(self) -> Dict[str, List[GeneratedKernel]]:
        grouped: Dict[str, List[GeneratedKernel]] = {}
        for gk in self.generated:
            grouped.setdefault(gk.family, []).append(gk)
        return grouped

    def fingerprints(self) -> List[str]:
        return [gk.spec.fingerprint() for gk in self.generated]

    # ------------------------------------------------------------------
    # Registry scoping.
    # ------------------------------------------------------------------
    def register(self) -> "WorkloadPopulation":
        """Register every kernel into the workloads registry (idempotent)."""
        for gk in self.generated:
            if gk.name not in self._registered:
                register_kernel(gk.kernel, replace=True)
                self._registered.append(gk.name)
        return self

    def unregister(self) -> None:
        """Remove this population's kernels from the registry."""
        while self._registered:
            unregister_kernel(self._registered.pop())

    def __enter__(self) -> "WorkloadPopulation":
        return self.register()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.unregister()

    # ------------------------------------------------------------------
    # Population-scale runs.
    # ------------------------------------------------------------------
    def validate(self, size: Optional[int] = None, seed: int = 4321,
                 engines: Sequence[str] = ("interpreter", "compiled"),
                 opt_level: int = 2, pipeline=None) -> Dict[str, bool]:
        """Run every kernel on every engine; True iff all values match the
        oracle (and therefore each other bit-identically)."""
        from ..api.session import default_pipeline
        from ..exec.engine import make_functional_simulator

        pipeline = pipeline if pipeline is not None else default_pipeline()
        results: Dict[str, bool] = {}
        for gk in self.generated:
            kernel = gk.kernel
            module, _records = pipeline.front(kernel.source, kernel.name,
                                              opt_level=opt_level)
            args = kernel.arguments(size, seed=seed)
            expected = kernel.expected(args)
            ok = True
            for engine in engines:
                simulator = make_functional_simulator(module.clone(),
                                                      engine=engine)
                run_args = tuple(list(a) if isinstance(a, list) else a
                                 for a in args)
                ok = ok and (simulator.run(kernel.entry, *run_args) == expected)
            results[kernel.name] = ok
        return results

    def characterize_all(self, size: Optional[int] = None, seed: int = 1234,
                         opt_level: int = 2, engine: str = "interpreter",
                         pipeline=None) -> List[WorkloadCharacterization]:
        return [characterize_kernel(gk, size=size, seed=seed,
                                    opt_level=opt_level, engine=engine,
                                    pipeline=pipeline)
                for gk in self.generated]

    def family_mix(self, family: str, limit: Optional[int] = None,
                   ) -> WorkloadMix:
        """A unit-weight mix over (up to ``limit`` of) one family's kernels.

        The population must be registered for evaluators to resolve the
        mix's kernel names.
        """
        names = self.names(family)
        if not names:
            raise KeyError(
                f"population has no '{family}' kernels; "
                f"families: {', '.join(self.families()) or 'none'}"
            )
        if limit is not None:
            names = names[:limit]
        return WorkloadMix(f"gen-{family}", {name: 1.0 for name in names})

    def customization_gain(self, family: str, budget: float = 32.0,
                           engine: str = "compiled", size: Optional[int] = None,
                           opt_level: int = 2, kernels_per_family: int = 3,
                           baseline=None, workers: int = 0,
                           pipeline=None) -> FamilyGain:
        """Measure what an ISA-customization budget buys this family.

        Evaluates the family mix on ``baseline`` (a
        :class:`~repro.dse.space.DesignPoint`; 4-issue/64-reg default)
        with and without ``budget`` kgates of custom-datapath area,
        through the standard batched evaluation path.  Requires the
        population to be registered.
        """
        from ..dse.objectives import Evaluator
        from ..dse.space import DesignPoint
        from ..exec.batch import BatchEvaluator

        mix = self.family_mix(family, limit=kernels_per_family)
        evaluator = Evaluator(mix, size=size, opt_level=opt_level,
                              seed=self.seed + 1, engine=engine,
                              pipeline=pipeline)
        batch = BatchEvaluator(evaluator, workers=workers)
        base_point = (baseline if baseline is not None
                      else DesignPoint(issue_width=4, registers=64))
        custom_point = dataclasses.replace(base_point,
                                           custom_area_budget=budget)
        base, custom = batch.evaluate_many([base_point, custom_point])
        custom_time = custom.weighted_time_us
        gain = (base.weighted_time_us / custom_time
                if custom_time > 0 else 0.0)
        return FamilyGain(
            family=family,
            kernels=mix.names(),
            base_time_us=base.weighted_time_us,
            custom_time_us=custom_time,
            gain=gain,
            custom_ops=custom.custom_ops,
            base_area_kgates=base.area_kgates,
            custom_area_kgates=custom.area_kgates,
            feasible=base.feasible and custom.feasible,
        )

    def report(self, budget: float = 32.0, engine: str = "compiled",
               size: Optional[int] = None, opt_level: int = 2,
               kernels_per_family: int = 3, workers: int = 0,
               pipeline=None) -> Dict[str, object]:
        """Characterize and sweep the whole population, grouped by family.

        ``pipeline`` is threaded through characterization and evaluation,
        so a caller that already warmed a private compile pipeline keeps
        every front-half artifact (the default session's otherwise).
        """
        characterizations = self.characterize_all(size=size,
                                                  opt_level=opt_level,
                                                  pipeline=pipeline)
        by_family: Dict[str, List[WorkloadCharacterization]] = {}
        for item in characterizations:
            by_family.setdefault(item.family, []).append(item)

        families = []
        for family in self.families():
            members = by_family.get(family, [])
            gain = self.customization_gain(
                family, budget=budget, engine=engine, size=size,
                opt_level=opt_level, kernels_per_family=kernels_per_family,
                workers=workers, pipeline=pipeline)
            count = max(1, len(members))
            row = {
                "family": family,
                "kernels": len(members),
                "mean_ilp_bound": round(
                    sum(c.static.ilp_bound for c in members) / count, 3),
                "mean_memory_fraction": round(
                    sum(c.dynamic.memory_fraction for c in members) / count, 4),
                "mean_branch_fraction": round(
                    sum(c.dynamic.branch_fraction for c in members) / count, 4),
                "mean_instructions": round(
                    sum(c.dynamic.instructions for c in members) / count),
            }
            # The gain record's "kernels" is the size of the measured mix,
            # not the family population — keep the population count.
            row.update({key: value for key, value in gain.as_dict().items()
                        if key not in row})
            row["gain_mix_kernels"] = len(gain.kernels)
            families.append(row)
        return {
            "population": len(self.generated),
            "seed": self.seed,
            "families": families,
        }
