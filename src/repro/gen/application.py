"""Synthesis of whole applications from the scenario families.

Where :func:`~repro.gen.spec.sample_spec` draws one kernel recipe,
:func:`sample_application` draws a whole dataflow graph: a topology
(chain, fan-in or diamond) instantiated with family-appropriate nodes
and typed edges, plus a window stream with period and deadline.  Every
random choice comes from ``Random(seed)``, so equal ``(topology, seed)``
pairs yield bit-identical applications — and because every node is a
generated kernel with a Python oracle, the composed graph stays
self-checking end to end (see :class:`~repro.app.runner.AppRunner`).

Topology constraints follow from the families' array signatures: only
``streaming_dsp`` and ``memory_mixed`` kernels produce output arrays,
so only they can source *array* edges; every family returns a scalar,
so *scalar* (``"value"``) edges can start anywhere.  ``table_lookup``
has a single input array, so it never sits where two edges converge.

Imports of :mod:`repro.app` stay inside the functions: ``repro.app``
imports :mod:`repro.gen` for the node recipes, and lazy imports keep
that dependency one-directional at module-load time.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Tuple

from .spec import FAMILIES, sample_spec

#: graph shapes the application sampler knows how to draw.
APP_TOPOLOGIES: Tuple[str, ...] = ("chain", "fan_in", "diamond")

#: families whose kernels produce an output array (array-edge sources).
PRODUCER_FAMILIES: Tuple[str, ...] = ("streaming_dsp", "memory_mixed")

#: families with at least two input arrays (multi-edge sinks).
SINK_FAMILIES: Tuple[str, ...] = tuple(
    f for f in FAMILIES if f != "table_lookup")


def _draw_node(rng: random.Random, name: str, families: Sequence[str]):
    from ..app.spec import AppNode

    family = rng.choice(list(families))
    return AppNode(name=name, spec=sample_spec(family, rng.randrange(1 << 30)))


def sample_application(topology: str, seed: int,
                       families: Optional[Sequence[str]] = None,
                       windows: int = 6, window_size: int = 32,
                       period_us: Optional[float] = None,
                       deadline_us: Optional[float] = None):
    """Draw one application; deterministic in ``(topology, seed)``.

    ``families`` restricts the family pool for the *free* (non-producer,
    non-sink) positions; producer and sink positions are always drawn
    from the structurally valid subsets.  When ``period_us`` /
    ``deadline_us`` are omitted, a loose default envelope is drawn so
    generated applications are meaningful real-time problems without
    being trivially infeasible (callers exploring deadlines should pass
    explicit values).
    """
    from ..app.spec import AppEdge, ApplicationSpec, WindowStream

    if topology not in APP_TOPOLOGIES:
        raise ValueError(
            f"unknown topology '{topology}'; available: "
            f"{', '.join(APP_TOPOLOGIES)}")
    pool = tuple(families) if families is not None else FAMILIES
    for family in pool:
        if family not in FAMILIES:
            raise ValueError(
                f"unknown family '{family}'; available: "
                f"{', '.join(FAMILIES)}")
    producers = tuple(f for f in pool if f in PRODUCER_FAMILIES) or \
        PRODUCER_FAMILIES
    sinks = tuple(f for f in pool if f in SINK_FAMILIES) or SINK_FAMILIES

    rng = random.Random(seed)
    nodes = []
    edges = []
    if topology == "chain":
        # src --array--> mid --array--> sink
        nodes.append(_draw_node(rng, "n0_src", producers))
        nodes.append(_draw_node(rng, "n1_mid", producers))
        nodes.append(_draw_node(rng, "n2_sink", pool))
        edges.append(_array_edge(nodes[0], nodes[1]))
        edges.append(_array_edge(nodes[1], nodes[2]))
    elif topology == "fan_in":
        # a --array--> sink <--value-- b
        nodes.append(_draw_node(rng, "n0_a", producers))
        nodes.append(_draw_node(rng, "n1_b", pool))
        nodes.append(_draw_node(rng, "n2_sink", sinks))
        in_ports = _input_ports(nodes[2])
        edges.append(_array_edge(nodes[0], nodes[2], dst_port=in_ports[0]))
        edges.append(AppEdge(src=nodes[1].name, dst=nodes[2].name,
                             src_port="value", dst_port=in_ports[1]))
    else:  # diamond
        # src --array--> left/right --value--> sink (two converging paths)
        nodes.append(_draw_node(rng, "n0_src", producers))
        nodes.append(_draw_node(rng, "n1_left", pool))
        nodes.append(_draw_node(rng, "n2_right", pool))
        nodes.append(_draw_node(rng, "n3_sink", sinks))
        edges.append(_array_edge(nodes[0], nodes[1]))
        edges.append(_array_edge(nodes[0], nodes[2]))
        in_ports = _input_ports(nodes[3])
        edges.append(AppEdge(src=nodes[1].name, dst=nodes[3].name,
                             src_port="value", dst_port=in_ports[0]))
        edges.append(AppEdge(src=nodes[2].name, dst=nodes[3].name,
                             src_port="value", dst_port=in_ports[1]))

    if period_us is None:
        period_us = float(rng.choice((200.0, 500.0, 1000.0)))
    if deadline_us is None:
        deadline_us = period_us
    stream = WindowStream(windows=windows, window_size=window_size,
                          period_us=period_us, deadline_us=deadline_us,
                          seed=rng.randrange(1 << 30),
                          load_jitter=rng.choice((0.25, 0.5)))
    name = f"app_{topology}_{seed}"
    return ApplicationSpec(name=name, nodes=tuple(nodes), edges=tuple(edges),
                           stream=stream, seed=seed)


def _input_ports(node) -> Tuple[str, ...]:
    from ..app.spec import node_ports

    return tuple(name for name, role in node_ports(node.spec).items()
                 if role == "input")


def _output_port(node) -> str:
    from ..app.spec import node_ports

    for name, role in node_ports(node.spec).items():
        if role == "output":
            return name
    raise ValueError(
        f"node {node.name} ({node.spec.family}) produces no output array")


def _array_edge(src, dst, dst_port: Optional[str] = None):
    from ..app.spec import AppEdge

    if dst_port is None:
        dst_port = _input_ports(dst)[0]
    return AppEdge(src=src.name, dst=dst.name, src_port=_output_port(src),
                   dst_port=dst_port)
