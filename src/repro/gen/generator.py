"""Expansion of a :class:`~repro.gen.spec.WorkloadSpec` into a kernel.

The generator builds a small statement/expression AST and renders it
*twice* — once as C for :mod:`repro.frontend.c_frontend`, once as Python
for the oracle — so every generated kernel is self-checking by
construction: both renderings come from the same tree, and the Python
side wraps every binary operation to 32-bit two's-complement exactly as
the IR simulators do.

Safety discipline (what makes every generated program well-defined):

* array indexes are either a loop variable (bounded by the loop) or an
  expression masked with ``& (footprint - 1)``, and every runtime array
  is at least ``footprint`` elements long (``& 255`` for the 256-entry
  lookup tables);
* shift amounts are small constants (1..8), and ``/`` and ``%`` are
  never generated (C truncation vs. Python floor, division by zero);
* loops run ``for (v = 0; v < bound; v = v + 1)`` with ``bound`` either
  ``n`` or a positive constant, so both renderings agree on trip counts.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple, Union

from ..ir.types import I32
from ..workloads.kernels import Kernel
from .spec import OP_BUCKETS, WorkloadSpec

_W = I32.wrap

#: comparison operators usable in conditions and selects.
_CMPS = ("<", "<=", ">", ">=", "==", "!=")


# ----------------------------------------------------------------------
# Expression nodes.
# ----------------------------------------------------------------------

class Expr:
    """Base expression node; renders to C and to wrapped Python."""

    def c(self) -> str:
        raise NotImplementedError

    def py(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def c(self) -> str:
        return str(self.value) if self.value >= 0 else f"({self.value})"

    def py(self) -> str:
        return self.c()


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def c(self) -> str:
        return self.name

    def py(self) -> str:
        return self.name


@dataclass(frozen=True)
class Load(Expr):
    array: str
    index: Expr

    def c(self) -> str:
        return f"{self.array}[{self.index.c()}]"

    def py(self) -> str:
        return f"{self.array}[{self.index.py()}]"


@dataclass(frozen=True)
class Bin(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def c(self) -> str:
        return f"({self.lhs.c()} {self.op} {self.rhs.c()})"

    def py(self) -> str:
        # Every binary op wraps to signed 32 bits, mirroring the IR
        # semantics the C rendering compiles to.
        return f"_w({self.lhs.py()} {self.op} {self.rhs.py()})"


@dataclass(frozen=True)
class Select(Expr):
    """``(a cmp b) ? t : f`` — both arms pure, evaluated eagerly."""

    cmp: str
    a: Expr
    b: Expr
    t: Expr
    f: Expr

    def c(self) -> str:
        return (f"(({self.a.c()} {self.cmp} {self.b.c()}) ? "
                f"{self.t.c()} : {self.f.c()})")

    def py(self) -> str:
        return (f"({self.t.py()} if ({self.a.py()} {self.cmp} {self.b.py()}) "
                f"else {self.f.py()})")


# ----------------------------------------------------------------------
# Statement nodes.
# ----------------------------------------------------------------------

class Stmt:
    pass


@dataclass
class Assign(Stmt):
    name: str
    expr: Expr


@dataclass
class ArrayStore(Stmt):
    array: str
    index: Expr
    expr: Expr


@dataclass
class If(Stmt):
    cmp: str
    a: Expr
    b: Expr
    then: List[Stmt]
    orelse: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    var: str
    bound: Union[int, str]   # "n" or a positive constant
    body: List[Stmt] = field(default_factory=list)


@dataclass
class GenFunction:
    """A complete generated function, renderable to C and Python."""

    name: str
    arrays: List["ArrayParam"]
    body: List[Stmt]
    ret: Expr
    scalars: List[str]


@dataclass(frozen=True)
class ArrayParam:
    """One pointer parameter and how the input builder fills it."""

    name: str
    role: str            # "input" | "output" | "table"


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------

def _emit_c(stmt: Stmt, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.name} = {stmt.expr.c()};")
    elif isinstance(stmt, ArrayStore):
        lines.append(f"{pad}{stmt.array}[{stmt.index.c()}] = {stmt.expr.c()};")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if ({stmt.a.c()} {stmt.cmp} {stmt.b.c()}) {{")
        for inner in stmt.then:
            _emit_c(inner, lines, indent + 1)
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            for inner in stmt.orelse:
                _emit_c(inner, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, For):
        v = stmt.var
        lines.append(f"{pad}for (int {v} = 0; {v} < {stmt.bound}; "
                     f"{v} = {v} + 1) {{")
        for inner in stmt.body:
            _emit_c(inner, lines, indent + 1)
        lines.append(f"{pad}}}")
    else:  # pragma: no cover - exhaustive over the node kinds above
        raise TypeError(f"unknown statement node {type(stmt).__name__}")


def _emit_py(stmt: Stmt, lines: List[str], indent: int) -> None:
    pad = "    " * indent
    if isinstance(stmt, Assign):
        lines.append(f"{pad}{stmt.name} = {stmt.expr.py()}")
    elif isinstance(stmt, ArrayStore):
        lines.append(f"{pad}{stmt.array}[{stmt.index.py()}] = {stmt.expr.py()}")
    elif isinstance(stmt, If):
        lines.append(f"{pad}if {stmt.a.py()} {stmt.cmp} {stmt.b.py()}:")
        for inner in stmt.then:
            _emit_py(inner, lines, indent + 1)
        if stmt.orelse:
            lines.append(f"{pad}else:")
            for inner in stmt.orelse:
                _emit_py(inner, lines, indent + 1)
    elif isinstance(stmt, For):
        lines.append(f"{pad}for {stmt.var} in range({stmt.bound}):")
        for inner in stmt.body:
            _emit_py(inner, lines, indent + 1)
    else:  # pragma: no cover
        raise TypeError(f"unknown statement node {type(stmt).__name__}")


def render_c(fn: GenFunction) -> str:
    params = ", ".join([f"int *{a.name}" for a in fn.arrays] + ["int n"])
    lines = [f"int {fn.name}({params}) {{"]
    for name in fn.scalars:
        lines.append(f"    int {name} = 0;")
    for stmt in fn.body:
        _emit_c(stmt, lines, 1)
    lines.append(f"    return {fn.ret.c()};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_py(fn: GenFunction) -> str:
    params = ", ".join([a.name for a in fn.arrays] + ["n"])
    lines = [f"def {fn.name}({params}):"]
    # Mirror the C rendering's zero-initialized declarations so scalars
    # read before their first in-branch assignment agree.
    for name in fn.scalars:
        lines.append(f"    {name} = 0")
    for stmt in fn.body:
        _emit_py(stmt, lines, 1)
    lines.append(f"    return _w({fn.ret.py()})")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Random expression sampling.
# ----------------------------------------------------------------------

class _Sampler:
    """Seeded drawing of operators, constants and bounded expressions."""

    def __init__(self, rng: random.Random, spec: WorkloadSpec) -> None:
        self.rng = rng
        self.spec = spec
        ops: List[str] = []
        weights: List[float] = []
        for bucket, weight in spec.op_mix:
            for op in OP_BUCKETS[bucket]:
                ops.append(op)
                weights.append(weight)
        self._ops = ops
        self._weights = weights
        # Spec validation guarantees this subset is non-empty.
        self._nonshift = [(op, w) for op, w in zip(ops, weights)
                          if op not in ("<<", ">>") and w > 0]

    def const(self, lo: int = -64, hi: int = 64) -> Const:
        return Const(self.rng.randint(lo, hi))

    def cmp(self) -> str:
        return self.rng.choice(_CMPS)

    def op(self) -> str:
        return self.rng.choices(self._ops, weights=self._weights, k=1)[0]

    def op_nonshift(self) -> str:
        """An operator safe for a non-constant right operand.

        Shifts are only ever generated with small constant amounts (a
        data-dependent amount could be negative or >= 32, where C and
        Python semantics diverge).
        """
        ops = [op for op, _w in self._nonshift]
        weights = [w for _op, w in self._nonshift]
        return self.rng.choices(ops, weights=weights, k=1)[0]

    def expr(self, leaves: Sequence[Expr], depth: int) -> Expr:
        """A random expression over ``leaves``, at most ``depth`` ops deep."""
        if depth <= 0 or self.rng.random() < 0.25:
            return self.rng.choice(list(leaves))
        op = self.op()
        if op in ("<<", ">>"):
            return Bin(op, self.expr(leaves, depth - 1),
                       Const(self.rng.randint(1, 8)))
        return Bin(op, self.expr(leaves, depth - 1),
                   self.expr(leaves, depth - 1))


def _masked(expr: Expr, mask: int) -> Expr:
    """An always-in-range index: ``expr & mask`` (mask = footprint - 1)."""
    return Bin("&", expr, Const(mask))


def _narrow(expr: Expr, data_bits: int) -> Expr:
    """Narrow an operand to the spec's data width (identical in C/Python)."""
    if data_bits >= 32:
        return expr
    return Bin("&", expr, Const((1 << data_bits) - 1))


# ----------------------------------------------------------------------
# Family bodies.
# ----------------------------------------------------------------------

def _family_streaming_dsp(spec: WorkloadSpec, s: _Sampler
                          ) -> Tuple[List[ArrayParam], List[Stmt], Expr, List[str]]:
    mask = spec.footprint - 1
    arrays = [ArrayParam("x", "input"), ArrayParam("h", "input"),
              ArrayParam("y", "output")]
    i, j = Var("i"), Var("j")
    shift = s.rng.randint(2, 8)
    rounding = Const(1 << (shift - 1))
    if spec.depth == 2:
        inner = For("j", spec.taps, [
            Assign("s0", Bin("+", Var("s0"),
                             Bin("*",
                                 _narrow(Load("x", _masked(Bin("+", i, j), mask)),
                                         spec.data_bits),
                                 Load("h", j)))),
        ])
        body_loop = [
            Assign("s0", Const(0)),
            inner,
            Assign("t0", Bin(">>", Bin("+", Var("s0"), rounding), Const(shift))),
            ArrayStore("y", i, Var("t0")),
            Assign("acc", Bin("+", Var("acc"), Var("t0"))),
        ]
        scalars = ["acc", "s0", "t0"]
    else:
        leaves = [
            _narrow(Load("x", i), spec.data_bits),
            _narrow(Load("x", _masked(Bin("+", i, s.const(1, mask)), mask)),
                    spec.data_bits),
            Load("h", _masked(Bin("*", i, Const(spec.stride)), mask)),
            s.const(-32, 32),
        ]
        e = s.expr(leaves, spec.expr_depth)
        body_loop = [
            Assign("t0", Bin(">>", Bin("+", e, rounding), Const(shift))),
            ArrayStore("y", i, Var("t0")),
            Assign("acc", Bin("+", Var("acc"), Var("t0"))),
        ]
        scalars = ["acc", "t0"]
    body = [For("i", "n", body_loop)]
    return arrays, body, Var("acc"), scalars


def _family_control_heavy(spec: WorkloadSpec, s: _Sampler
                          ) -> Tuple[List[ArrayParam], List[Stmt], Expr, List[str]]:
    arrays = [ArrayParam("a", "input"), ArrayParam("b", "input")]
    i = Var("i")
    v, w = Var("v"), Var("w")
    branches = max(1, round(spec.branch_density * 4))
    body_loop: List[Stmt] = [
        Assign("v", _narrow(Load("a", i), spec.data_bits)),
        Assign("w", _narrow(Load("b", i), spec.data_bits)),
    ]
    leaves = [v, w, s.const(-16, 16)]
    for _ in range(branches):
        cond_rhs = w if s.rng.random() < 0.5 else s.const(-32, 32)
        then = [Assign("acc", Bin(s.op_nonshift() if s.rng.random() < 0.5 else "+",
                                  Var("acc"), s.expr(leaves, spec.expr_depth)))]
        if s.rng.random() < 0.4:
            # One nested data-dependent branch.
            then.append(If(s.cmp(), v, s.const(-16, 16),
                           [Assign("acc2", Bin("^", Var("acc2"),
                                               s.expr(leaves, 1)))]))
        orelse: List[Stmt] = []
        if s.rng.random() < 0.7:
            orelse = [Assign("acc2", Bin("+", Var("acc2"),
                                         s.expr(leaves, spec.expr_depth)))]
        body_loop.append(If(s.cmp(), v, cond_rhs, then, orelse))
    body = [For("i", "n", body_loop)]
    ret = Bin("+", Var("acc"), Bin("^", Var("acc2"), Const(3)))
    return arrays, body, ret, ["acc", "acc2", "v", "w"]


def _family_table_lookup(spec: WorkloadSpec, s: _Sampler
                         ) -> Tuple[List[ArrayParam], List[Stmt], Expr, List[str]]:
    mask = spec.footprint - 1
    arrays = [ArrayParam("data", "input"), ArrayParam("lut", "table")]
    i = Var("i")
    first = Bin("&", Bin("+", _narrow(Load("data", i), spec.data_bits),
                         Bin("*", i, Const(spec.stride))), Const(255))
    body_loop: List[Stmt] = [
        Assign("idx", first),
        Assign("t0", Load("lut", Var("idx"))),
        # Second, dependent lookup: the table value feeds the next index.
        Assign("idx", Bin("&", Bin("+", Var("t0"),
                                   Load("data", _masked(Bin("+", i, Const(1)),
                                                        mask))), Const(255))),
        Assign("t1", Load("lut", Var("idx"))),
        Assign("acc", Bin("+", Var("acc"),
                          s.expr([Var("t0"), Var("t1"), s.const(-8, 8)],
                                 spec.expr_depth))),
        Assign("acc2", Bin("^", Var("acc2"),
                           Bin("<<", Var("t1"), Const(s.rng.randint(1, 4))))),
    ]
    body = [For("i", "n", body_loop)]
    ret = Bin("+", Var("acc"), Var("acc2"))
    return arrays, body, ret, ["acc", "acc2", "idx", "t0", "t1"]


def _family_reduction(spec: WorkloadSpec, s: _Sampler
                      ) -> Tuple[List[ArrayParam], List[Stmt], Expr, List[str]]:
    arrays = [ArrayParam("a", "input"), ArrayParam("b", "input")]
    i = Var("i")
    mask = spec.footprint - 1
    leaves = [
        _narrow(Load("a", i), spec.data_bits),
        _narrow(Load("b", i), spec.data_bits),
        Load("a", _masked(Bin("*", i, Const(spec.stride)), mask)),
        s.const(-32, 32),
    ]
    body_loop: List[Stmt] = [
        Assign("r0", s.expr(leaves, spec.expr_depth)),
        Assign("total", Bin("+", Var("total"), Var("r0"))),
        Assign("xr", Bin("^", Var("xr"), s.expr(leaves, 1))),
        Assign("mx", Select(">", Var("r0"), Var("mx"), Var("r0"), Var("mx"))),
    ]
    body = [For("i", "n", body_loop)]
    ret = Bin("+", Bin("+", Var("total"), Bin("&", Var("xr"), Const(0xFFFF))),
              Var("mx"))
    return arrays, body, ret, ["total", "xr", "mx", "r0"]


def _family_memory_mixed(spec: WorkloadSpec, s: _Sampler
                         ) -> Tuple[List[ArrayParam], List[Stmt], Expr, List[str]]:
    mask = spec.footprint - 1
    arrays = [ArrayParam("a", "input"), ArrayParam("b", "input"),
              ArrayParam("out", "output")]
    i = Var("i")
    stride2 = s.rng.choice((3, 5, 7))
    body_loop: List[Stmt] = [
        Assign("p", _masked(Bin("*", i, Const(spec.stride)), mask)),
        Assign("q", _masked(Bin("+", Bin("*", i, Const(stride2)),
                                s.const(0, mask)), mask)),
        Assign("u", _narrow(Load("a", Var("p")), spec.data_bits)),
        Assign("v", _narrow(Load("b", Var("q")), spec.data_bits)),
        # Two independent accumulator chains (exploitable ILP).
        Assign("acc0", Bin("+", Var("acc0"),
                           s.expr([Var("u"), Var("v"), s.const(-16, 16)],
                                  spec.expr_depth))),
        Assign("acc1", Bin("^", Var("acc1"),
                           s.expr([Var("u"), Var("v"), s.const(-16, 16)],
                                  spec.expr_depth))),
        ArrayStore("out", Var("p"), Bin(s.op_nonshift(), Var("u"), Var("v"))),
    ]
    body = [For("i", "n", body_loop)]
    ret = Bin("+", Var("acc0"), Var("acc1"))
    return arrays, body, ret, ["acc0", "acc1", "p", "q", "u", "v"]


_FAMILY_BUILDERS: Dict[str, Callable] = {
    "streaming_dsp": _family_streaming_dsp,
    "control_heavy": _family_control_heavy,
    "table_lookup": _family_table_lookup,
    "reduction": _family_reduction,
    "memory_mixed": _family_memory_mixed,
}


# ----------------------------------------------------------------------
# Kernel assembly.
# ----------------------------------------------------------------------

#: per-data-width input value ranges.
_INPUT_RANGES = {8: (0, 255), 16: (-3000, 3000), 32: (-30000, 30000)}


def _make_args_builder(arrays: Sequence[ArrayParam],
                       spec: WorkloadSpec) -> Callable[[int, int], tuple]:
    lo, hi = _INPUT_RANGES[spec.data_bits]
    footprint = spec.footprint
    roles = tuple((a.name, a.role) for a in arrays)

    def build(n: int, seed: int) -> tuple:
        # Masked indexing requires at least ``footprint`` elements.
        n = max(int(n or 0), footprint)
        args: List[object] = []
        for k, (_name, role) in enumerate(roles):
            rng = random.Random(seed + 1000003 * (k + 1))
            if role == "table":
                args.append([rng.randint(0, 255) for _ in range(256)])
            elif role == "output":
                args.append([0] * n)
            else:
                args.append([rng.randint(lo, hi) for _ in range(n)])
        args.append(n)
        return tuple(args)

    return build


@dataclass
class GeneratedKernel:
    """A spec expanded to a registered-suite-compatible kernel."""

    spec: WorkloadSpec
    kernel: Kernel
    c_source: str
    python_source: str

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def family(self) -> str:
        return self.spec.family


def build_function(spec: WorkloadSpec) -> GenFunction:
    """Expand ``spec`` into the shared AST (deterministic in the spec)."""
    rng = random.Random(spec.seed)
    sampler = _Sampler(rng, spec)
    arrays, body, ret, scalars = _FAMILY_BUILDERS[spec.family](spec, sampler)
    return GenFunction(name=spec.kernel_name(), arrays=arrays, body=body,
                       ret=ret, scalars=scalars)


def generate_kernel(spec: WorkloadSpec) -> GeneratedKernel:
    """Expand ``spec`` into C source + Python oracle + input builder."""
    fn = build_function(spec)
    c_source = render_c(fn)
    python_source = render_py(fn)

    namespace: Dict[str, object] = {"_w": _W}
    exec(compile(python_source, f"<generated:{fn.name}>", "exec"), namespace)
    reference = namespace[fn.name]

    kernel = Kernel(
        name=fn.name,
        domain=f"gen:{spec.family}",
        description=(f"generated {spec.family} kernel "
                     f"(seed {spec.seed}, depth {spec.depth}, "
                     f"{spec.data_bits}-bit data, stride {spec.stride})"),
        source=c_source,
        entry=fn.name,
        make_args=_make_args_builder(fn.arrays, spec),
        reference=reference,
        default_size=max(spec.size, spec.footprint),
    )
    return GeneratedKernel(spec=spec, kernel=kernel, c_source=c_source,
                           python_source=python_source)
