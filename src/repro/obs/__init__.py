"""``repro.obs`` — tracing, metrics, and run manifests.

The observability substrate under every layer of the stack: a
zero-dependency span tracer (:mod:`repro.obs.trace`), a typed metrics
registry (:mod:`repro.obs.metrics`) that is the single source of truth
for the counters the store/code-cache/session/daemon report, and JSONL
run manifests (:mod:`repro.obs.journal`) behind ``python -m repro
inspect``.

Three modes, cheapest first (``REPRO_OBS`` env, ``Session(obs=...)``,
or the CLI ``--obs`` flag):

* ``off``     — no spans, no request metrics, no journal.  The
  functional per-stage store counters still count (tests and cache
  economics rely on them); the only added cost on hot paths is one
  mode check per would-be span (~1 µs, asserted in bench_e9).
* ``metrics`` — the default.  Request counters and latency histograms
  are recorded into the session/daemon registry; still no spans.
* ``trace``   — everything: spans with cross-process stitching, and
  journal manifests when a journal is configured
  (``Session(journal=...)``, ``--journal``, or ``REPRO_OBS_JOURNAL``).

Mode resolution order: the innermost :func:`obs_override` context on
this thread, then :func:`set_obs_mode`, then the environment, then the
default (``metrics``).
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Iterator, Optional

#: the three observability modes, cheapest first.
OBS_MODES = ("off", "metrics", "trace")

#: environment knob selecting the process-wide default mode.
OBS_ENV = "REPRO_OBS"

#: environment knob naming a default journal file (JSONL manifests).
JOURNAL_ENV = "REPRO_OBS_JOURNAL"

_DEFAULT_MODE = "metrics"

_tls = threading.local()
_process_mode: Optional[str] = None


def validate_obs_mode(mode: str) -> str:
    if mode not in OBS_MODES:
        raise ValueError(
            f"obs mode must be one of {', '.join(OBS_MODES)}, not {mode!r}")
    return mode


def obs_mode() -> str:
    """The effective mode: thread override > set_obs_mode > env > default."""
    stack = getattr(_tls, "modes", None)
    if stack:
        return stack[-1]
    if _process_mode is not None:
        return _process_mode
    env = os.environ.get(OBS_ENV)
    if env in OBS_MODES:
        return env
    return _DEFAULT_MODE


def set_obs_mode(mode: Optional[str]) -> None:
    """Pin the process-wide mode (None returns control to the env)."""
    global _process_mode
    _process_mode = validate_obs_mode(mode) if mode is not None else None


@contextlib.contextmanager
def obs_override(mode: Optional[str]) -> Iterator[None]:
    """Thread-local mode override (how per-Session modes coexist)."""
    if mode is None:
        yield
        return
    validate_obs_mode(mode)
    stack = getattr(_tls, "modes", None)
    if stack is None:
        stack = _tls.modes = []
    stack.append(mode)
    try:
        yield
    finally:
        stack.pop()


def metrics_enabled() -> bool:
    return obs_mode() != "off"


def tracing_enabled() -> bool:
    return obs_mode() == "trace"


def default_journal_path() -> Optional[str]:
    """The journal file named by ``REPRO_OBS_JOURNAL``, if any."""
    return os.environ.get(JOURNAL_ENV) or None


from .metrics import (  # noqa: E402 - the mode machinery must exist first
    DEFAULT_BUCKETS, METRICS_SCHEMA_VERSION, Counter, Gauge, Histogram,
    MetricsRegistry, StageStats, merge_snapshot, quantile_from_buckets,
    render_prometheus, snapshot_quantile, snapshot_series, snapshot_value,
)
from .trace import (  # noqa: E402
    NULL_SPAN, Span, Tracer, global_tracer, reset_global_tracer,
)
from .journal import (  # noqa: E402
    JOURNAL_SCHEMA_VERSION, JournalEncodeError, ObsJournal, journal_spans,
    latest_metrics, read_journal, render_trace_summary, render_waterfall,
    span_depth,
)

__all__ = [
    "OBS_MODES", "OBS_ENV", "JOURNAL_ENV",
    "obs_mode", "set_obs_mode", "obs_override", "validate_obs_mode",
    "metrics_enabled", "tracing_enabled", "default_journal_path",
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "StageStats",
    "DEFAULT_BUCKETS", "METRICS_SCHEMA_VERSION",
    "merge_snapshot", "quantile_from_buckets", "render_prometheus",
    "snapshot_quantile", "snapshot_series", "snapshot_value",
    "Span", "Tracer", "NULL_SPAN", "global_tracer", "reset_global_tracer",
    "ObsJournal", "JOURNAL_SCHEMA_VERSION", "JournalEncodeError",
    "read_journal", "journal_spans", "latest_metrics", "render_waterfall",
    "render_trace_summary", "span_depth",
]
