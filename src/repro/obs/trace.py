"""Zero-dependency span tracer with cross-process stitching.

A :class:`Span` is one timed unit of work: monotonic-clock duration,
wall-clock start (so spans from different processes order on a shared
axis), a ``trace_id`` shared by everything one request caused, and a
``parent_id`` forming the tree.  The :class:`Tracer` keeps a per-thread
context stack, so nested ``with tracer.span(...)`` blocks parent
automatically, and :meth:`Tracer.adopt` grafts local spans under a
remote parent — that is how one ``trace_id`` travels client → daemon →
worker → pipeline stage over the framed wire protocol.

Finished spans collect in a bounded per-trace buffer; workers drain
theirs with :meth:`Tracer.take` and ship the dicts back inside result
frames, the daemon :meth:`Tracer.ingest`\\ s them, and the stitched tree
lands in the :mod:`repro.obs.journal` manifest.

When the observability mode is not ``trace`` (see :mod:`repro.obs`),
:meth:`Tracer.span` yields a shared no-op span and records nothing —
the ``off`` path is one mode check per call.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import OrderedDict
from typing import Dict, Iterator, List, Mapping, Optional

from . import tracing_enabled


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class Span:
    """One timed, attributed unit of work inside a trace."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_ts",
                 "seconds", "status", "attrs", "_start_monotonic")

    def __init__(self, name: str, trace_id: str, span_id: str,
                 parent_id: Optional[str] = None,
                 attrs: Optional[Dict[str, object]] = None) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ts = time.time()
        self._start_monotonic = time.monotonic()
        self.seconds = 0.0
        self.status = "ok"
        self.attrs: Dict[str, object] = dict(attrs or {})

    def note(self, **attrs: object) -> None:
        """Attach attributes to the span (no-op on the null span)."""
        self.attrs.update(attrs)

    def finish(self) -> None:
        self.seconds = time.monotonic() - self._start_monotonic

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "trace_id": self.trace_id,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "start_ts": self.start_ts,
                "seconds": round(self.seconds, 9),
                "status": self.status, "attrs": dict(self.attrs)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, trace={self.trace_id[:8]}, "
                f"span={self.span_id[:8]}, parent="
                f"{(self.parent_id or '')[:8] or None})")


class _NullSpan:
    """The shared do-nothing span yielded when tracing is off."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    status = "ok"

    def note(self, **attrs: object) -> None:
        pass


NULL_SPAN = _NullSpan()


class _RemoteContext:
    """A context-stack entry standing in for a span in another process."""

    __slots__ = ("trace_id", "span_id")

    def __init__(self, trace_id: str, span_id: str) -> None:
        self.trace_id = trace_id
        self.span_id = span_id


class Tracer:
    """Thread-aware span factory + bounded per-trace collector."""

    def __init__(self, max_traces: int = 256,
                 max_spans_per_trace: int = 4096) -> None:
        self.max_traces = max_traces
        self.max_spans_per_trace = max_spans_per_trace
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: trace_id -> finished span dicts, LRU-bounded.
        self._traces: "OrderedDict[str, List[Dict[str, object]]]" = \
            OrderedDict()

    # ------------------------------------------------------------------
    # Context plumbing.
    # ------------------------------------------------------------------
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def current_context(self) -> Optional[Dict[str, str]]:
        """``{"trace_id", "span_id"}`` of the active span, or None."""
        stack = self._stack()
        if not stack:
            return None
        top = stack[-1]
        return {"trace_id": top.trace_id, "span_id": top.span_id}

    @contextlib.contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[object]:
        """Open a child span of the current context (or a new root)."""
        if not tracing_enabled():
            yield NULL_SPAN
            return
        stack = self._stack()
        parent = stack[-1] if stack else None
        trace_id = parent.trace_id if parent else _new_id(16)
        span = Span(name, trace_id, _new_id(8),
                    parent_id=parent.span_id if parent else None,
                    attrs=attrs or None)
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            span.status = "error"
            span.attrs.setdefault("error", f"{type(exc).__name__}: {exc}")
            raise
        finally:
            stack.pop()
            span.finish()
            self._record(span.to_dict())

    @contextlib.contextmanager
    def adopt(self, trace_id: str, span_id: str) -> Iterator[None]:
        """Make spans opened inside children of a remote span."""
        if not trace_id:
            yield
            return
        stack = self._stack()
        stack.append(_RemoteContext(str(trace_id), str(span_id or "")))
        try:
            yield
        finally:
            stack.pop()

    # ------------------------------------------------------------------
    # The collector.
    # ------------------------------------------------------------------
    def _record(self, span_dict: Dict[str, object]) -> None:
        trace_id = str(span_dict.get("trace_id") or "")
        if not trace_id:
            return
        with self._lock:
            spans = self._traces.get(trace_id)
            if spans is None:
                spans = self._traces[trace_id] = []
            if len(spans) < self.max_spans_per_trace:
                spans.append(span_dict)
            self._traces.move_to_end(trace_id)
            while len(self._traces) > self.max_traces:
                self._traces.popitem(last=False)

    def ingest(self, spans: Optional[List[Mapping[str, object]]]) -> int:
        """Adopt foreign span dicts (worker results, client stitching)."""
        count = 0
        for span_dict in spans or []:
            if not isinstance(span_dict, Mapping):
                continue
            data = dict(span_dict)
            trace_id = str(data.get("trace_id") or "")
            span_id = str(data.get("span_id") or "")
            if not trace_id or not span_id:
                continue
            with self._lock:
                existing = self._traces.get(trace_id, [])
                if any(s.get("span_id") == span_id for s in existing):
                    continue
            self._record(data)
            count += 1
        return count

    def spans_for(self, trace_id: str) -> List[Dict[str, object]]:
        """Finished spans of ``trace_id`` collected so far (copies)."""
        with self._lock:
            return [dict(span) for span in self._traces.get(trace_id, [])]

    def take(self, trace_id: str) -> List[Dict[str, object]]:
        """Drain and return the finished spans of ``trace_id``."""
        with self._lock:
            return list(self._traces.pop(trace_id, []))

    def trace_ids(self) -> List[str]:
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


#: the process-wide tracer every instrumented layer shares.
_GLOBAL_TRACER = Tracer()


def global_tracer() -> Tracer:
    """The process-wide tracer (workers, daemon, sessions share it)."""
    return _GLOBAL_TRACER


def reset_global_tracer() -> None:
    """Drop collected spans and contexts (tests and benchmarks)."""
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = Tracer()
