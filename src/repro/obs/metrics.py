"""Typed metrics: counters, gauges, fixed-bucket histograms, one registry.

The registry is the single source of truth for every counter the system
used to keep ad hoc: the artifact store's per-stage hit/miss/eviction
counts, the code cache's pressure counters, request/engine latencies,
the daemon's queue economics.  Three things make it fleet-friendly:

* **snapshots** — :meth:`MetricsRegistry.snapshot` reduces the registry
  to a plain-JSON list, so worker processes can ship their counters to
  the daemon inside existing result frames;
* **merging** — :func:`merge_snapshot` adds counters and histograms
  across snapshots (gauges take the incoming value), which is how the
  daemon aggregates fleet-wide cache economics;
* **Prometheus text** — :func:`render_prometheus` turns any snapshot
  into the text exposition format, for ``python -m repro stats`` and
  scrape endpoints.

:class:`StageStats` is the compatibility view: the attribute surface the
artifact store has always exposed (``stats.hits += 1`` keeps working),
backed by registry counters labelled by stage — mutate the view or read
the registry, it is the same number.

Zero dependencies; everything is plain stdlib and thread-safe.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

#: snapshot wire-format version; bump on breaking change.
METRICS_SCHEMA_VERSION = 1

#: default histogram bucket upper bounds (seconds): tuned for the span
#: of one cache lookup (~µs) up to a cold population sweep (~minutes).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (resettable only via the registry)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Absolute write — exists for the compatibility views
        (``stats.hits = 0`` style resets), not for new code."""
        with self._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, heartbeat lag)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (per-bucket counts + sum + count).

    Buckets are upper bounds; an implicit ``+Inf`` bucket catches the
    tail.  Counts are stored per bucket (non-cumulative); renderers
    accumulate for the Prometheus ``le`` convention.
    """

    __slots__ = ("name", "labels", "bounds", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = tuple(sorted(float(b)
                                                      for b in buckets))
        if not self.bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def _bucket_index(self, value: float) -> int:
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def observe(self, value: float) -> None:
        index = self._bucket_index(float(value))
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Interpolated quantile estimate from the bucket counts."""
        return quantile_from_buckets(self.bounds, self.counts(), q)


def quantile_from_buckets(bounds: Sequence[float], counts: Sequence[int],
                          q: float) -> float:
    """Linear-interpolation quantile over fixed buckets.

    ``counts`` are per-bucket (non-cumulative) with the last entry the
    ``+Inf`` bucket; values in the overflow bucket clamp to the highest
    finite bound (the honest answer fixed buckets can give).
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], not {q}")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = q * total
    seen = 0.0
    for index, count in enumerate(counts):
        if count == 0:
            continue
        if seen + count >= rank:
            if index >= len(bounds):       # the +Inf bucket
                return float(bounds[-1])
            lower = 0.0 if index == 0 else float(bounds[index - 1])
            upper = float(bounds[index])
            fraction = (rank - seen) / count
            return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        seen += count
    return float(bounds[-1])


class MetricsRegistry:
    """Get-or-create home of every metric, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[tuple, Counter] = {}
        self._gauges: Dict[tuple, Gauge] = {}
        self._histograms: Dict[tuple, Histogram] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str,
                labels: Optional[Mapping[str, str]] = None,
                help: str = "") -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter(name, key[1])
            if help:
                self._help.setdefault(name, help)
            return metric

    def gauge(self, name: str,
              labels: Optional[Mapping[str, str]] = None,
              help: str = "") -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge(name, key[1])
            if help:
                self._help.setdefault(name, help)
            return metric

    def histogram(self, name: str,
                  labels: Optional[Mapping[str, str]] = None,
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  help: str = "") -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(name, key[1],
                                                           buckets=buckets)
            if help:
                self._help.setdefault(name, help)
            return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-JSON reduction of every metric (cumulative values)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
            help_texts = dict(self._help)
        series: List[Dict[str, object]] = []
        for metric in counters:
            series.append({"type": "counter", "name": metric.name,
                           "labels": dict(metric.labels),
                           "value": metric.value})
        for metric in gauges:
            series.append({"type": "gauge", "name": metric.name,
                           "labels": dict(metric.labels),
                           "value": metric.value})
        for metric in histograms:
            series.append({"type": "histogram", "name": metric.name,
                           "labels": dict(metric.labels),
                           "le": list(metric.bounds),
                           "counts": metric.counts(),
                           "sum": metric.sum, "count": metric.count})
        return {"schema_version": METRICS_SCHEMA_VERSION,
                "help": help_texts, "series": series}

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero metrics in place (views keep pointing at live objects)."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for metric in counters:
            if prefix is None or metric.name.startswith(prefix):
                metric.set(0.0)
        for metric in gauges:
            if prefix is None or metric.name.startswith(prefix):
                metric.set(0.0)
        for metric in histograms:
            if prefix is None or metric.name.startswith(prefix):
                with metric._lock:
                    metric._counts = [0] * (len(metric.bounds) + 1)
                    metric._sum = 0.0
                    metric._count = 0

    def merge(self, snapshot: Mapping[str, object]) -> None:
        """Fold a foreign snapshot into this registry (counters add)."""
        for entry in snapshot.get("series", []):
            labels = dict(entry.get("labels", {}))
            kind = entry.get("type")
            if kind == "counter":
                self.counter(entry["name"], labels).inc(
                    float(entry.get("value", 0.0)))
            elif kind == "gauge":
                self.gauge(entry["name"], labels).set(
                    float(entry.get("value", 0.0)))
            elif kind == "histogram":
                metric = self.histogram(entry["name"], labels,
                                        buckets=entry.get("le",
                                                          DEFAULT_BUCKETS))
                counts = list(entry.get("counts", []))
                if list(metric.bounds) != [float(b)
                                           for b in entry.get("le", [])]:
                    continue  # incompatible bucket layout; skip honestly
                with metric._lock:
                    for index, count in enumerate(counts):
                        metric._counts[index] += int(count)
                    metric._sum += float(entry.get("sum", 0.0))
                    metric._count += int(entry.get("count", 0))


def merge_snapshot(base: Optional[Mapping[str, object]],
                   *others: Mapping[str, object]) -> Dict[str, object]:
    """Merge snapshots: counters/histograms add, gauges last-wins."""
    merged = MetricsRegistry()
    for snapshot in (base, *others):
        if snapshot:
            merged.merge(snapshot)
    return merged.snapshot()


def snapshot_series(snapshot: Mapping[str, object], name: str,
                    **labels: str) -> List[Dict[str, object]]:
    """Series of ``name`` whose labels include every ``labels`` item."""
    wanted = {str(k): str(v) for k, v in labels.items()}
    out = []
    for entry in snapshot.get("series", []):
        if entry.get("name") != name:
            continue
        have = {str(k): str(v)
                for k, v in dict(entry.get("labels", {})).items()}
        if all(have.get(k) == v for k, v in wanted.items()):
            out.append(entry)
    return out


def snapshot_value(snapshot: Mapping[str, object], name: str,
                   **labels: str) -> float:
    """Sum of a counter/gauge family filtered by ``labels``."""
    return sum(float(entry.get("value", 0.0))
               for entry in snapshot_series(snapshot, name, **labels))


def snapshot_quantile(snapshot: Mapping[str, object], name: str, q: float,
                      **labels: str) -> float:
    """Quantile over the (merged) histogram series named ``name``."""
    entries = [e for e in snapshot_series(snapshot, name, **labels)
               if e.get("type") == "histogram"]
    if not entries:
        return 0.0
    bounds = [float(b) for b in entries[0].get("le", [])]
    counts = [0] * (len(bounds) + 1)
    for entry in entries:
        if [float(b) for b in entry.get("le", [])] != bounds:
            continue
        for index, count in enumerate(entry.get("counts", [])):
            counts[index] += int(count)
    return quantile_from_buckets(bounds, counts, q)


# ----------------------------------------------------------------------
# Prometheus text exposition.
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(labels: Mapping[str, str],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Mapping[str, object],
                      prefix: str = "repro_") -> str:
    """Render a snapshot as Prometheus text exposition format 0.0.4."""
    help_texts = dict(snapshot.get("help", {}))
    by_name: "Dict[Tuple[str, str], List[Dict[str, object]]]" = {}
    for entry in snapshot.get("series", []):
        by_name.setdefault((str(entry["name"]), str(entry["type"])),
                           []).append(entry)
    lines: List[str] = []
    for (name, kind), entries in sorted(by_name.items()):
        full = prefix + name
        help_text = help_texts.get(name, name.replace("_", " "))
        lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
        for entry in entries:
            labels = dict(entry.get("labels", {}))
            if kind in ("counter", "gauge"):
                lines.append(f"{full}{_format_labels(labels)} "
                             f"{_format_value(float(entry['value']))}")
                continue
            bounds = [float(b) for b in entry.get("le", [])]
            counts = list(entry.get("counts", []))
            cumulative = 0
            for bound, count in zip(bounds, counts):
                cumulative += int(count)
                le = _format_value(bound)
                lines.append(f"{full}_bucket"
                             f"{_format_labels(labels, ('le', le))} "
                             f"{cumulative}")
            cumulative += int(counts[-1]) if len(counts) > len(bounds) else 0
            lines.append(f"{full}_bucket"
                         f"{_format_labels(labels, ('le', '+Inf'))} "
                         f"{cumulative}")
            lines.append(f"{full}_sum{_format_labels(labels)} "
                         f"{_format_value(float(entry.get('sum', 0.0)))}")
            lines.append(f"{full}_count{_format_labels(labels)} "
                         f"{int(entry.get('count', 0))}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# The per-stage store-counter view.
# ----------------------------------------------------------------------

#: integer stage counters, in the order ``StageStats.as_dict`` reports.
STAGE_COUNT_FIELDS = ("hits", "disk_hits", "misses", "puts", "evictions",
                      "disk_evictions", "corrupt")
#: wall-clock stage counters (seconds).
STAGE_TIME_FIELDS = ("seconds_built", "seconds_saved")

_STAGE_HELP = {
    "store_hits": "memory-layer artifact store hits",
    "store_disk_hits": "disk-layer artifact store hits",
    "store_misses": "artifact store misses",
    "store_puts": "artifacts inserted into the store",
    "store_evictions": "memory-layer LRU evictions",
    "store_disk_evictions": "disk entries dropped by size-budget sweeps",
    "store_corrupt": "disk entries quarantined on fingerprint mismatch",
    "store_seconds_built": "wall-clock seconds spent building on misses",
    "store_seconds_saved": "build seconds avoided by serving hits",
}


class StageStats:
    """Hit/miss counters for one stage — a view over registry counters.

    Keeps the exact attribute surface of the old dataclass (``hits``,
    ``misses``, ... readable and assignable, ``hit_rate``, ``as_dict``)
    while the numbers live in a :class:`MetricsRegistry` as
    ``store_<field>{stage=...}`` counters — one source of truth shared
    by the store, the code cache mirror, ``Session.stats()`` and the
    Prometheus export.
    """

    __slots__ = ("stage", "_counters")

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 stage: str = "") -> None:
        if registry is None:
            registry = MetricsRegistry()
        self.stage = stage
        labels = {"stage": stage}
        self._counters = {
            name: registry.counter(f"store_{name}", labels,
                                   help=_STAGE_HELP[f"store_{name}"])
            for name in STAGE_COUNT_FIELDS + STAGE_TIME_FIELDS
        }

    # Attribute surface of the old dataclass -------------------------------
    def __getattr__(self, name: str):
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            value = counters[name].value
            return value if name in STAGE_TIME_FIELDS else int(value)
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in StageStats.__slots__:
            object.__setattr__(self, name, value)
            return
        counters = object.__getattribute__(self, "_counters")
        if name in counters:
            counters[name].set(float(value))
            return
        raise AttributeError(f"StageStats has no counter {name!r}")

    # ----------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return 0.0 if lookups == 0 else (self.hits + self.disk_hits) / lookups

    def as_dict(self) -> Dict[str, object]:
        return {"hits": self.hits, "disk_hits": self.disk_hits,
                "misses": self.misses, "puts": self.puts,
                "evictions": self.evictions,
                "disk_evictions": self.disk_evictions,
                "corrupt": self.corrupt,
                "hit_rate": round(self.hit_rate, 4),
                "seconds_built": round(self.seconds_built, 6),
                "seconds_saved": round(self.seconds_saved, 6)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageStats({self.stage!r}, {self.as_dict()!r})"
