"""Run manifests: provenance-complete JSONL event records.

An :class:`ObsJournal` is an append-only ``.jsonl`` file of manifest
events.  Each event ties one traced request to everything needed to
account for (and eventually replay) it: the request JSON, the stage
fingerprints from its provenance, the engine/fidelity that served it,
the stitched span tree, and a metrics snapshot at completion time.
Sessions journal their root requests; the daemon journals every job it
finishes (plus ``spans`` events for client-side spans stitched in after
the fact).

``python -m repro inspect <trace_id>`` reads a journal (or asks a live
daemon) and renders the trace as a waterfall — see
:func:`render_waterfall` / :func:`render_trace_summary`.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, Iterable, List, Mapping, Optional

#: journal event format version; bump on breaking change.
JOURNAL_SCHEMA_VERSION = 1


class JournalEncodeError(ValueError):
    """An event holds values that cannot round-trip through JSON.

    Raised instead of silently stringifying (the old ``default=str``
    behaviour corrupted journaled requests: a stringified payload looks
    journaled but fails — or worse, silently drifts — through
    ``Request.from_dict`` on replay).
    """


def _canonical(value, path: str = "event"):
    """Strictly reduce ``value`` to JSON-round-trippable data.

    Mirrors the ``_plain`` conversion of :mod:`repro.api.requests`
    (``to_dict`` objects, tuples to lists) but *raises*
    :class:`JournalEncodeError` — naming the offending path — for
    anything that would not survive ``json.loads(json.dumps(...))``
    unchanged.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise JournalEncodeError(
                f"{path}: non-finite float {value!r} does not round-trip "
                f"through strict JSON")
        return value
    if isinstance(value, Mapping):
        out = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise JournalEncodeError(
                    f"{path}: mapping key {key!r} is not a string (JSON "
                    f"would coerce it and break the round trip)")
            out[key] = _canonical(item, f"{path}.{key}")
        return out
    if isinstance(value, (list, tuple)):
        return [_canonical(item, f"{path}[{index}]")
                for index, item in enumerate(value)]
    if hasattr(value, "to_dict"):
        return _canonical(value.to_dict(), path)
    raise JournalEncodeError(
        f"{path}: {type(value).__name__} is not JSON-serializable")


class ObsJournal:
    """Append-only JSONL sink of manifest events (thread-safe)."""

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()

    def write(self, event: Mapping[str, object]) -> None:
        """Append one event; raises :class:`JournalEncodeError` when the
        event would not round-trip bit-identically through JSON."""
        line = json.dumps(_canonical(dict(event)), sort_keys=True)
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    def manifest(self, *, kind: str, trace_id: str, source: str,
                 request: Optional[Mapping[str, object]] = None,
                 provenance: Optional[Mapping[str, object]] = None,
                 spans: Optional[List[Mapping[str, object]]] = None,
                 metrics: Optional[Mapping[str, object]] = None,
                 extra: Optional[Mapping[str, object]] = None) -> None:
        """Append one provenance-complete manifest event.

        Unlike :meth:`write`, a manifest append never raises on bad
        payloads: any section that is not JSON-round-trippable is
        dropped and the event is flagged ``degraded`` (with the
        offending paths), so replay tooling can refuse it explicitly
        instead of re-executing a silently corrupted request.
        """
        event: Dict[str, object] = {
            "event": "manifest", "schema_version": JOURNAL_SCHEMA_VERSION,
            "ts": time.time(), "kind": kind, "trace_id": trace_id,
            "source": source,
        }
        if request is not None:
            event["request"] = dict(request)
        if provenance is not None:
            event["provenance"] = dict(provenance)
        if spans is not None:
            event["spans"] = [dict(span) for span in spans]
        if metrics is not None:
            event["metrics"] = dict(metrics)
        if extra:
            event.update(dict(extra))
        degraded: List[str] = []
        safe: Dict[str, object] = {}
        for key, value in event.items():
            try:
                safe[key] = _canonical(value, key)
            except JournalEncodeError as exc:
                degraded.append(str(exc))
        if degraded:
            safe["degraded"] = degraded
        self.write(safe)

    def spans(self, trace_id: str,
              spans: List[Mapping[str, object]], source: str) -> None:
        """Append late-arriving spans for an already-journaled trace."""
        self.write({"event": "spans",
                    "schema_version": JOURNAL_SCHEMA_VERSION,
                    "ts": time.time(), "trace_id": trace_id,
                    "source": source,
                    "spans": [dict(span) for span in spans]})


def read_journal(path: str,
                 trace_id: Optional[str] = None) -> List[Dict[str, object]]:
    """Events from a journal file, optionally filtered by trace id.

    Torn/corrupt lines are skipped (the journal is append-only and
    best-effort by design).
    """
    events: List[Dict[str, object]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if not isinstance(event, dict):
                    continue
                if trace_id is not None and event.get("trace_id") != trace_id:
                    continue
                events.append(event)
    except OSError:
        return []
    return events


def journal_spans(events: Iterable[Mapping[str, object]]
                  ) -> List[Dict[str, object]]:
    """Union of the spans of every event, deduplicated by span id.

    Spans *without* a span id cannot be identified, so they are all
    kept — deduplicating them would collapse every id-less span onto
    the first one seen.
    """
    seen = set()
    spans: List[Dict[str, object]] = []
    for event in events:
        for span in event.get("spans", []) or []:
            span_id = span.get("span_id")
            if span_id is not None:
                if span_id in seen:
                    continue
                seen.add(span_id)
            spans.append(dict(span))
    return spans


def latest_metrics(events: Iterable[Mapping[str, object]]
                   ) -> Optional[Dict[str, object]]:
    """The metrics snapshot of the newest manifest that carries one.

    Snapshots are cumulative, so the latest one *is* the aggregate —
    merging successive snapshots from one source would double count.

    Events whose ``ts`` does not parse as a finite number are skipped
    (matching :func:`read_journal`'s tolerance of torn/corrupt lines);
    ``ts`` ties break deterministically toward the later event in
    journal order.
    """
    newest: Optional[Dict[str, object]] = None
    best_key = None
    for index, event in enumerate(events):
        metrics = event.get("metrics")
        if not (isinstance(metrics, dict) and metrics.get("series")):
            continue
        try:
            ts = float(event.get("ts", 0.0))
        except (TypeError, ValueError):
            continue
        if ts != ts:  # NaN never orders; treat as unparseable
            continue
        key = (ts, index)
        if best_key is None or key >= best_key:
            newest, best_key = dict(metrics), key
    return newest


# ----------------------------------------------------------------------
# Rendering.
# ----------------------------------------------------------------------

def _span_tree(spans: List[Mapping[str, object]]):
    by_id = {span.get("span_id"): span for span in spans}
    children: Dict[Optional[str], List[Mapping[str, object]]] = {}
    roots: List[Mapping[str, object]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)  # orphan parents live in another journal
    ordering = lambda s: float(s.get("start_ts", 0.0))  # noqa: E731
    roots.sort(key=ordering)
    for siblings in children.values():
        siblings.sort(key=ordering)
    return roots, children


def span_depth(spans: List[Mapping[str, object]]) -> int:
    """Maximum parent-chain depth of the span set (1 = roots only)."""
    roots, children = _span_tree(spans)

    def depth(span, level: int) -> int:
        kids = children.get(span.get("span_id"), [])
        if not kids:
            return level
        return max(depth(kid, level + 1) for kid in kids)

    return max((depth(root, 1) for root in roots), default=0)


def render_waterfall(spans: List[Mapping[str, object]],
                     width: int = 32) -> str:
    """ASCII waterfall of a span tree (wall-clock aligned)."""
    if not spans:
        return "(no spans)"
    roots, children = _span_tree(spans)
    t0 = min(float(s.get("start_ts", 0.0)) for s in spans)
    t1 = max(float(s.get("start_ts", 0.0)) + float(s.get("seconds", 0.0))
             for s in spans)
    total = max(t1 - t0, 1e-9)
    name_width = max(len(str(s.get("name", ""))) + 2 * _level(s, spans)
                     for s in spans) + 2

    lines = [f"trace {spans[0].get('trace_id', '')}  "
             f"({len(spans)} spans, {total * 1e3:.1f} ms)"]

    def emit(span, level: int) -> None:
        start = float(span.get("start_ts", 0.0)) - t0
        seconds = float(span.get("seconds", 0.0))
        left = int(width * start / total)
        bar = max(1, int(width * seconds / total))
        bar = min(bar, width - left) or 1
        lane = " " * left + "█" * bar
        label = "  " * level + str(span.get("name", "?"))
        status = "" if span.get("status") == "ok" else "  !" + str(
            span.get("status"))
        lines.append(f"  {label:<{name_width}} |{lane:<{width}}| "
                     f"{seconds * 1e3:9.2f} ms{status}")
        for kid in children.get(span.get("span_id"), []):
            emit(kid, level + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)


def _level(span, spans) -> int:
    by_id = {s.get("span_id"): s for s in spans}
    level, current, hops = 0, span, 0
    while current is not None and hops < 64:
        parent = by_id.get(current.get("parent_id"))
        if parent is None:
            break
        level += 1
        current = parent
        hops += 1
    return level


def render_trace_summary(events: List[Mapping[str, object]],
                         spans: List[Mapping[str, object]]) -> str:
    """One-paragraph summary table for ``python -m repro inspect``."""
    lines: List[str] = []
    manifest = next((e for e in events if e.get("event") == "manifest"), None)
    if manifest is not None:
        request = manifest.get("request") or {}
        provenance = manifest.get("provenance") or {}
        lines.append(f"kind      : {manifest.get('kind', '?')}")
        lines.append(f"source    : {manifest.get('source', '?')}")
        if request:
            lines.append(f"request   : "
                         f"{json.dumps(request, sort_keys=True)[:100]}")
        if provenance:
            lines.append(f"engine    : {provenance.get('engine', '')!r}  "
                         f"fidelity: {provenance.get('fidelity', '')!r}  "
                         f"worker: {provenance.get('worker', '')!r}")
            stages = provenance.get("stages") or []
            hits = sum(1 for s in stages if s.get("hit"))
            if stages:
                lines.append(f"stages    : {len(stages)} "
                             f"({hits} hits / {len(stages) - hits} misses)")
    by_name: Dict[str, List[float]] = {}
    for span in spans:
        by_name.setdefault(str(span.get("name", "?")), []).append(
            float(span.get("seconds", 0.0)))
    if by_name:
        lines.append(f"spans     : {len(spans)} across {len(by_name)} "
                     f"names, depth {span_depth(spans)}")
        for name in sorted(by_name, key=lambda n: -sum(by_name[n]))[:8]:
            samples = by_name[name]
            lines.append(f"  {name:<28} n={len(samples):<4} "
                         f"total {sum(samples) * 1e3:9.2f} ms")
    return "\n".join(lines) if lines else "(no manifest)"
