"""Machine-independent optimizations for the repro IR."""

from .passes import (
    algebraic_simplify, constant_fold, copy_propagate, dead_code_elimination,
    if_convert, inline_small_functions, local_cse, simplify_cfg, unroll_loops,
)
from .pipeline import FixpointRun, PassManager, PassStatistics, optimize

__all__ = [
    "algebraic_simplify", "constant_fold", "copy_propagate",
    "dead_code_elimination", "if_convert", "inline_small_functions",
    "local_cse", "simplify_cfg", "unroll_loops",
    "FixpointRun", "PassManager", "PassStatistics", "optimize",
]
