"""The optimization pipeline and pass manager.

The pass manager runs each pass, optionally re-verifying the IR after
every pass (the default in tests), and iterates the cheap cleanup passes
to a fixed point.  Optimization levels follow the usual convention:

* ``O0`` — verification only,
* ``O1`` — local cleanups (copy propagation, folding, CSE, DCE, CFG
  simplification),
* ``O2`` — O1 plus inlining and if-conversion,
* ``O3`` — O2 plus loop unrolling (the ILP-exposing configuration the
  VLIW experiments use).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir import Function, Module, assert_valid
from . import passes


@dataclass
class FixpointRun:
    """One cleanup-to-fixpoint loop: per-iteration change counts.

    ``iterations[i]`` is the total number of changes all cleanup passes
    made in iteration ``i``; a converged run ends with a ``0`` entry (the
    iteration that proved the fixpoint).  ``converged`` is False when the
    loop hit its iteration cap while still making changes — the case the
    old single-counter reporting silently swallowed.
    """

    label: str
    iterations: List[int] = field(default_factory=list)
    converged: bool = True

    @property
    def rounds(self) -> int:
        return len(self.iterations)

    @property
    def total_changes(self) -> int:
        return sum(self.iterations)


@dataclass
class PassStatistics:
    """Per-pass change counts accumulated over a pipeline run."""

    changes: Dict[str, int] = field(default_factory=dict)
    #: one record per cleanup-to-fixpoint loop, in execution order.
    fixpoint_runs: List[FixpointRun] = field(default_factory=list)

    def record(self, name: str, count: int) -> None:
        self.changes[name] = self.changes.get(name, 0) + count

    def total(self) -> int:
        return sum(self.changes.values())

    @property
    def cap_hits(self) -> List[FixpointRun]:
        """Fixpoint loops that were stopped by the iteration cap."""
        return [run for run in self.fixpoint_runs if not run.converged]


#: the cheap cleanup passes iterated to a fixed point between the
#: structural phases of the pipeline.
CLEANUP_PASSES = (
    ("copy_propagate", passes.copy_propagate),
    ("constant_fold", passes.constant_fold),
    ("algebraic_simplify", passes.algebraic_simplify),
    ("local_cse", passes.local_cse),
    ("dead_code_elimination", passes.dead_code_elimination),
    ("simplify_cfg", passes.simplify_cfg),
)


class PassManager:
    """Runs function- and module-level passes with optional verification."""

    def __init__(self, verify: bool = True) -> None:
        self.verify = verify
        self.stats = PassStatistics()

    def run_function_pass(self, name: str, pass_fn: Callable[[Function], int],
                          module: Module) -> int:
        total = 0
        for function in module.functions.values():
            total += pass_fn(function)
        self.stats.record(name, total)
        if self.verify:
            assert_valid(module)
        return total

    def run_module_pass(self, name: str, pass_fn: Callable[[Module], int],
                        module: Module) -> int:
        count = pass_fn(module)
        self.stats.record(name, count)
        if self.verify:
            assert_valid(module)
        return count

    def run_to_fixpoint(self, label: str, module: Module,
                        max_iterations: int = 10) -> FixpointRun:
        """Iterate the cleanup passes until no pass changes anything.

        Each iteration's change count is recorded separately in the
        returned :class:`FixpointRun` (also appended to
        ``stats.fixpoint_runs``); hitting ``max_iterations`` with changes
        still occurring marks the run unconverged and emits a
        :class:`RuntimeWarning`.
        """
        run = FixpointRun(label=label)
        for _ in range(max_iterations):
            changed = 0
            for name, pass_fn in CLEANUP_PASSES:
                changed += self.run_function_pass(name, pass_fn, module)
            run.iterations.append(changed)
            if changed == 0:
                break
        else:
            run.converged = False
            last = run.iterations[-1] if run.iterations else 0
            warnings.warn(
                f"cleanup fixpoint '{label}' hit its {max_iterations}-"
                f"iteration cap with {last} changes still occurring "
                f"(module {module.name})",
                RuntimeWarning, stacklevel=2)
        self.stats.fixpoint_runs.append(run)
        return run


def optimize(module: Module, level: int = 2, *, unroll_factor: int = 4,
             verify: bool = True) -> PassStatistics:
    """Run the standard optimization pipeline on ``module`` in place."""
    manager = PassManager(verify=verify)
    if level <= 0:
        if verify:
            assert_valid(module)
        return manager.stats

    manager.run_to_fixpoint("initial", module)

    if level >= 2:
        manager.run_module_pass(
            "inline_small_functions", passes.inline_small_functions, module
        )
        manager.run_to_fixpoint("post-inline", module)
        manager.run_function_pass("if_convert", passes.if_convert, module)
        manager.run_to_fixpoint("post-if-convert", module)

    if level >= 3 and unroll_factor >= 2:
        def unroll(function: Function) -> int:
            return passes.unroll_loops(function, factor=unroll_factor)

        # Repeated invocations unroll one loop at a time.
        for _ in range(8):
            if manager.run_function_pass("unroll_loops", unroll, module) == 0:
                break
        manager.run_to_fixpoint("post-unroll", module)

    return manager.stats
