"""The optimization pipeline and pass manager.

The pass manager runs each pass, optionally re-verifying the IR after
every pass (the default in tests), and iterates the cheap cleanup passes
to a fixed point.  Optimization levels follow the usual convention:

* ``O0`` — verification only,
* ``O1`` — local cleanups (copy propagation, folding, CSE, DCE, CFG
  simplification),
* ``O2`` — O1 plus inlining and if-conversion,
* ``O3`` — O2 plus loop unrolling (the ILP-exposing configuration the
  VLIW experiments use).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir import Function, Module, assert_valid
from . import passes


@dataclass
class PassStatistics:
    """Per-pass change counts accumulated over a pipeline run."""

    changes: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, count: int) -> None:
        self.changes[name] = self.changes.get(name, 0) + count

    def total(self) -> int:
        return sum(self.changes.values())


class PassManager:
    """Runs function- and module-level passes with optional verification."""

    def __init__(self, verify: bool = True) -> None:
        self.verify = verify
        self.stats = PassStatistics()

    def run_function_pass(self, name: str, pass_fn: Callable[[Function], int],
                          module: Module) -> int:
        total = 0
        for function in module.functions.values():
            total += pass_fn(function)
        self.stats.record(name, total)
        if self.verify:
            assert_valid(module)
        return total

    def run_module_pass(self, name: str, pass_fn: Callable[[Module], int],
                        module: Module) -> int:
        count = pass_fn(module)
        self.stats.record(name, count)
        if self.verify:
            assert_valid(module)
        return count


def _cleanup_to_fixpoint(manager: PassManager, module: Module,
                         max_iterations: int = 10) -> None:
    for _ in range(max_iterations):
        changed = 0
        changed += manager.run_function_pass("copy_propagate", passes.copy_propagate, module)
        changed += manager.run_function_pass("constant_fold", passes.constant_fold, module)
        changed += manager.run_function_pass("algebraic_simplify", passes.algebraic_simplify, module)
        changed += manager.run_function_pass("local_cse", passes.local_cse, module)
        changed += manager.run_function_pass("dead_code_elimination", passes.dead_code_elimination, module)
        changed += manager.run_function_pass("simplify_cfg", passes.simplify_cfg, module)
        if changed == 0:
            break


def optimize(module: Module, level: int = 2, *, unroll_factor: int = 4,
             verify: bool = True) -> PassStatistics:
    """Run the standard optimization pipeline on ``module`` in place."""
    manager = PassManager(verify=verify)
    if level <= 0:
        if verify:
            assert_valid(module)
        return manager.stats

    _cleanup_to_fixpoint(manager, module)

    if level >= 2:
        manager.run_module_pass(
            "inline_small_functions", passes.inline_small_functions, module
        )
        _cleanup_to_fixpoint(manager, module)
        manager.run_function_pass("if_convert", passes.if_convert, module)
        _cleanup_to_fixpoint(manager, module)

    if level >= 3 and unroll_factor >= 2:
        def unroll(function: Function) -> int:
            return passes.unroll_loops(function, factor=unroll_factor)

        # Repeated invocations unroll one loop at a time.
        for _ in range(8):
            if manager.run_function_pass("unroll_loops", unroll, module) == 0:
                break
        _cleanup_to_fixpoint(manager, module)

    return manager.stats
