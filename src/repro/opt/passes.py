"""Machine-independent optimization passes.

All passes operate in place on non-SSA IR and return the number of changes
they made, so the pass manager can iterate to a fixed point.  They are
deliberately conservative: a pass only fires when it can prove (locally)
that the transformation preserves semantics, because every mis-compile
shows up later as a silent divergence between the functional reference
simulator and the cycle simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..ir import (
    BasicBlock, Constant, Function, Instruction, IntType, Module, Opcode,
    VirtualRegister, remove_unreachable_blocks,
)
from ..ir.instructions import move
from ..ir.types import FloatType, I1, I32


# ----------------------------------------------------------------------
# Constant folding and algebraic simplification.
# ----------------------------------------------------------------------

_INT_FOLDERS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 31),
    Opcode.MIN: min,
    Opcode.MAX: max,
    Opcode.CMPEQ: lambda a, b: int(a == b),
    Opcode.CMPNE: lambda a, b: int(a != b),
    Opcode.CMPLT: lambda a, b: int(a < b),
    Opcode.CMPLE: lambda a, b: int(a <= b),
    Opcode.CMPGT: lambda a, b: int(a > b),
    Opcode.CMPGE: lambda a, b: int(a >= b),
}


def _fold_int(inst: Instruction, lhs: int, rhs: int) -> Optional[int]:
    """Fold an integer binary op; returns None when folding is unsafe."""
    op = inst.opcode
    if op in _INT_FOLDERS:
        return _INT_FOLDERS[op](lhs, rhs)
    if op is Opcode.DIV:
        if rhs == 0:
            return None
        quotient = abs(lhs) // abs(rhs)
        return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
    if op is Opcode.REM:
        if rhs == 0:
            return None
        quotient = abs(lhs) // abs(rhs)
        signed_q = quotient if (lhs >= 0) == (rhs >= 0) else -quotient
        return lhs - signed_q * rhs
    if op is Opcode.SHR:
        return (lhs & 0xFFFFFFFF) >> (rhs & 31)
    if op is Opcode.SAR:
        return lhs >> (rhs & 31)
    return None


def constant_fold(function: Function) -> int:
    """Replace operations on constant operands with constant moves."""
    changes = 0
    for block in function.blocks:
        for inst in block.instructions:
            if inst.dest is None or inst.opcode is Opcode.MOV:
                continue
            ops = inst.operands
            if not ops or not all(isinstance(op, Constant) for op in ops):
                continue
            result = None
            result_type = inst.dest.type
            if inst.opcode in (Opcode.NEG, Opcode.NOT, Opcode.ABS):
                value = ops[0].value
                if isinstance(value, int):
                    result = {-value: None}  # placeholder; handled below
                    if inst.opcode is Opcode.NEG:
                        result = -value
                    elif inst.opcode is Opcode.NOT:
                        result = ~value
                    else:
                        result = abs(value)
            elif len(ops) == 2 and all(isinstance(o.value, int) for o in ops):
                result = _fold_int(inst, ops[0].value, ops[1].value)
            elif inst.opcode is Opcode.SELECT and isinstance(ops[0].value, int):
                result_const = ops[1] if ops[0].value else ops[2]
                inst.opcode = Opcode.MOV
                inst.operands = [result_const]
                changes += 1
                continue
            if result is None or not isinstance(result, int):
                continue
            if isinstance(result_type, IntType):
                result = result_type.wrap(result)
            inst.opcode = Opcode.MOV
            inst.operands = [Constant(result, result_type if isinstance(result_type, IntType) else I32)]
            changes += 1
    return changes


def _is_const(value, number: Optional[int] = None) -> bool:
    return (isinstance(value, Constant) and isinstance(value.value, int)
            and (number is None or value.value == number))


def _power_of_two(value) -> Optional[int]:
    if _is_const(value) and value.value > 0 and (value.value & (value.value - 1)) == 0:
        return value.value.bit_length() - 1
    return None


def algebraic_simplify(function: Function) -> int:
    """Apply identity/strength-reduction rewrites (x+0, x*1, x*2^k, ...)."""
    changes = 0
    for block in function.blocks:
        for inst in block.instructions:
            if inst.dest is None:
                continue
            op = inst.opcode
            ops = inst.operands
            new: Optional[Tuple[Opcode, list]] = None

            if op is Opcode.ADD:
                if _is_const(ops[1], 0):
                    new = (Opcode.MOV, [ops[0]])
                elif _is_const(ops[0], 0):
                    new = (Opcode.MOV, [ops[1]])
            elif op is Opcode.SUB:
                if _is_const(ops[1], 0):
                    new = (Opcode.MOV, [ops[0]])
            elif op is Opcode.MUL:
                if _is_const(ops[1], 0) or _is_const(ops[0], 0):
                    new = (Opcode.MOV, [Constant(0, I32)])
                elif _is_const(ops[1], 1):
                    new = (Opcode.MOV, [ops[0]])
                elif _is_const(ops[0], 1):
                    new = (Opcode.MOV, [ops[1]])
                else:
                    shift = _power_of_two(ops[1])
                    if shift is not None and shift > 0:
                        new = (Opcode.SHL, [ops[0], Constant(shift, I32)])
                    else:
                        shift = _power_of_two(ops[0])
                        if shift is not None and shift > 0:
                            new = (Opcode.SHL, [ops[1], Constant(shift, I32)])
            elif op in (Opcode.AND,):
                if _is_const(ops[1], 0) or _is_const(ops[0], 0):
                    new = (Opcode.MOV, [Constant(0, I32)])
            elif op in (Opcode.OR, Opcode.XOR):
                if _is_const(ops[1], 0):
                    new = (Opcode.MOV, [ops[0]])
                elif _is_const(ops[0], 0):
                    new = (Opcode.MOV, [ops[1]])
            elif op in (Opcode.SHL, Opcode.SHR, Opcode.SAR):
                if _is_const(ops[1], 0):
                    new = (Opcode.MOV, [ops[0]])
            elif op is Opcode.DIV:
                if _is_const(ops[1], 1):
                    new = (Opcode.MOV, [ops[0]])

            if new is not None:
                inst.opcode, inst.operands = new[0], list(new[1])
                changes += 1
    return changes


# ----------------------------------------------------------------------
# Local copy propagation and common-subexpression elimination.
# ----------------------------------------------------------------------

def copy_propagate(function: Function) -> int:
    """Within each block, forward-substitute ``x = mov y`` copies.

    Substitution stops as soon as either side of the copy is redefined,
    which keeps the transformation correct on non-SSA IR.
    """
    changes = 0
    for block in function.blocks:
        copies: Dict[int, object] = {}   # dest reg id -> source value
        for inst in block.instructions:
            # Use available copies.
            for i, operand in enumerate(inst.operands):
                if isinstance(operand, VirtualRegister) and operand.id in copies:
                    inst.operands[i] = copies[operand.id]
                    changes += 1
            # Kill copies whose source or destination is redefined.
            if inst.dest is not None:
                dead = [dst for dst, src in copies.items()
                        if dst == inst.dest.id
                        or (isinstance(src, VirtualRegister) and src.id == inst.dest.id)]
                for key in dead:
                    del copies[key]
            # Record new copy.
            if (inst.opcode is Opcode.MOV and inst.dest is not None
                    and (isinstance(inst.operands[0], (Constant, VirtualRegister)))):
                source = inst.operands[0]
                if not (isinstance(source, VirtualRegister) and source.id == inst.dest.id):
                    copies[inst.dest.id] = source
    return changes


def _expression_key(inst: Instruction):
    """A hashable key identifying the computation an instruction performs."""
    parts = [inst.opcode.value, inst.custom_op or ""]
    for op in inst.operands:
        if isinstance(op, VirtualRegister):
            parts.append(("reg", op.id))
        elif isinstance(op, Constant):
            parts.append(("const", op.value, str(op.type)))
        else:
            parts.append(("other", str(op)))
    return tuple(parts)


def local_cse(function: Function) -> int:
    """Eliminate repeated pure computations within each basic block."""
    changes = 0
    for block in function.blocks:
        available: Dict[tuple, VirtualRegister] = {}
        replacements: Dict[int, VirtualRegister] = {}
        for inst in block.instructions:
            # Apply pending replacements to operands first.
            for i, operand in enumerate(inst.operands):
                if isinstance(operand, VirtualRegister) and operand.id in replacements:
                    inst.operands[i] = replacements[operand.id]
                    changes += 1

            if inst.dest is None:
                continue
            killed_reg = inst.dest.id
            # Any expression reading or producing the redefined register dies.
            dead_keys = []
            for key, reg in available.items():
                if reg.id == killed_reg:
                    dead_keys.append(key)
                    continue
                for part in key:
                    if isinstance(part, tuple) and part[0] == "reg" and part[1] == killed_reg:
                        dead_keys.append(key)
                        break
            for key in dead_keys:
                del available[key]
            # Replacement chains through a redefined register also die.
            replacements = {
                k: v for k, v in replacements.items()
                if k != killed_reg and v.id != killed_reg
            }

            if not inst.is_pure() or inst.opcode is Opcode.MOV:
                continue
            key = _expression_key(inst)
            previous = available.get(key)
            if previous is not None:
                # Rewrite this instruction into a copy of the earlier result.
                inst.opcode = Opcode.MOV
                inst.operands = [previous]
                inst.custom_op = None
                changes += 1
            else:
                available[key] = inst.dest
    return changes


# ----------------------------------------------------------------------
# Dead code elimination.
# ----------------------------------------------------------------------

def dead_code_elimination(function: Function) -> int:
    """Remove pure instructions whose results are never read.

    A register is *live* if any instruction anywhere in the function reads
    it; because the IR is not SSA this is a conservative whole-function
    notion of liveness, applied iteratively.
    """
    removed = 0
    while True:
        used: Set[int] = set()
        for inst in function.instructions():
            for reg in inst.uses():
                used.add(reg.id)
        victims: List[Tuple[BasicBlock, Instruction]] = []
        for block in function.blocks:
            for inst in block.instructions:
                if inst.dest is None or not inst.is_pure():
                    continue
                if inst.dest.id not in used:
                    victims.append((block, inst))
        if not victims:
            break
        for block, inst in victims:
            block.remove(inst)
            removed += 1
    return removed


# ----------------------------------------------------------------------
# CFG simplification.
# ----------------------------------------------------------------------

def simplify_cfg(function: Function) -> int:
    """Remove unreachable blocks, thread trivial jumps, merge chains."""
    changes = remove_unreachable_blocks(function)

    # Thread jumps to blocks that only contain a single jump.
    def final_target(block: BasicBlock, seen: Set[str]) -> BasicBlock:
        while (len(block.instructions) == 1
               and block.instructions[0].opcode is Opcode.JUMP
               and block.name not in seen):
            seen.add(block.name)
            block = block.instructions[0].targets[0]
        return block

    for block in function.blocks:
        term = block.terminator
        if term is None:
            continue
        for i, target in enumerate(term.targets):
            threaded = final_target(target, {block.name})
            if threaded is not target:
                term.targets[i] = threaded
                changes += 1

    changes += remove_unreachable_blocks(function)

    # Merge a block into its unique predecessor when that predecessor's
    # only successor is this block.
    merged = True
    while merged:
        merged = False
        for block in list(function.blocks):
            if block is function.entry:
                continue
            preds = block.predecessors()
            if len(preds) != 1:
                continue
            pred = preds[0]
            term = pred.terminator
            if term is None or term.opcode is not Opcode.JUMP:
                continue
            if term.targets[0] is not block:
                continue
            pred.remove(term)
            for inst in list(block.instructions):
                block.remove(inst)
                pred.append(inst)
            function.remove_block(block)
            # Retarget any branches that pointed at the merged block.
            for other in function.blocks:
                other_term = other.terminator
                if other_term is None:
                    continue
                for i, target in enumerate(other_term.targets):
                    if target is block:
                        other_term.targets[i] = pred
            changes += 1
            merged = True
            break

    # Fold branches with constant conditions or identical targets.
    for block in function.blocks:
        term = block.terminator
        if term is None or term.opcode is not Opcode.BRANCH:
            continue
        cond = term.operands[0]
        if isinstance(cond, Constant):
            target = term.targets[0] if cond.value else term.targets[1]
            block.remove(term)
            block.append(Instruction(Opcode.JUMP, targets=[target]))
            changes += 1
        elif term.targets[0] is term.targets[1]:
            target = term.targets[0]
            block.remove(term)
            block.append(Instruction(Opcode.JUMP, targets=[target]))
            changes += 1

    changes += remove_unreachable_blocks(function)
    return changes


# ----------------------------------------------------------------------
# If-conversion.
# ----------------------------------------------------------------------

def _is_convertible_arm(block: BasicBlock, join: BasicBlock, max_ops: int) -> bool:
    """An arm may be if-converted if it is small, pure, and falls into join."""
    term = block.terminator
    if term is None or term.opcode is not Opcode.JUMP or term.targets[0] is not join:
        return False
    body = block.non_terminator_instructions()
    if len(body) > max_ops:
        return False
    for inst in body:
        if not inst.is_pure() or inst.dest is None:
            return False
    return True


def if_convert(function: Function, max_ops: int = 8) -> int:
    """Convert small branch hammocks into straight-line code with selects.

    Handles diamonds (``A -> B, C; B, C -> D``) and triangles
    (``A -> B, D; B -> D``) whose arms contain only pure register
    operations.  The transformation removes a branch (good for the VLIW's
    branch penalty) and, more importantly for this reproduction, merges the
    arms into one basic block so the ISE enumerator and the scheduler see a
    larger dataflow graph.
    """
    changes = 0
    converted = True
    while converted:
        converted = False
        for block in function.blocks:
            term = block.terminator
            if term is None or term.opcode is not Opcode.BRANCH:
                continue
            cond = term.operands[0]
            true_block, false_block = term.targets

            join: Optional[BasicBlock] = None
            arms: List[Optional[BasicBlock]] = [None, None]

            true_term = true_block.terminator
            false_term = false_block.terminator
            # Diamond: both arms jump to the same join block.
            if (true_block is not false_block
                    and len(true_block.predecessors()) == 1
                    and len(false_block.predecessors()) == 1
                    and true_term is not None and false_term is not None
                    and true_term.opcode is Opcode.JUMP
                    and false_term.opcode is Opcode.JUMP
                    and true_term.targets[0] is false_term.targets[0]):
                join = true_term.targets[0]
                if (_is_convertible_arm(true_block, join, max_ops)
                        and _is_convertible_arm(false_block, join, max_ops)):
                    arms = [true_block, false_block]
                else:
                    join = None
            # Triangle: the true arm falls through to the false target.
            if join is None:
                if (len(true_block.predecessors()) == 1
                        and _is_convertible_arm(true_block, false_block, max_ops)
                        and true_block is not false_block):
                    join = false_block
                    arms = [true_block, None]
                elif (len(false_block.predecessors()) == 1
                        and _is_convertible_arm(false_block, true_block, max_ops)
                        and true_block is not false_block):
                    join = true_block
                    arms = [None, false_block]
            if join is None:
                continue
            if len(join.predecessors()) != 2 and not (arms[0] is None or arms[1] is None):
                continue

            # Clone each arm with renamed destinations, tracking the final
            # value each original register holds along that path.
            def clone_arm(arm: Optional[BasicBlock]):
                final: Dict[int, object] = {}
                cloned: List[Instruction] = []
                if arm is None:
                    return cloned, final
                rename: Dict[int, VirtualRegister] = {}
                for inst in arm.non_terminator_instructions():
                    new_ops = []
                    for op in inst.operands:
                        if isinstance(op, VirtualRegister) and op.id in rename:
                            new_ops.append(rename[op.id])
                        else:
                            new_ops.append(op)
                    new_dest = VirtualRegister(inst.dest.type, inst.dest.name)
                    rename[inst.dest.id] = new_dest
                    final[inst.dest.id] = new_dest
                    clone = Instruction(inst.opcode, new_dest, new_ops,
                                        custom_op=inst.custom_op,
                                        alloc_type=inst.alloc_type)
                    cloned.append(clone)
                return cloned, final

            true_clone, true_final = clone_arm(arms[0])
            false_clone, false_final = clone_arm(arms[1])

            # Registers needing a merge: defined on either path *and* read
            # outside the arms (purely arm-local temporaries need no select,
            # and selecting them could read a register that has no
            # definition on the other path).
            used_outside: Set[int] = set()
            arm_set = {a for a in arms if a is not None}
            for other_block in function.blocks:
                if other_block in arm_set:
                    continue
                for inst in other_block.instructions:
                    for reg in inst.uses():
                        used_outside.add(reg.id)
            merged_regs = (set(true_final) | set(false_final)) & used_outside
            original_regs: Dict[int, VirtualRegister] = {}
            for arm in (arms[0], arms[1]):
                if arm is None:
                    continue
                for inst in arm.non_terminator_instructions():
                    original_regs[inst.dest.id] = inst.dest

            # Rewrite the branch block: drop the branch, inline both arms,
            # emit selects, then jump to the join block.
            block.remove(term)
            for inst in true_clone + false_clone:
                block.append(inst)
            for reg_id in sorted(merged_regs):
                original = original_regs[reg_id]
                true_value = true_final.get(reg_id, original)
                false_value = false_final.get(reg_id, original)
                select_inst = Instruction(
                    Opcode.SELECT, original, [cond, true_value, false_value]
                )
                block.append(select_inst)
            block.append(Instruction(Opcode.JUMP, targets=[join]))

            for arm in (arms[0], arms[1]):
                if arm is not None:
                    function.remove_block(arm)
            changes += 1
            converted = True
            break
    if changes:
        simplify_cfg(function)
    return changes


# ----------------------------------------------------------------------
# Loop unrolling.
# ----------------------------------------------------------------------

def unroll_loops(function: Function, factor: int = 4, max_body_ops: int = 40) -> int:
    """Unroll canonical counted loops by ``factor``.

    The pass recognises the loop shape the front end emits for
    ``for (i = start; i < n; i += step) { straight-line body }``:

    * a header block whose only instructions are ``cmp = cmplt i, n`` and a
      branch to (body, exit),
    * a single straight-line body block jumping to a step block (or
      directly back to the header),
    * a step block containing ``i = add i, step``; ``jump header`` with a
      constant ``step``.

    It emits a vectorised-style main loop that runs ``factor`` copies of
    the body per iteration (guarded by ``i + (factor-1)*step < n``) and
    keeps the original loop as the remainder loop.  The unrolled body is a
    single basic block, which is what gives the VLIW scheduler and the ISE
    enumerator their larger window.
    """
    if factor < 2:
        return 0
    from ..ir.cfg import find_natural_loops

    changes = 0
    for header, body_blocks in find_natural_loops(function):
        # --- match the canonical shape -------------------------------
        term = header.terminator
        if term is None or term.opcode is not Opcode.BRANCH:
            continue
        header_body = header.non_terminator_instructions()
        if len(header_body) != 1:
            continue
        cmp = header_body[0]
        if cmp.annotations.get("no_unroll"):
            continue
        if cmp.opcode not in (Opcode.CMPLT, Opcode.CMPLE) or term.operands[0] is not cmp.dest:
            continue
        induction, bound = cmp.operands
        if not isinstance(induction, VirtualRegister):
            continue
        body_block, exit_block = term.targets
        if body_block not in body_blocks or exit_block in body_blocks:
            continue
        loop_members = set(body_blocks)
        if len(loop_members) not in (2, 3):
            continue

        # Find the step block (the one that defines the induction variable).
        step_block = None
        for candidate in loop_members:
            if candidate is header:
                continue
            for inst in candidate.non_terminator_instructions():
                if inst.dest is not None and inst.dest.id == induction.id:
                    step_block = candidate
        if step_block is None:
            continue
        if len(loop_members) == 3:
            if body_block is step_block:
                continue
            body_term = body_block.terminator
            if body_term is None or body_term.opcode is not Opcode.JUMP:
                continue
            if body_term.targets[0] is not step_block:
                continue
        else:
            if body_block is not step_block:
                continue
        step_term = step_block.terminator
        if step_term is None or step_term.opcode is not Opcode.JUMP:
            continue
        if step_term.targets[0] is not header:
            continue

        # The step block must be "i = i + const" plus nothing else that
        # defines registers used elsewhere; allow extra pure instructions.
        step_value: Optional[int] = None
        for inst in step_block.non_terminator_instructions():
            if inst.dest is not None and inst.dest.id == induction.id:
                source = inst
                if (source.opcode is Opcode.ADD
                        and isinstance(source.operands[0], VirtualRegister)
                        and source.operands[0].id == induction.id
                        and isinstance(source.operands[1], Constant)):
                    step_value = source.operands[1].value
                elif (source.opcode is Opcode.MOV
                      and isinstance(source.operands[0], VirtualRegister)):
                    # i = mov t ; with t = add i, const earlier in the block
                    producer = None
                    for prior in step_block.non_terminator_instructions():
                        if prior.dest is not None and prior.dest.id == source.operands[0].id:
                            producer = prior
                    if (producer is not None and producer.opcode is Opcode.ADD
                            and isinstance(producer.operands[0], VirtualRegister)
                            and producer.operands[0].id == induction.id
                            and isinstance(producer.operands[1], Constant)):
                        step_value = producer.operands[1].value
        if step_value is None or step_value <= 0:
            continue

        # The bound must be loop-invariant: not defined inside the loop.
        if isinstance(bound, VirtualRegister):
            defined_inside = any(
                inst.dest is not None and inst.dest.id == bound.id
                for member in loop_members for inst in member.instructions
            )
            if defined_inside:
                continue

        body_instructions = (
            body_block.non_terminator_instructions() if body_block is not step_block else []
        )
        step_instructions = step_block.non_terminator_instructions()
        if any(inst.opcode in (Opcode.CALL,) for inst in body_instructions):
            continue
        if len(body_instructions) + len(step_instructions) > max_body_ops:
            continue

        # Registers that must keep their identity across copies: loop-carried
        # values (used before being defined inside one iteration) and values
        # read outside the loop.  All other destinations are pure temporaries
        # and get fresh registers per copy, which keeps copies independent
        # for the scheduler and avoids false cross-block liveness.
        loop_instructions = body_instructions + step_instructions
        defined_so_far: Set[int] = set()
        carried: Set[int] = set()
        for inst in loop_instructions:
            for reg in inst.uses():
                if reg.id not in defined_so_far:
                    carried.add(reg.id)
            if inst.dest is not None:
                defined_so_far.add(inst.dest.id)
        loop_blocks = set(loop_members)
        for other_block in function.blocks:
            if other_block in loop_blocks:
                continue
            for inst in other_block.instructions:
                for reg in inst.uses():
                    if reg.id in defined_so_far:
                        carried.add(reg.id)

        # --- build the unrolled main loop -----------------------------
        guard = function.new_block(f"{header.name}.unroll.guard")
        unrolled = function.new_block(f"{header.name}.unrolled")

        # Redirect every external edge into the header to the guard block.
        for block in function.blocks:
            if block in loop_members or block in (guard, unrolled):
                continue
            block_term = block.terminator
            if block_term is None:
                continue
            for i, target in enumerate(block_term.targets):
                if target is header:
                    block_term.targets[i] = guard

        # guard: t = i + (factor-1)*step ; c = cmplt/cmple t, bound ;
        #        branch c -> unrolled, header(remainder)
        ahead = VirtualRegister(I32, "unroll.ahead")
        guard.append(Instruction(Opcode.ADD, ahead,
                                 [induction, Constant((factor - 1) * step_value, I32)]))
        guard_cmp = VirtualRegister(I1, "unroll.cond")
        guard.append(Instruction(cmp.opcode, guard_cmp, [ahead, bound]))
        guard.append(Instruction(Opcode.BRANCH, operands=[guard_cmp],
                                 targets=[unrolled, header]))

        # unrolled body: factor copies of (body; step), then jump to guard.
        for _copy in range(factor):
            rename: Dict[int, VirtualRegister] = {}

            def remap(value):
                if isinstance(value, VirtualRegister) and value.id in rename:
                    return rename[value.id]
                return value

            for inst in loop_instructions:
                new_ops = [remap(op) for op in inst.operands]
                new_dest = inst.dest
                if inst.dest is not None and inst.dest.id not in carried:
                    # Pure temporary: give each copy its own register.
                    new_dest = VirtualRegister(inst.dest.type, inst.dest.name)
                    rename[inst.dest.id] = new_dest
                clone = Instruction(inst.opcode, new_dest, new_ops,
                                    custom_op=inst.custom_op,
                                    alloc_type=inst.alloc_type)
                unrolled.append(clone)
        unrolled.append(Instruction(Opcode.JUMP, targets=[guard]))

        # The remainder loop keeps its original shape; mark it so later
        # invocations of this pass do not unroll it again.
        cmp.annotations["no_unroll"] = True

        changes += 1
        # Only unroll one loop per invocation round to keep the loop list valid.
        break
    if changes:
        simplify_cfg(function)
    return changes


# ----------------------------------------------------------------------
# Function inlining.
# ----------------------------------------------------------------------

def inline_small_functions(module: Module, max_blocks: int = 3,
                           max_instructions: int = 30) -> int:
    """Inline calls to small, non-recursive functions.

    Embedded kernels frequently factor saturation/clamping helpers into
    tiny functions; inlining them exposes the arithmetic to the ISE
    enumerator, which is exactly the §6.1 "core capabilities" story.
    """
    from ..ir.clone import clone_function

    changes = 0
    inlinable = {}
    for function in module.functions.values():
        if len(function.blocks) > max_blocks:
            continue
        if function.instruction_count() > max_instructions:
            continue
        if function.name in function.call_targets():
            continue  # directly recursive
        if any(inst.opcode is Opcode.ALLOCA for inst in function.instructions()):
            continue
        inlinable[function.name] = function

    for function in module.functions.values():
        made_progress = True
        while made_progress:
            made_progress = False
            for block in list(function.blocks):
                for index, inst in enumerate(block.instructions):
                    if inst.opcode is not Opcode.CALL:
                        continue
                    callee = inlinable.get(inst.callee)
                    if callee is None or callee is function:
                        continue
                    _inline_call(function, block, index, inst, callee)
                    changes += 1
                    made_progress = True
                    break
                if made_progress:
                    break
    if changes:
        for function in module.functions.values():
            simplify_cfg(function)
    return changes


def _inline_call(function: Function, block: BasicBlock, index: int,
                 call_inst: Instruction, callee: Function) -> None:
    """Splice a clone of ``callee`` in place of ``call_inst``."""
    from ..ir.clone import clone_function

    clone = clone_function(callee)

    # Split the call block: instructions after the call move to a new block.
    continuation = function.new_block(f"{block.name}.inlcont")
    tail = block.instructions[index + 1:]
    del block.instructions[index:]
    call_inst.block = None
    for inst in tail:
        continuation.append(inst)

    # Bind arguments: prepend moves from actual to formal registers.
    for formal, actual in zip(clone.arguments, call_inst.operands):
        block.append(move(formal, actual))

    # Splice the callee blocks into the caller, renaming to avoid clashes.
    name_prefix = f"inl.{callee.name}.{id(call_inst) & 0xFFFF}"
    for callee_block in clone.blocks:
        callee_block.name = f"{name_prefix}.{callee_block.name}"
        callee_block.function = function
        function.blocks.append(callee_block)

    # Jump from the call site into the inlined entry.
    block.append(Instruction(Opcode.JUMP, targets=[clone.entry]))

    # Rewrite returns into moves + jumps to the continuation block.
    for callee_block in clone.blocks:
        term = callee_block.terminator
        if term is None or term.opcode is not Opcode.RETURN:
            continue
        callee_block.remove(term)
        if call_inst.dest is not None and term.operands:
            callee_block.append(move(call_inst.dest, term.operands[0]))
        callee_block.append(Instruction(Opcode.JUMP, targets=[continuation]))
