"""Window-by-window execution of an application graph on one machine.

:class:`AppRunner` expands every node of an
:class:`~repro.app.spec.ApplicationSpec` through the deterministic
kernel generator, compiles each node for the target machine through the
shared :class:`~repro.pipeline.CompilePipeline`, and then drives the
graph one input window at a time: arguments are bound per (window,
node) from seeded RNG draws plus whatever upstream nodes produced along
the spec's edges, the node executes on the selected functional engine
(interpreter / compiled / native — identical values by construction),
and its timing is reduced statically from the machine's schedule
exactly as :class:`~repro.dse.Evaluator` does for single kernels.

Every node run is checked against a *composed oracle*: a second,
engine-free propagation chain evaluates each node's generated Python
reference on oracle-produced upstream values, so a whole graph stays
self-checking — per-node return values **and** produced output arrays
must match bit for bit.

Two fidelities mirror the single-kernel evaluator:

* ``"cycle"`` — every window of every node actually executes; window
  latency, jitter and deadline misses come from measured per-window
  profiles (data-dependent control flow makes windows genuinely vary);
* ``"trace"`` — each node is profiled exactly once (the pipeline's
  ``trace`` stage, window 0) and priced analytically per machine by the
  :class:`~repro.model.RetimingModel`; the graph is re-aggregated from
  the per-node estimates, so a design-space sweep never re-executes the
  application.

The result is a typed, plain-data :class:`AppReport` — picklable
through the artifact store — with p50/p95/p99 window latencies derived
via :mod:`repro.obs` histogram quantiles.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..arch.machine import MachineDescription
from ..exec.registry import validate_engine
from ..gen.generator import _INPUT_RANGES, build_function, generate_kernel
from ..ir.types import I32
from ..obs import global_tracer
from ..obs.metrics import Histogram
from .spec import VALUE_PORT, ApplicationSpec

_W = I32.wrap

#: geometric microsecond ladder for window-latency quantiles
#: (0.5 us .. ~1.2e7 us, ratio 4/3 — fine enough for p99 interpolation).
LATENCY_BUCKETS_US: Tuple[float, ...] = tuple(
    0.5 * (4.0 / 3.0) ** i for i in range(60))


def _port_seed(stream_seed: int, window: int, node: str, port: str) -> str:
    """Stable string seed for one array draw (str seeding hashes with
    sha512, so it is identical across processes and platforms)."""
    return f"app:{stream_seed}:{window}:{node}:{port}"


@dataclass
class AppNodeStats:
    """Aggregate measurements of one node across all windows."""

    node: str
    kernel: str
    family: str
    runs: int = 0
    cycles_per_window: List[int] = field(default_factory=list)
    energy_uj_total: float = 0.0
    code_bytes: int = 0
    correct: bool = True

    @property
    def cycles_total(self) -> int:
        return sum(self.cycles_per_window)

    @property
    def cycles_mean(self) -> float:
        return self.cycles_total / self.runs if self.runs else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node, "kernel": self.kernel, "family": self.family,
            "runs": self.runs, "cycles_total": self.cycles_total,
            "cycles_mean": round(self.cycles_mean, 1),
            "energy_uj": round(self.energy_uj_total, 4),
            "code_bytes": self.code_bytes, "correct": self.correct,
        }


@dataclass
class AppReport:
    """Typed real-time measurements of one application on one machine.

    Plain data throughout (lists, dicts, floats) so reports survive the
    pickling artifact-store layers; latency quantiles are derived on
    demand through a transient :class:`~repro.obs.metrics.Histogram`.
    """

    application: str
    fingerprint: str
    machine: str
    engine: str
    fidelity: str
    windows: int
    window_size: int
    period_us: float
    deadline_us: float
    clock_ns: float
    correct: bool
    window_latencies_us: List[float]
    window_energies_uj: List[float]
    node_stats: List[AppNodeStats]
    #: per-window scalar return value of every node — the bit-identity
    #: surface the differential engine tests compare.
    window_values: List[Dict[str, int]]

    # ------------------------------------------------------------------
    # Real-time metrics.
    # ------------------------------------------------------------------
    @property
    def deadline_misses(self) -> int:
        return sum(1 for latency in self.window_latencies_us
                   if latency > self.deadline_us)

    @property
    def deadline_miss_rate(self) -> float:
        if not self.window_latencies_us:
            return 0.0
        return self.deadline_misses / len(self.window_latencies_us)

    @property
    def jitter_us(self) -> float:
        if len(self.window_latencies_us) < 2:
            return 0.0
        return max(self.window_latencies_us) - min(self.window_latencies_us)

    @property
    def mean_latency_us(self) -> float:
        if not self.window_latencies_us:
            return 0.0
        return sum(self.window_latencies_us) / len(self.window_latencies_us)

    @property
    def energy_per_window_uj(self) -> float:
        if not self.window_energies_uj:
            return 0.0
        return sum(self.window_energies_uj) / len(self.window_energies_uj)

    @property
    def total_cycles(self) -> int:
        return sum(stats.cycles_total for stats in self.node_stats)

    @property
    def cycles_per_window(self) -> float:
        return self.total_cycles / self.windows if self.windows else 0.0

    def _histogram(self) -> Histogram:
        histogram = Histogram("app_window_latency_us", (),
                              buckets=LATENCY_BUCKETS_US)
        for latency in self.window_latencies_us:
            histogram.observe(latency)
        return histogram

    def latency_quantile_us(self, q: float) -> float:
        return self._histogram().quantile(q)

    @property
    def p50_latency_us(self) -> float:
        return self.latency_quantile_us(0.50)

    @property
    def p95_latency_us(self) -> float:
        return self.latency_quantile_us(0.95)

    @property
    def p99_latency_us(self) -> float:
        return self.latency_quantile_us(0.99)

    # ------------------------------------------------------------------
    # Presentation.
    # ------------------------------------------------------------------
    def summary_row(self) -> Dict[str, object]:
        return {
            "application": self.application,
            "machine": self.machine,
            "engine": self.engine,
            "fidelity": self.fidelity,
            "windows": self.windows,
            "correct": self.correct,
            "miss_rate": round(self.deadline_miss_rate, 4),
            "p50_us": round(self.p50_latency_us, 2),
            "p95_us": round(self.p95_latency_us, 2),
            "p99_us": round(self.p99_latency_us, 2),
            "jitter_us": round(self.jitter_us, 2),
            "energy_per_window_uj": round(self.energy_per_window_uj, 4),
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "application": self.application,
            "fingerprint": self.fingerprint,
            "machine": self.machine,
            "engine": self.engine,
            "fidelity": self.fidelity,
            "windows": self.windows,
            "window_size": self.window_size,
            "period_us": self.period_us,
            "deadline_us": self.deadline_us,
            "clock_ns": self.clock_ns,
            "correct": self.correct,
            "deadline_misses": self.deadline_misses,
            "deadline_miss_rate": self.deadline_miss_rate,
            "p50_latency_us": self.p50_latency_us,
            "p95_latency_us": self.p95_latency_us,
            "p99_latency_us": self.p99_latency_us,
            "jitter_us": self.jitter_us,
            "energy_per_window_uj": self.energy_per_window_uj,
            "window_latencies_us": list(self.window_latencies_us),
            "nodes": [stats.to_dict() for stats in self.node_stats],
        }


class AppRunner:
    """Executes one application spec on one machine, window by window."""

    def __init__(self, spec: ApplicationSpec, machine: MachineDescription,
                 engine: str = "compiled", opt_level: int = 2,
                 fidelity: str = "cycle", pipeline=None,
                 modules: Optional[Mapping[str, object]] = None) -> None:
        validate_engine(engine, "functional")
        validate_engine(fidelity, "fidelity")
        self.spec = spec
        self.machine = machine
        self.engine = engine
        self.opt_level = opt_level
        self.fidelity = fidelity
        if pipeline is not None:
            self.pipeline = pipeline
        else:
            from ..api.session import default_pipeline

            self.pipeline = default_pipeline()
        self.order = spec.topological_order()
        #: per-node generated kernel (C source, Python oracle, arg roles).
        self.generated = {node.name: generate_kernel(node.spec)
                          for node in spec.nodes}
        #: per-node array parameters in declaration order (name, role).
        self.arrays = {node.name: build_function(node.spec).arrays
                       for node in spec.nodes}
        #: per-node optimized IR — injectable so ISA-customized module
        #: sets (see :class:`repro.dse.AppEvaluator`) reuse this runner.
        if modules is not None:
            self._modules = dict(modules)
        else:
            self._modules = {}
            for node in spec.nodes:
                kernel = self.generated[node.name].kernel
                module, _records = self.pipeline.front(
                    kernel.source, kernel.name, opt_level=self.opt_level)
                self._modules[node.name] = module
        #: per-node scheduled code for ``machine``.
        self._compiled = {}
        self._code_bytes = {}
        for node in spec.nodes:
            compiled, report = self.pipeline.backend(
                self._modules[node.name], machine)
            self._compiled[node.name] = compiled
            self._code_bytes[node.name] = (
                report.code.bytes_effective if report.code is not None else 0)

    @property
    def total_code_bytes(self) -> int:
        """Effective code bytes across all node schedules."""
        return sum(self._code_bytes.values())

    # ------------------------------------------------------------------
    # Argument binding.
    # ------------------------------------------------------------------
    def bind_args(self, window: int, node_name: str,
                  produced: Mapping[Tuple[str, str], object],
                  load: Optional[int] = None) -> tuple:
        """Concrete arguments of one (window, node) run.

        Fresh data is drawn from seeds stable in (stream seed, window,
        node, port); edge-bound ports take upstream values from
        ``produced`` (keyed ``(src node, src port)``) — a copy of the
        produced array for array edges, the scalar folded into a fresh
        window for scalar edges.  Arrays are always allocated at the
        spec's ``run_size`` (so the generator's masked indexing stays in
        range and edges connect equal-length buffers); the trailing
        ``n`` argument is the window's *active* sample count.
        """
        spec = self.spec
        node = spec.node(node_name)
        incoming = {edge.dst_port: edge for edge in spec.in_edges(node_name)}
        lo, hi = _INPUT_RANGES[node.spec.data_bits]
        n = spec.run_size
        if load is None:
            load = min(spec.stream.window_load(window), n)
        args: List[object] = []
        for param in self.arrays[node_name]:
            rng = random.Random(
                _port_seed(spec.stream.seed, window, node_name, param.name))
            if param.role == "table":
                args.append([rng.randint(0, 255) for _ in range(256)])
            elif param.role == "output":
                args.append([0] * n)
            else:
                edge = incoming.get(param.name)
                if edge is not None and edge.is_array:
                    args.append(list(produced[(edge.src, edge.src_port)]))
                else:
                    data = [rng.randint(lo, hi) for _ in range(n)]
                    if edge is not None:
                        scalar = produced[(edge.src, VALUE_PORT)]
                        data = [_W(v + scalar) for v in data]
                    args.append(data)
        args.append(load)
        return tuple(args)

    def _oracle_step(self, window: int, node_name: str,
                     produced: Dict[Tuple[str, str], object],
                     load: Optional[int] = None) -> int:
        """Run one node's Python oracle; record its products; return value."""
        generated = self.generated[node_name]
        args = self.bind_args(window, node_name, produced, load=load)
        value = generated.kernel.reference(*args)
        produced[(node_name, VALUE_PORT)] = value
        for param, arg in zip(self.arrays[node_name], args):
            if param.role == "output":
                produced[(node_name, param.name)] = arg
        return value

    # ------------------------------------------------------------------
    # Execution.
    # ------------------------------------------------------------------
    def run(self) -> AppReport:
        if self.fidelity == "trace":
            return self._run_trace()
        return self._run_cycle()

    def _empty_report(self) -> AppReport:
        stream = self.spec.stream
        return AppReport(
            application=self.spec.name,
            fingerprint=self.spec.fingerprint(),
            machine=self.machine.name,
            engine=self.engine,
            fidelity=self.fidelity,
            windows=stream.windows,
            window_size=stream.window_size,
            period_us=stream.period_us,
            deadline_us=stream.deadline_us,
            clock_ns=self.machine.clock_ns,
            correct=True,
            window_latencies_us=[],
            window_energies_uj=[],
            node_stats=[
                AppNodeStats(node=node.name,
                             kernel=self.generated[node.name].name,
                             family=node.spec.family,
                             code_bytes=self._code_bytes[node.name])
                for node in self.order
            ],
            window_values=[],
        )

    def _run_cycle(self) -> AppReport:
        from ..dse.objectives import reduce_schedule_timing
        from ..exec.engine import make_functional_simulator

        report = self._empty_report()
        stats_by_node = {stats.node: stats for stats in report.node_stats}
        tracer = global_tracer()
        clock_us = self.machine.clock_ns / 1000.0
        for window in range(self.spec.stream.windows):
            produced_engine: Dict[Tuple[str, str], object] = {}
            produced_oracle: Dict[Tuple[str, str], object] = {}
            window_cycles = 0
            window_energy = 0.0
            values: Dict[str, int] = {}
            with tracer.span("app.window", app=self.spec.name,
                             window=window) as window_span:
                for node in self.order:
                    name = node.name
                    generated = self.generated[name]
                    expected = self._oracle_step(window, name, produced_oracle)
                    args = self.bind_args(window, name, produced_engine)
                    with tracer.span("app.node", node=name,
                                     kernel=generated.name) as node_span:
                        simulator = make_functional_simulator(
                            self._modules[name], engine=self.engine,
                            store=self.pipeline.store)
                        value = simulator.run(generated.kernel.entry, *args)
                        cycles, energy_uj, _ipc = reduce_schedule_timing(
                            self._compiled[name], self.machine,
                            simulator.profile)
                        node_span.note(cycles=cycles, value=value)
                    produced_engine[(name, VALUE_PORT)] = value
                    correct = value == expected
                    for param, arg in zip(self.arrays[name], args):
                        if param.role == "output":
                            produced_engine[(name, param.name)] = arg
                            if arg != produced_oracle[(name, param.name)]:
                                correct = False
                    stats = stats_by_node[name]
                    stats.runs += 1
                    stats.cycles_per_window.append(cycles)
                    stats.energy_uj_total += energy_uj
                    stats.correct = stats.correct and correct
                    values[name] = value
                    window_cycles += cycles
                    window_energy += energy_uj
                latency_us = window_cycles * clock_us
                window_span.note(latency_us=round(latency_us, 3),
                                 miss=latency_us > self.spec.stream.deadline_us)
            report.window_latencies_us.append(latency_us)
            report.window_energies_uj.append(window_energy)
            report.window_values.append(values)
        report.correct = all(stats.correct for stats in report.node_stats)
        return report

    def _run_trace(self) -> AppReport:
        """Profile each node once (window 0), price analytically, and
        re-aggregate the graph — no per-window execution at all."""
        from ..model.retime import RetimingModel

        report = self._empty_report()
        retimer = RetimingModel(store=self.pipeline.store)
        produced_oracle: Dict[Tuple[str, str], object] = {}
        total_cycles = 0
        total_energy = 0.0
        values: Dict[str, int] = {}
        # Screen at worst-case load: every window carries a full
        # window_size samples, so the analytic estimate upper-bounds the
        # measured per-window latency regardless of load jitter.
        load = min(self.spec.stream.window_size, self.spec.run_size)
        for node in self.order:
            name = node.name
            generated = self.generated[name]
            args = self.bind_args(0, name, produced_oracle, load=load)
            expected = self._oracle_step(0, name, produced_oracle, load=load)
            trace, _record = self.pipeline.trace(
                self._modules[name], generated.kernel.entry, args)
            estimate = retimer.price(self._compiled[name], self.machine, trace)
            stats = next(s for s in report.node_stats if s.node == name)
            stats.runs = 1
            stats.cycles_per_window.append(estimate.cycles)
            stats.energy_uj_total = estimate.energy_uj
            stats.correct = trace.value == expected
            values[name] = trace.value
            total_cycles += estimate.cycles
            total_energy += estimate.energy_uj
        latency_us = total_cycles * self.machine.clock_ns / 1000.0
        windows = self.spec.stream.windows
        report.window_latencies_us = [latency_us] * windows
        report.window_energies_uj = [total_energy] * windows
        report.window_values = [dict(values)] * windows
        report.correct = all(stats.correct for stats in report.node_stats)
        return report


def run_application(spec: ApplicationSpec, machine: MachineDescription,
                    engine: str = "compiled", opt_level: int = 2,
                    fidelity: str = "cycle", pipeline=None) -> AppReport:
    """One-call convenience: build an :class:`AppRunner` and run it."""
    return AppRunner(spec, machine, engine=engine, opt_level=opt_level,
                     fidelity=fidelity, pipeline=pipeline).run()
