"""Multi-kernel dataflow applications with real-time objectives.

The paper's "custom-fit processor" claim is about whole products, not
single kernels: a machine is sized for the *application* an embedded
system runs — a graph of kernels fed by a periodic input stream with
per-window deadlines.  This package gives that claim a concrete,
self-checking object model:

* :class:`~repro.app.spec.ApplicationSpec` — a seeded, serializable,
  fingerprinted DAG of generated-kernel nodes with typed edges and a
  :class:`~repro.app.spec.WindowStream` real-time envelope;
* :class:`~repro.app.runner.AppRunner` — window-by-window execution on
  any functional engine with per-node static timing, composed-oracle
  checking, and trace-fidelity analytic re-aggregation;
* :class:`~repro.app.runner.AppReport` — typed deadline/latency/jitter/
  energy measurements with histogram-derived p50/p95/p99.

Applications themselves are synthesized by :mod:`repro.gen.application`
(chain / fan-in / diamond topologies over the five scenario families)
and scored against design spaces by :class:`repro.dse.AppEvaluator`.
"""

from .runner import (AppNodeStats, AppReport, AppRunner,
                     LATENCY_BUCKETS_US, run_application)
from .spec import (AppEdge, AppNode, ApplicationSpec, VALUE_PORT,
                   WindowStream, node_ports)

__all__ = [
    "AppEdge",
    "AppNode",
    "AppNodeStats",
    "AppReport",
    "AppRunner",
    "ApplicationSpec",
    "LATENCY_BUCKETS_US",
    "VALUE_PORT",
    "WindowStream",
    "node_ports",
    "run_application",
]
