"""Seeded, serializable descriptions of multi-kernel applications.

An :class:`ApplicationSpec` is the *recipe* for one dataflow
application: a DAG of kernel nodes (each node expands one
:class:`~repro.gen.WorkloadSpec` through the deterministic generator),
typed edges that carry data between nodes, and a
:class:`WindowStream` describing the real-time envelope the graph runs
under — how many input windows arrive, how large each is, how often one
arrives (``period_us``) and by when each must be finished
(``deadline_us``).

Edges come in two types, named by the source port:

* **array edges** (``src_port`` names an output-role array of the
  source node) copy the produced array into an input-role array of the
  destination — the streaming "signal path";
* **scalar edges** (``src_port == "value"``) fold the source node's
  return value into the destination's freshly drawn input window — a
  cheap control/feature path that every node can produce.

Like :class:`~repro.gen.WorkloadSpec`, the application spec is tiny and
primitive-typed: two processes holding equal specs bind bit-identical
per-window arguments, and :meth:`ApplicationSpec.fingerprint` gives a
stable content address that composes with
:mod:`repro.pipeline.fingerprints`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Sequence, Tuple

from ..gen.generator import build_function
from ..gen.spec import WorkloadSpec
from ..pipeline.fingerprints import spec_fingerprint

#: the edge source port naming a node's scalar return value.
VALUE_PORT = "value"


@dataclass(frozen=True)
class AppNode:
    """One kernel node: a unique graph name bound to a workload recipe."""

    name: str
    spec: WorkloadSpec

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "a").isalnum():
            raise ValueError(
                f"node name {self.name!r} must be a non-empty identifier")
        if isinstance(self.spec, Mapping):
            object.__setattr__(self, "spec", WorkloadSpec.from_dict(self.spec))

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "spec": self.spec.to_dict()}


@dataclass(frozen=True)
class AppEdge:
    """One typed dataflow edge between two nodes.

    ``src_port`` is either :data:`VALUE_PORT` (the source's scalar
    return value) or the name of an output-role array of the source
    node; ``dst_port`` always names an input-role array of the
    destination node.
    """

    src: str
    dst: str
    src_port: str = VALUE_PORT
    dst_port: str = ""

    @property
    def is_array(self) -> bool:
        return self.src_port != VALUE_PORT

    def to_dict(self) -> Dict[str, object]:
        return {"src": self.src, "dst": self.dst,
                "src_port": self.src_port, "dst_port": self.dst_port}


@dataclass(frozen=True)
class WindowStream:
    """The input stream and real-time envelope an application runs under."""

    #: number of input windows to process per run.
    windows: int = 8
    #: elements per window (per input array); the graph's problem size.
    window_size: int = 32
    #: arrival period of consecutive windows, microseconds.
    period_us: float = 100.0
    #: per-window completion deadline, microseconds.
    deadline_us: float = 100.0
    #: seed for the per-window input data.
    seed: int = 0
    #: per-window load variation in [0, 1): each window carries between
    #: ``window_size * (1 - load_jitter)`` and ``window_size`` samples
    #: (drawn deterministically from the stream seed).  This is what
    #: makes window latencies — and therefore jitter and deadline
    #: misses — genuinely vary: the generated kernels themselves are
    #: near data-independent in timing.
    load_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.windows < 1:
            raise ValueError("a stream needs at least one window")
        if self.window_size < 8:
            raise ValueError("window_size must be at least 8")
        if self.period_us <= 0 or self.deadline_us <= 0:
            raise ValueError("period_us and deadline_us must be positive")
        if not 0.0 <= self.load_jitter < 1.0:
            raise ValueError("load_jitter must be in [0, 1)")

    def window_load(self, window: int) -> int:
        """Active sample count of one window (deterministic in the seed)."""
        if self.load_jitter == 0.0:
            return self.window_size
        import random

        floor = max(8, int(self.window_size * (1.0 - self.load_jitter)))
        rng = random.Random(f"load:{self.seed}:{window}")
        return rng.randint(floor, self.window_size)

    def to_dict(self) -> Dict[str, object]:
        return {"windows": self.windows, "window_size": self.window_size,
                "period_us": self.period_us, "deadline_us": self.deadline_us,
                "seed": self.seed, "load_jitter": self.load_jitter}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "WindowStream":
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


def node_ports(spec: WorkloadSpec) -> Dict[str, str]:
    """``{array name: role}`` of the kernel a workload spec expands to.

    Deterministic in the spec (the generator draws everything from
    ``Random(spec.seed)``), so edge validation needs no compilation.
    """
    return {a.name: a.role for a in build_function(spec).arrays}


@dataclass(frozen=True)
class ApplicationSpec:
    """One dataflow application (immutable, serializable, fingerprinted)."""

    name: str
    nodes: Tuple[AppNode, ...]
    edges: Tuple[AppEdge, ...] = ()
    stream: WindowStream = WindowStream()
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("an application needs a name")
        nodes = tuple(AppNode(**n) if isinstance(n, Mapping) else n
                      for n in self.nodes)
        edges = tuple(AppEdge(**e) if isinstance(e, Mapping) else e
                      for e in self.edges)
        stream = (WindowStream.from_dict(self.stream)
                  if isinstance(self.stream, Mapping) else self.stream)
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "stream", stream)
        if not nodes:
            raise ValueError("an application needs at least one node")
        names = [n.name for n in nodes]
        if len(set(names)) != len(names):
            raise ValueError("node names must be unique")
        ports = {n.name: node_ports(n.spec) for n in nodes}
        taken = set()
        for edge in edges:
            if edge.src not in ports or edge.dst not in ports:
                raise ValueError(
                    f"edge {edge.src}->{edge.dst} references unknown nodes")
            if edge.src_port != VALUE_PORT:
                role = ports[edge.src].get(edge.src_port)
                if role != "output":
                    raise ValueError(
                        f"edge source port {edge.src}.{edge.src_port} is not "
                        f"an output array (got role {role!r})")
            if ports[edge.dst].get(edge.dst_port) != "input":
                raise ValueError(
                    f"edge destination port {edge.dst}.{edge.dst_port} is "
                    f"not an input array")
            key = (edge.dst, edge.dst_port)
            if key in taken:
                raise ValueError(
                    f"input port {edge.dst}.{edge.dst_port} is bound twice")
            taken.add(key)
        # topological_order() raises on cycles; validate eagerly.
        self.topological_order()

    # ------------------------------------------------------------------
    # Graph structure.
    # ------------------------------------------------------------------
    def node(self, name: str) -> AppNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r}")

    def in_edges(self, name: str) -> Tuple[AppEdge, ...]:
        return tuple(e for e in self.edges if e.dst == name)

    def topological_order(self) -> Tuple[AppNode, ...]:
        """Kahn's algorithm, stable in declaration order; raises on cycles."""
        pending = {n.name: sum(1 for e in self.edges if e.dst == n.name)
                   for n in self.nodes}
        order: List[AppNode] = []
        while len(order) < len(self.nodes):
            ready = [n for n in self.nodes
                     if pending.get(n.name, -1) == 0]
            if not ready:
                raise ValueError(
                    f"application '{self.name}' has a dataflow cycle")
            for node in ready:
                order.append(node)
                pending[node.name] = -1
                for edge in self.edges:
                    if edge.src == node.name:
                        pending[edge.dst] -= 1
        return tuple(order)

    @property
    def run_size(self) -> int:
        """The shared per-node problem size: every node runs its arrays at
        this length so array edges always connect equal-length buffers."""
        return max(self.stream.window_size,
                   max(n.spec.footprint for n in self.nodes))

    # ------------------------------------------------------------------
    # Serialization.
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "nodes": [n.to_dict() for n in self.nodes],
            "edges": [e.to_dict() for e in self.edges],
            "stream": self.stream.to_dict(),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ApplicationSpec":
        known = {f.name for f in fields(cls)}
        kwargs = {k: v for k, v in data.items() if k in known}
        if "nodes" in kwargs:
            kwargs["nodes"] = tuple(
                AppNode(name=str(n["name"]),
                        spec=WorkloadSpec.from_dict(n["spec"]))
                for n in kwargs["nodes"])
        if "edges" in kwargs:
            kwargs["edges"] = tuple(AppEdge(**e) for e in kwargs["edges"])
        if "stream" in kwargs:
            kwargs["stream"] = WindowStream.from_dict(kwargs["stream"])
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ApplicationSpec":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content address of this application (pipeline-compatible)."""
        return spec_fingerprint("application", self.to_json())
