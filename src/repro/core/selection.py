"""Selection of ISA extensions under area and opcode-space budgets.

Given the candidate list produced by identification, selection decides
which fused operations actually become part of the customized ISA.  Two
selectors are provided:

* :func:`select_greedy` — the classic benefit-per-kgate greedy heuristic
  with overlap resolution; fast and within a few percent of optimal on the
  workload suite.
* :func:`select_knapsack` — a dynamic-programming 0/1 knapsack on a scaled
  area axis, used by tests and by the ablation experiment to bound how much
  the greedy heuristic leaves on the table.

Both respect the encoding budget (opcode points, :mod:`repro.arch.encoding`)
in addition to the area budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..arch.encoding import DEFAULT_OPCODE_BUDGET, opcode_points_required
from ..arch.machine import MachineDescription
from .identification import Candidate, filter_overlapping_occurrences


@dataclass
class SelectionConfig:
    """Budgets and knobs for the selection stage."""

    #: total custom-datapath area allowed, in kgates.
    area_budget_kgates: float = 40.0
    #: opcode points available for new operations.
    opcode_budget: int = DEFAULT_OPCODE_BUDGET
    #: maximum number of distinct custom operations.
    max_operations: int = 8
    #: candidates whose estimated benefit is below this are never selected.
    min_benefit: float = 1.0
    #: selection algorithm: "greedy" or "knapsack".
    algorithm: str = "greedy"


@dataclass
class SelectionResult:
    """The outcome of a selection run."""

    selected: List[Candidate] = field(default_factory=list)
    rejected: List[Candidate] = field(default_factory=list)
    area_used_kgates: float = 0.0
    opcode_points_used: int = 0
    estimated_cycles_saved: float = 0.0

    def names(self) -> List[str]:
        return [c.pattern.name for c in self.selected]


def _candidate_cost(candidate: Candidate) -> Tuple[float, int]:
    area = candidate.area_cost()
    points = opcode_points_required(candidate.pattern.num_inputs,
                                    candidate.pattern.num_outputs)
    return area, points


def select_greedy(candidates: Sequence[Candidate], machine: MachineDescription,
                  config: Optional[SelectionConfig] = None) -> SelectionResult:
    """Pick candidates by descending benefit density until budgets run out."""
    config = config or SelectionConfig()
    result = SelectionResult()

    scored = []
    for candidate in candidates:
        benefit = candidate.estimated_benefit(machine)
        if benefit < config.min_benefit or not candidate.occurrences:
            result.rejected.append(candidate)
            continue
        area, points = _candidate_cost(candidate)
        density = benefit / max(area, 0.1)
        scored.append((density, benefit, area, points, candidate))
    scored.sort(key=lambda item: -item[0])

    for density, benefit, area, points, candidate in scored:
        if len(result.selected) >= config.max_operations:
            result.rejected.append(candidate)
            continue
        if result.area_used_kgates + area > config.area_budget_kgates:
            result.rejected.append(candidate)
            continue
        if result.opcode_points_used + points > config.opcode_budget:
            result.rejected.append(candidate)
            continue
        result.selected.append(candidate)
        result.area_used_kgates += area
        result.opcode_points_used += points
        result.estimated_cycles_saved += benefit

    filter_overlapping_occurrences(result.selected)
    # Recompute the benefit after overlap filtering.
    result.estimated_cycles_saved = sum(
        c.estimated_benefit(machine) for c in result.selected
    )
    return result


def select_knapsack(candidates: Sequence[Candidate], machine: MachineDescription,
                    config: Optional[SelectionConfig] = None,
                    area_resolution: float = 0.5) -> SelectionResult:
    """0/1 knapsack selection on a discretised area axis.

    The area budget is discretised to ``area_resolution`` kgates; the
    opcode and operation-count budgets are enforced afterwards by dropping
    the least-dense selections (they bind rarely, and this keeps the DP
    one-dimensional).
    """
    config = config or SelectionConfig()
    usable: List[Tuple[float, float, int, Candidate]] = []
    result = SelectionResult()
    for candidate in candidates:
        benefit = candidate.estimated_benefit(machine)
        if benefit < config.min_benefit or not candidate.occurrences:
            result.rejected.append(candidate)
            continue
        area, points = _candidate_cost(candidate)
        usable.append((benefit, area, points, candidate))

    capacity = int(config.area_budget_kgates / area_resolution)
    # dp[w] = (best benefit, chosen indices) using area <= w*resolution.
    best = [0.0] * (capacity + 1)
    chosen: List[List[int]] = [[] for _ in range(capacity + 1)]
    for index, (benefit, area, points, candidate) in enumerate(usable):
        weight = max(1, -int(-area // area_resolution))  # ceil: never exceed budget
        for w in range(capacity, weight - 1, -1):
            alternative = best[w - weight] + benefit
            if alternative > best[w]:
                best[w] = alternative
                chosen[w] = chosen[w - weight] + [index]

    picked = chosen[capacity]
    # Enforce the remaining budgets greedily by density.
    picked.sort(key=lambda i: -(usable[i][0] / max(usable[i][1], 0.1)))
    for index in picked:
        benefit, area, points, candidate = usable[index]
        if len(result.selected) >= config.max_operations:
            result.rejected.append(candidate)
            continue
        if result.opcode_points_used + points > config.opcode_budget:
            result.rejected.append(candidate)
            continue
        result.selected.append(candidate)
        result.area_used_kgates += area
        result.opcode_points_used += points
    for _, _, _, candidate in usable:
        if candidate not in result.selected and candidate not in result.rejected:
            result.rejected.append(candidate)

    filter_overlapping_occurrences(result.selected)
    result.estimated_cycles_saved = sum(
        c.estimated_benefit(machine) for c in result.selected
    )
    return result


def select(candidates: Sequence[Candidate], machine: MachineDescription,
           config: Optional[SelectionConfig] = None) -> SelectionResult:
    """Dispatch to the selector named in ``config.algorithm``."""
    config = config or SelectionConfig()
    if config.algorithm == "knapsack":
        return select_knapsack(candidates, machine, config)
    if config.algorithm == "greedy":
        return select_greedy(candidates, machine, config)
    raise ValueError(f"unknown selection algorithm '{config.algorithm}'")
