"""Identification of instruction-set-extension candidates.

Candidates are *convex cuts* of basic-block dataflow graphs containing only
fusable operations (no memory accesses, calls or control flow), bounded by
the register-file port constraints of the custom functional unit
(``max_inputs`` read ports, ``max_outputs`` write ports).  Enumeration is
the classic grow-from-seed search with convexity and I/O pruning, bounded
by ``max_size`` and a per-block candidate cap so that even large unrolled
blocks enumerate in reasonable time.

Identical computations found at different sites (or in different programs)
are merged by the patterns' canonical signatures, and each candidate
accumulates its occurrence list with the execution frequency of the
containing block — the quantity the selection stage trades off against
area and opcode-space cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..arch.machine import MachineDescription
from ..arch.operations import classify
from ..ir import (
    BasicBlock, Function, Instruction, Module, build_dataflow_graph,
    estimate_block_frequencies,
)
from .patterns import Pattern, pattern_from_cut


@dataclass
class Occurrence:
    """One site where a candidate pattern appears."""

    function: str
    block: str
    instructions: List[Instruction]
    frequency: float
    input_values: List = field(default_factory=list)
    output_registers: List = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.instructions)


@dataclass
class Candidate:
    """A candidate ISA extension: a pattern plus everywhere it occurs."""

    pattern: Pattern
    occurrences: List[Occurrence] = field(default_factory=list)

    @property
    def signature(self) -> str:
        return self.pattern.signature()

    @property
    def static_count(self) -> int:
        return len(self.occurrences)

    @property
    def dynamic_count(self) -> float:
        return sum(occ.frequency for occ in self.occurrences)

    def cycles_saved_per_use(self, machine: MachineDescription) -> int:
        """Latency saved each time the fused operation replaces the cut."""
        software = self.pattern.software_latency(
            lambda opcode: machine.latency(classify(opcode))
        )
        hardware = self.pattern.hardware_latency()
        return max(0, software - hardware)

    def estimated_benefit(self, machine: MachineDescription) -> float:
        """Weighted cycle savings across all occurrences."""
        return self.cycles_saved_per_use(machine) * self.dynamic_count

    def area_cost(self) -> float:
        return self.pattern.hardware_area_kgates()


@dataclass
class EnumerationConfig:
    """Constraints on the candidate search."""

    max_inputs: int = 4
    max_outputs: int = 2
    max_size: int = 10
    min_size: int = 2
    max_candidates_per_block: int = 512
    #: ignore blocks executed fewer than this many times (profile-weighted).
    min_block_frequency: float = 0.0


def _fusable_nodes(dfg) -> List[Instruction]:
    return [inst for inst in dfg.nodes if inst.is_fusable() and inst.dest is not None]


def enumerate_block_cuts(block: BasicBlock,
                         config: EnumerationConfig) -> List[Tuple[Set[Instruction], object]]:
    """Enumerate convex, I/O-feasible cuts of one basic block.

    Returns ``(cut, dfg)`` tuples.  The search grows connected subgraphs
    from each seed node by repeatedly adding dataflow neighbours, pruning
    non-convex or port-infeasible subgraphs, and deduplicating by node-id
    frozensets.
    """
    dfg = build_dataflow_graph(block)
    fusable = _fusable_nodes(dfg)
    if len(fusable) < config.min_size:
        return []
    fusable_set = set(fusable)

    results: List[Tuple[Set[Instruction], object]] = []
    seen: Set[frozenset] = set()

    def io_feasible(cut: Set[Instruction]) -> bool:
        inputs = dfg.subgraph_inputs(cut)
        outputs = dfg.subgraph_outputs(cut)
        return (len([v for v in inputs if not _is_constant(v)]) <= config.max_inputs
                and len(outputs) <= config.max_outputs and len(outputs) >= 1)

    def neighbours(cut: Set[Instruction]) -> Set[Instruction]:
        candidates: Set[Instruction] = set()
        for inst in cut:
            for pred in dfg.predecessors(inst):
                if pred in fusable_set and pred not in cut:
                    candidates.add(pred)
            for succ in dfg.successors(inst):
                if succ in fusable_set and succ not in cut:
                    candidates.add(succ)
        return candidates

    for seed in fusable:
        frontier: List[Set[Instruction]] = [{seed}]
        while frontier and len(results) < config.max_candidates_per_block:
            cut = frontier.pop()
            key = frozenset(id(inst) for inst in cut)
            if key in seen:
                continue
            seen.add(key)
            if len(cut) > config.max_size:
                continue
            if not dfg.is_convex(cut):
                continue
            if len(cut) >= config.min_size and io_feasible(cut):
                results.append((set(cut), dfg))
            if len(cut) < config.max_size:
                for extra in neighbours(cut):
                    grown = cut | {extra}
                    grown_key = frozenset(id(inst) for inst in grown)
                    if grown_key not in seen:
                        frontier.append(grown)
        if len(results) >= config.max_candidates_per_block:
            break
    return results


def _is_constant(value) -> bool:
    from ..ir import Constant

    return isinstance(value, Constant)


def identify_candidates(module: Module,
                        config: Optional[EnumerationConfig] = None,
                        functions: Optional[Sequence[str]] = None,
                        use_static_frequencies: bool = True) -> List[Candidate]:
    """Enumerate and merge ISE candidates across a module.

    When the module carries no measured profile (all block frequencies are
    the default 1.0) and ``use_static_frequencies`` is true, static loop-
    nesting estimates are computed first so inner-loop candidates dominate.
    """
    config = config or EnumerationConfig()
    by_signature: Dict[str, Candidate] = {}

    selected_functions: Iterable[Function]
    if functions is None:
        selected_functions = module.functions.values()
    else:
        selected_functions = [module.get_function(name) for name in functions]

    for function in selected_functions:
        if use_static_frequencies and all(b.frequency == 1.0 for b in function.blocks):
            estimate_block_frequencies(function)
        for block in function.blocks:
            if block.frequency < config.min_block_frequency:
                continue
            for cut, dfg in enumerate_block_cuts(block, config):
                pattern, inputs, outputs = pattern_from_cut(
                    [inst for inst in block.instructions if inst in cut], dfg
                )
                if pattern.size < config.min_size:
                    continue
                candidate = by_signature.get(pattern.signature())
                if candidate is None:
                    candidate = Candidate(pattern=pattern)
                    by_signature[pattern.signature()] = candidate
                candidate.occurrences.append(Occurrence(
                    function=function.name,
                    block=block.name,
                    instructions=[inst for inst in block.instructions if inst in cut],
                    frequency=block.frequency,
                    input_values=inputs,
                    output_registers=outputs,
                ))

    candidates = list(by_signature.values())
    candidates.sort(key=lambda c: -c.dynamic_count * max(1, c.pattern.size))
    return candidates


def filter_overlapping_occurrences(candidates: List[Candidate]) -> None:
    """Drop occurrences that share instructions with a better candidate.

    Selection assumes each occurrence can be rewritten independently; when
    two candidates claim the same IR instruction only the candidate that
    appears earlier in the (benefit-sorted) list keeps that site.
    """
    claimed: Set[int] = set()
    for candidate in candidates:
        kept: List[Occurrence] = []
        for occurrence in candidate.occurrences:
            ids = {id(inst) for inst in occurrence.instructions}
            if ids & claimed:
                continue
            kept.append(occurrence)
            claimed |= ids
        candidate.occurrences = kept
