"""The extension library: named custom operations and their semantics.

The library is the hand-off point between the customizer (which invents
operations), the machine description (which records their cost), the
compiler back end (which schedules them), and the simulators (which need
their semantics to execute them).  A process-wide library instance is used
so that simulators can resolve custom-op names without threading the
library through every call; tests reset it between cases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ..arch.machine import CustomOperation
from .patterns import Pattern


@dataclass
class ExtensionEntry:
    """One registered ISA extension: the pattern plus its machine-level cost."""

    pattern: Pattern
    operation: CustomOperation

    @property
    def name(self) -> str:
        return self.operation.name


class ExtensionLibrary:
    """A registry of custom operations keyed by name and by signature."""

    def __init__(self) -> None:
        self._by_name: Dict[str, ExtensionEntry] = {}
        self._by_signature: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------
    def register(self, pattern: Pattern,
                 operation: Optional[CustomOperation] = None) -> ExtensionEntry:
        """Register a pattern, deriving its machine-level cost if not given."""
        if operation is None:
            operation = CustomOperation(
                name=pattern.name,
                num_inputs=pattern.num_inputs,
                num_outputs=pattern.num_outputs,
                latency=pattern.hardware_latency(),
                area_kgates=pattern.hardware_area_kgates(),
                fused_ops=pattern.size,
            )
        entry = ExtensionEntry(pattern=pattern, operation=operation)
        self._by_name[operation.name] = entry
        self._by_signature[pattern.signature()] = operation.name
        return entry

    def register_all(self, patterns: List[Pattern]) -> List[ExtensionEntry]:
        return [self.register(p) for p in patterns]

    def remove(self, name: str) -> None:
        entry = self._by_name.pop(name, None)
        if entry is not None:
            self._by_signature.pop(entry.pattern.signature(), None)

    def clear(self) -> None:
        self._by_name.clear()
        self._by_signature.clear()

    # ------------------------------------------------------------------
    # Lookup.
    # ------------------------------------------------------------------
    def lookup(self, name: str) -> Optional[Pattern]:
        entry = self._by_name.get(name)
        return entry.pattern if entry is not None else None

    def entry(self, name: str) -> Optional[ExtensionEntry]:
        return self._by_name.get(name)

    def find_by_signature(self, signature: str) -> Optional[ExtensionEntry]:
        name = self._by_signature.get(signature)
        return self._by_name.get(name) if name is not None else None

    def names(self) -> List[str]:
        return sorted(self._by_name)

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[ExtensionEntry]:
        return iter(self._by_name.values())

    def total_area_kgates(self) -> float:
        return sum(entry.operation.area_kgates for entry in self)


#: Process-wide library used by the simulators to resolve custom-op names.
_GLOBAL_LIBRARY = ExtensionLibrary()


def global_extension_library() -> ExtensionLibrary:
    """Return the process-wide extension library."""
    return _GLOBAL_LIBRARY


def reset_global_library() -> None:
    """Clear the process-wide library (used by tests and the explorer)."""
    _GLOBAL_LIBRARY.clear()
